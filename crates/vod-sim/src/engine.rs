//! The discrete round-based simulator.
//!
//! Each round the simulator:
//!
//! 1. ends playbacks that have reached the video duration `T` (the box
//!    becomes free, leaves its swarm, and its playback record is emitted);
//! 2. runs the candidate pipeline's round maintenance: the incremental
//!    [`CandidateIndex`] drains exactly the cache entries whose eviction
//!    round has come (the expiry wheel — O(expiring), not O(live state)),
//!    while the legacy [`CandidateMode::Rescan`] pipeline re-sweeps every
//!    cache and index entry like the pre-incremental engine did;
//! 3. collects the new demands from the workload generator (honouring the
//!    one-video-per-box constraint) and enters the corresponding boxes into
//!    their swarms, assigning preload stripes round-robin (`p mod c`) and
//!    building the per-stripe download plan (homogeneous, rich, or relayed
//!    poor plan depending on the system and the compensation plan);
//! 4. assembles the set of *active* stripe requests (every stripe of every
//!    playing box whose request has been issued) into a pooled buffer,
//!    builds each request's candidate supplier set `B(x)` — static
//!    allocation holders plus playback caches that are ahead in the same
//!    stripe — as one flat CSR [`vod_flow::CandidateView`] (with per-row
//!    change stamps from the index, so incremental schedulers skip diffs
//!    for untouched stripes), and hands the instance to the configured
//!    [`Scheduler`];
//! 5. records metrics (including the per-round [`CandidateStats`]); if some
//!    request is unserved the round is infeasible: the obstruction (Hall
//!    violator) can be extracted and the run either aborts or keeps
//!    counting stalls, per the failure policy.

use crate::candidates::{CandidateIndex, CandidateStats};
use crate::delivery::{
    Admission, DegradationConfig, DegradationController, DeliveryOutcome, DeliveryPolicy,
    DeliverySummary, DeliveryTracker,
};
use crate::metrics::{FailureRecord, PlaybackRecord, RoundMetrics, SimulationReport};
use crate::repair::{RepairPlanner, RepairRoundStats};
use crate::request::{
    direct_stripe_budget, homogeneous_plan, poor_plan, rich_plan, PlaybackState, StripeRequest,
};
use crate::scheduler::{
    MaxFlowScheduler, RelayBroker, RelayEvent, RequestKey, Scheduler, ShardedMatcher,
};
use crate::swarm::SwarmTracker;
use std::collections::HashMap;
use std::time::Instant;
use vod_core::{BoxId, Placement, PlaybackCache, SortedSignature, StripeId, VideoId, VideoSystem};
use vod_flow::{
    find_obstruction_in, CandidateBuf, ConnectionProblem, Dinic, FlowArena, RelayView, NO_STAMP,
};
use vod_obs::{Stage, TraceHandle};
use vod_workloads::{
    ChurnEvent, ChurnModel, DemandGenerator, FaultEvent, FaultModel, OccupancyView, VideoDemand,
};

/// What to do when a round cannot serve every active request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FailurePolicy {
    /// Stop the simulation at the first infeasible round (used by the
    /// feasibility/threshold experiments, where a single obstruction settles
    /// the question).
    #[default]
    Abort,
    /// Record the failure, let the affected playbacks stall, and continue.
    Continue,
}

/// How the engine maintains each round's candidate supplier sets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CandidateMode {
    /// The incremental pipeline (default): playback-cache holders indexed
    /// by the expiry-wheel [`CandidateIndex`], per-round maintenance
    /// O(expiring entries) + O(insertions), O(1) membership, and change
    /// stamps handed down to incremental schedulers.
    #[default]
    Incremental,
    /// The legacy pipeline: a full `retain` sweep over every live cache
    /// entry each round plus linear `contains` scans on inserts and fills.
    /// Produces bit-identical candidate rows (content and order) — kept as
    /// the verification baseline for the equivalence suites and the
    /// `exp_candidates` old-vs-new profile.
    Rescan,
}

/// Simulator configuration.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Number of rounds to simulate.
    pub max_rounds: u64,
    /// Behaviour on an infeasible round.
    pub failure_policy: FailurePolicy,
    /// Whether to extract the obstruction witness on failures (costs one
    /// extra max-flow per failing round).
    pub collect_obstructions: bool,
    /// Candidate-pipeline implementation (incremental by default).
    pub candidates: CandidateMode,
}

impl SimConfig {
    /// Configuration simulating `max_rounds` rounds with the default policy.
    pub fn new(max_rounds: u64) -> Self {
        SimConfig {
            max_rounds,
            failure_policy: FailurePolicy::Abort,
            collect_obstructions: true,
            candidates: CandidateMode::Incremental,
        }
    }

    /// Switches to the stall-and-continue failure policy.
    pub fn continue_on_failure(mut self) -> Self {
        self.failure_policy = FailurePolicy::Continue;
        self
    }

    /// Disables obstruction extraction.
    pub fn without_obstructions(mut self) -> Self {
        self.collect_obstructions = false;
        self
    }

    /// Switches to the legacy full-rescan candidate pipeline (the
    /// verification baseline; see [`CandidateMode::Rescan`]).
    pub fn with_rescan_candidates(mut self) -> Self {
        self.candidates = CandidateMode::Rescan;
        self
    }
}

/// Occupancy view over the simulator's playback table. Departed boxes are
/// never free: a generator cannot hand a demand to a box that is down.
struct Occupancy<'a> {
    playing: &'a [Option<PlaybackState>],
    alive: &'a [bool],
}

impl OccupancyView for Occupancy<'_> {
    fn is_free(&self, box_id: BoxId) -> bool {
        self.playing
            .get(box_id.index())
            .map(|p| p.is_none())
            .unwrap_or(false)
            && self.alive.get(box_id.index()).copied().unwrap_or(false)
    }
    fn box_count(&self) -> usize {
        self.playing.len()
    }
}

/// One cached candidate row (see `Simulator::row_cache`): the box list a
/// given (viewer, stripe) request resolved to, with the inputs it was built
/// from. The row is replayable while the stripe's index stamp and the
/// request's identity (requester, issue round) are unchanged — the index
/// stamps every content change, so an equal stamp guarantees a bit-identical
/// rebuild.
struct CachedRow {
    stamp: u64,
    issued_at: u64,
    requester: BoxId,
    boxes: Vec<BoxId>,
}

/// The engine's candidate pipeline: either the incremental expiry-wheel
/// index or the legacy full-rescan structures. Both expose the same
/// maintenance/insert/stats surface and produce bit-identical candidate
/// rows.
#[derive(Clone)]
enum CandidatePipeline {
    /// Incremental index (see [`CandidateIndex`]).
    Incremental(CandidateIndex),
    /// The pre-incremental structures, maintained exactly like the legacy
    /// engine did: per-box caches swept with `retain` every round, a
    /// per-stripe `HashMap` index with linear membership scans.
    Rescan {
        caches: Vec<PlaybackCache>,
        index: HashMap<StripeId, Vec<BoxId>>,
        live: usize,
        expired: usize,
        inserted: usize,
    },
}

impl CandidatePipeline {
    /// Per-round maintenance: evicts entries that left the cache window and
    /// resets the per-round counters.
    fn begin_round(&mut self, now: u64, window: u64) {
        match self {
            CandidatePipeline::Incremental(index) => index.begin_round(now),
            CandidatePipeline::Rescan {
                caches,
                index,
                live,
                expired,
                inserted,
            } => {
                *inserted = 0;
                let before: usize = caches.iter().map(PlaybackCache::len).sum();
                for cache in caches.iter_mut() {
                    cache.evict_older_than(now, window);
                }
                // Drop stale index entries so the index does not grow
                // unboundedly (the legacy full sweep: O(all live entries)).
                let caches_ref: &[PlaybackCache] = caches;
                index.retain(|stripe, boxes| {
                    boxes.retain(|b| caches_ref[b.index()].start_of(*stripe).is_some());
                    !boxes.is_empty()
                });
                let after: usize = caches.iter().map(PlaybackCache::len).sum();
                *expired = before - after;
                *live = after;
            }
        }
    }

    /// Records that `box_id` starts caching `stripe` at round `start`.
    fn insert(&mut self, box_id: BoxId, stripe: StripeId, start: u64, now: u64) {
        match self {
            CandidatePipeline::Incremental(index) => index.insert(stripe, box_id, start, now),
            CandidatePipeline::Rescan {
                caches,
                index,
                live,
                inserted,
                ..
            } => {
                let fresh = caches[box_id.index()].start_of(stripe).is_none();
                caches[box_id.index()].insert(stripe, start);
                let entry = index.entry(stripe).or_default();
                if !entry.contains(&box_id) {
                    entry.push(box_id);
                }
                if fresh {
                    *live += 1;
                    *inserted += 1;
                }
            }
        }
    }

    /// Evicts every cache entry of `box_id` immediately (the box departed),
    /// under both pipelines: the incremental index does ordered removals
    /// with stamp bumps ([`CandidateIndex::purge_box`]); the legacy
    /// structures clear the box's cache and strip it from the per-stripe
    /// index. Purged entries count toward this round's expiry stats.
    fn purge_box(&mut self, box_id: BoxId, now: u64) {
        match self {
            CandidatePipeline::Incremental(index) => {
                index.purge_box(box_id, now);
            }
            CandidatePipeline::Rescan {
                caches,
                index,
                live,
                expired,
                ..
            } => {
                let removed = caches[box_id.index()].len();
                caches[box_id.index()] = PlaybackCache::new();
                index.retain(|_, boxes| {
                    boxes.retain(|b| *b != box_id);
                    !boxes.is_empty()
                });
                *live -= removed;
                *expired += removed;
            }
        }
    }

    /// Bumps `stripe`'s change stamp after a static-holder change (repair
    /// landed a replica, a departure stripped one): memoized rows and
    /// incremental schedulers rebuild instead of replaying. The rescan
    /// pipeline carries no stamps (every row rebuilds every round anyway).
    fn touch(&mut self, stripe: StripeId, now: u64) {
        if let CandidatePipeline::Incremental(index) = self {
            index.touch(stripe, now);
        }
    }

    /// (live entries, expired this round, inserted this round).
    fn stats(&self) -> (usize, usize, usize) {
        match self {
            CandidatePipeline::Incremental(index) => (
                index.live_entries(),
                index.expired_this_round(),
                index.inserted_this_round(),
            ),
            CandidatePipeline::Rescan {
                live,
                expired,
                inserted,
                ..
            } => (*live, *expired, *inserted),
        }
    }
}

/// The round-based protocol simulator.
pub struct Simulator<'a> {
    system: &'a VideoSystem,
    config: SimConfig,
    scheduler: Box<dyn Scheduler>,
    round: u64,
    playing: Vec<Option<PlaybackState>>,
    /// Which boxes hold which stripe in their playback cache (incremental
    /// expiry-wheel index by default, legacy rescan structures under
    /// [`CandidateMode::Rescan`]).
    candidates: CandidatePipeline,
    swarms: SwarmTracker,
    /// Stall-round counters for in-flight playbacks.
    stalls: Vec<u64>,
    /// The *live* allocation table: starts as a clone of the system's
    /// static placement and tracks the population — departures strip a
    /// box's replicas the round it leaves, repair adds them back. Every
    /// candidate row, self-serve check, and sourcing/swarming attribution
    /// reads this table, never the static one.
    placement: Placement,
    /// Liveness per box: `false` after a leave/crash until rejoin.
    alive: Vec<bool>,
    /// Engine-driven churn process, when attached: drained every round
    /// inside [`Simulator::step`] so membership changes interleave with
    /// admissions.
    churn: Option<ChurnModel>,
    /// Pooled buffer for the round's churn events.
    churn_buf: Vec<ChurnEvent>,
    /// Engine-driven fault process, when attached: drained every round
    /// right after churn, so transient capacity loss overlays the same
    /// table the repair planner and the scheduler read.
    faults: Option<FaultModel>,
    /// Pooled buffer for the round's fault events.
    fault_buf: Vec<FaultEvent>,
    /// True once any fault has been attached or scripted: gates the whole
    /// fault overlay so the faults-off path stays zero-cost.
    faults_active: bool,
    /// Per-box remaining-capacity percentage of the open fault window
    /// (100 = healthy, 0 = fully stalled).
    fault_pct: Vec<u8>,
    /// Per-box fault-window expiry round (0 = no open window).
    fault_until: Vec<u64>,
    /// Upload slots deducted from each box *this round* by the fault
    /// overlay; restored after the repair commit so the capacity table
    /// never drifts.
    fault_deducted: Vec<u32>,
    /// Total slots the fault overlay removed this round (failure
    /// attribution: see [`FailureRecord::fault_slots_lost`]).
    fault_slots_lost: u64,
    /// Delivery-reliability state machine, when attached: resolves every
    /// scheduled connection into an outcome and runs the retry queue.
    delivery: Option<DeliveryTracker>,
    /// Graceful-degradation controller, when attached: sheds load under
    /// sustained infeasibility, with hysteresis.
    degrade: Option<DegradationController>,
    /// Per-round viewer dedup marks for rebuffer accounting (viewers with
    /// at least one failed delivery this round).
    rebuffer_mark: Vec<u64>,
    /// Stripe repair planner, when attached: plans budgeted re-replication
    /// before each round is scheduled and commits after.
    repair: Option<RepairPlanner>,
    /// The repair stats of the round being scheduled (threaded into its
    /// `RoundMetrics::repair`).
    round_repair: Option<RepairRoundStats>,
    report: SimulationReport,
    /// Per-box upload capacities: derived from the system at construction,
    /// refreshed from the relay broker on churn events
    /// ([`Simulator::apply_relay_event`]).
    capacities: Vec<u32>,
    /// The relay subsystem, when the system carries a compensation plan:
    /// owns the live reservation table, per-relay utilization counters,
    /// and the two-hop witness network.
    relay_broker: Option<RelayBroker>,
    /// Reused per-round buffers: active requests, request keys, the flat
    /// CSR candidate buffer with its per-row change stamps, assignment,
    /// relay attributions and per-relay forwarding loads, and the demand
    /// batch pulled from the generator.
    request_buf: Vec<StripeRequest>,
    sched_keys: Vec<RequestKey>,
    cand_buf: CandidateBuf,
    cand_stamps: Vec<u64>,
    assignment: Vec<Option<BoxId>>,
    relay_of: Vec<Option<BoxId>>,
    relay_loads: Vec<u32>,
    demand_buf: Vec<VideoDemand>,
    /// Per-box generation marks for O(1) candidate dedup (holders vs cache
    /// holders) — one epoch per request row.
    box_seen: Vec<u64>,
    seen_epoch: u64,
    /// Per-(viewer, stripe) candidate-row cache for the incremental
    /// pipeline: a row is a pure function of the stripe's static holders,
    /// the index content (summarized by its change stamp), the requester,
    /// and the request's issue round — so a row whose stamp and request
    /// identity are unchanged is replayed without touching the index.
    row_cache: HashMap<(BoxId, StripeId), CachedRow>,
    row_cache_hits: u64,
    row_cache_misses: u64,
    /// Scratch a missed row is built into before it is pushed and cached.
    row_scratch: Vec<BoxId>,
    /// Pooled stalled-viewer / failed-video accumulation with per-round
    /// generation marks (replacing the old linear `contains` scans).
    stalled_viewers: Vec<BoxId>,
    failed_videos: Vec<VideoId>,
    viewer_mark: Vec<u64>,
    video_mark: Vec<u64>,
    /// The current round's candidate-pipeline profile (maintenance + fill).
    round_cand_stats: CandidateStats,
    /// Scratch for the debug-only assignment validity check.
    dbg_loads: Vec<u32>,
    /// Scratch for obstruction extraction on failing rounds.
    obstruction_arena: FlowArena,
    obstruction_solver: Dinic,
    /// Round-pipeline span sink. Off by default: every span site goes
    /// through a `TraceHandle` whose disabled path is a single `Option`
    /// check (no clock read, no lock), so untraced runs pay nothing.
    tracer: TraceHandle,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator with the paper's max-flow scheduler.
    pub fn new(system: &'a VideoSystem, config: SimConfig) -> Self {
        Simulator::with_scheduler(system, config, Box::new(MaxFlowScheduler::new()))
    }

    /// Creates a simulator with an explicit scheduler.
    pub fn with_scheduler(
        system: &'a VideoSystem,
        config: SimConfig,
        scheduler: Box<dyn Scheduler>,
    ) -> Self {
        let n = system.n();
        let capacities = (0..n as u32)
            .map(|i| system.upload_slots(BoxId(i)))
            .collect();
        // Heterogeneous systems get the relay subsystem: the broker mirrors
        // the system's compensation plan and manages it as live structure.
        let relay_broker = system
            .compensation()
            .map(|plan| RelayBroker::from_plan(plan.clone(), system.boxes(), system.c()));
        let candidates = match config.candidates {
            CandidateMode::Incremental => CandidatePipeline::Incremental(CandidateIndex::new(
                system.duration() as u64,
                system.c(),
            )),
            CandidateMode::Rescan => CandidatePipeline::Rescan {
                caches: vec![PlaybackCache::new(); n],
                index: HashMap::new(),
                live: 0,
                expired: 0,
                inserted: 0,
            },
        };
        let mut report = SimulationReport::default();
        // Bounded pre-reservation keeps steady-state rounds free of metric
        // reallocation (the zero-alloc engine contract); very long runs
        // amortize the occasional growth as usual.
        report
            .rounds
            .reserve(usize::try_from(config.max_rounds).unwrap_or(0).min(4096));
        Simulator {
            system,
            config,
            scheduler,
            round: 0,
            playing: vec![None; n],
            candidates,
            swarms: SwarmTracker::new(system.c()),
            stalls: vec![0; n],
            placement: system.placement().clone(),
            alive: vec![true; n],
            churn: None,
            churn_buf: Vec::new(),
            faults: None,
            fault_buf: Vec::new(),
            faults_active: false,
            fault_pct: vec![100; n],
            fault_until: vec![0; n],
            fault_deducted: vec![0; n],
            fault_slots_lost: 0,
            delivery: None,
            degrade: None,
            rebuffer_mark: vec![0; n],
            repair: None,
            round_repair: None,
            report,
            capacities,
            relay_broker,
            request_buf: Vec::new(),
            sched_keys: Vec::new(),
            cand_buf: CandidateBuf::new(),
            cand_stamps: Vec::new(),
            assignment: Vec::new(),
            relay_of: Vec::new(),
            relay_loads: Vec::new(),
            demand_buf: Vec::new(),
            box_seen: vec![0; n],
            seen_epoch: 0,
            row_cache: HashMap::new(),
            row_cache_hits: 0,
            row_cache_misses: 0,
            row_scratch: Vec::new(),
            stalled_viewers: Vec::new(),
            failed_videos: Vec::new(),
            viewer_mark: vec![0; n],
            video_mark: vec![0; system.m()],
            round_cand_stats: CandidateStats::default(),
            dbg_loads: Vec::new(),
            obstruction_arena: FlowArena::new(),
            obstruction_solver: Dinic::new(),
            tracer: TraceHandle::off(),
        }
    }

    /// Attaches a recording trace handle: from the next [`Simulator::step`]
    /// on, every pipeline stage (and the scheduler's internal stages —
    /// shard partition/solve/reconcile, solver phases) emits timing spans
    /// into it. Per-round aggregates land in
    /// [`RoundMetrics::timing`](crate::metrics::RoundMetrics::timing) and
    /// the whole-run profile in
    /// [`SimulationReport::profile`](crate::metrics::SimulationReport::profile);
    /// neither participates in report equality, so traced and untraced runs
    /// of the same workload compare equal.
    pub fn attach_tracer(&mut self, tracer: TraceHandle) {
        self.scheduler.attach_tracer(&tracer);
        self.tracer = tracer;
    }

    /// Creates a simulator scheduling each round with the per-swarm
    /// [`ShardedMatcher`] solving shards on `threads` worker threads. The
    /// schedule (and thus the whole simulation) is identical for any thread
    /// count; threads only change wall-clock time.
    pub fn with_sharded_scheduler(
        system: &'a VideoSystem,
        config: SimConfig,
        threads: usize,
    ) -> Self {
        Simulator::with_scheduler(system, config, Box::new(ShardedMatcher::new(threads)))
    }

    /// The current round.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The system being simulated.
    pub fn system(&self) -> &VideoSystem {
        self.system
    }

    /// Candidate-row cache profile as `(hits, misses)`: rows replayed
    /// because their stripe stamp and request identity were unchanged vs
    /// rows built from the holder sets and the index. Always `(0, _)` under
    /// the legacy rescan pipeline, which cannot cache (its eligibility
    /// filter depends on the current round).
    pub fn candidate_row_cache_stats(&self) -> (u64, u64) {
        (self.row_cache_hits, self.row_cache_misses)
    }

    /// The playback state of box `b`, when it is currently viewing.
    pub fn playback(&self, b: BoxId) -> Option<&PlaybackState> {
        self.playing.get(b.index()).and_then(|p| p.as_ref())
    }

    /// The report accumulated so far (rounds simulated up to now). Unlike
    /// [`Simulator::run`], this does not flush in-flight playbacks or the
    /// relay utilization profile — it is the live view a stepping driver
    /// (the exhaustive explorer) compares across engine variants.
    pub fn report_so_far(&self) -> &SimulationReport {
        &self.report
    }

    /// The relay subsystem, when the system is heterogeneous.
    pub fn relay_broker(&self) -> Option<&RelayBroker> {
        self.relay_broker.as_ref()
    }

    /// The live upload-slot capacity of box `b` as the scheduler sees it
    /// (static allocation minus reservations, updated by
    /// [`Simulator::apply_relay_event`]).
    pub fn upload_slots(&self, b: BoxId) -> u32 {
        self.capacities.get(b.index()).copied().unwrap_or(0)
    }

    /// The live allocation table (static placement ⊖ departures ⊕ repairs).
    pub fn live_placement(&self) -> &Placement {
        &self.placement
    }

    /// Whether box `b` is currently part of the population.
    pub fn is_alive(&self, b: BoxId) -> bool {
        self.alive.get(b.index()).copied().unwrap_or(false)
    }

    /// Boxes currently part of the population.
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// The attached repair planner, when repair is enabled.
    pub fn repair_planner(&self) -> Option<&RepairPlanner> {
        self.repair.as_ref()
    }

    /// Attaches an engine-driven churn process: from the next round on,
    /// its events are drained at the top of every [`Simulator::step`] —
    /// after finished playbacks end, before new demands are admitted — so
    /// membership changes interleave with admissions instead of being
    /// replayed between rounds. Heterogeneous systems route the events
    /// through [`Simulator::apply_relay_event`] (re-planning reservations);
    /// homogeneous systems mutate the capacity table directly.
    pub fn attach_churn(&mut self, model: ChurnModel) {
        assert!(
            model.box_count() <= self.playing.len(),
            "churn model spans {} boxes but the engine universe has {}",
            model.box_count(),
            self.playing.len()
        );
        self.churn = Some(model);
    }

    /// Attaches a stripe repair planner: each round it plans a budgeted
    /// batch of replica transfers from the live placement, the transfer
    /// slots are deducted from the source boxes' `⌊u_b·c⌋` budgets *before*
    /// the scheduler runs (repair competes with serving through the same
    /// Lemma-1 budgets), and the new replicas are committed after the round
    /// so they serve from the next round on.
    pub fn attach_repair(&mut self, planner: RepairPlanner) {
        self.repair = Some(planner);
    }

    /// Attaches an engine-driven fault process: from the next round on its
    /// events are drained right after churn — a faulted box stays in the
    /// population (replicas, playback, swarm membership intact) but its
    /// effective upload budget is overlaid on the live capacity table for
    /// the window, restored when the window closes. Attaching faults also
    /// attaches a default-policy [`DeliveryTracker`] (unless one is
    /// already attached) carrying the model's per-connection drop/timeout
    /// hazards and outcome salt.
    pub fn attach_faults(&mut self, model: FaultModel) {
        assert!(
            model.box_count() <= self.playing.len(),
            "fault model spans {} boxes but the engine universe has {}",
            model.box_count(),
            self.playing.len()
        );
        if self.delivery.is_none() {
            self.delivery = Some(DeliveryTracker::new(DeliveryPolicy::default()));
        }
        self.delivery.as_mut().expect("attached above").set_hazards(
            model.salt(),
            model.drop_ppm(),
            model.timeout_ppm(),
        );
        self.faults_active = true;
        self.faults = Some(model);
    }

    /// Attaches (or replaces) the delivery-reliability state machine with
    /// an explicit retry policy. When a fault model is already attached,
    /// its per-connection hazards and outcome salt carry over; call this
    /// *before* exercising faults to pin a non-default policy (e.g.
    /// [`DeliveryPolicy::no_retry`] for the no-retry baseline).
    pub fn attach_delivery(&mut self, policy: DeliveryPolicy) {
        let mut tracker = DeliveryTracker::new(policy);
        if let Some(model) = &self.faults {
            tracker.set_hazards(model.salt(), model.drop_ppm(), model.timeout_ppm());
        }
        self.delivery = Some(tracker);
    }

    /// Attaches the graceful-degradation controller: from the next round
    /// on it folds every round's (attempted, unserved) into its window and
    /// sheds load — new admissions, and optionally tail stripes — while
    /// the windowed unserved ratio stays above the configured thresholds.
    pub fn attach_degradation(&mut self, config: DegradationConfig) {
        self.degrade = Some(DegradationController::new(config));
    }

    /// The delivery-reliability state machine, when attached.
    pub fn delivery_tracker(&self) -> Option<&DeliveryTracker> {
        self.delivery.as_ref()
    }

    /// The graceful-degradation controller, when attached.
    pub fn degradation(&self) -> Option<&DegradationController> {
        self.degrade.as_ref()
    }

    /// Applies one fault event to the engine, scripted or model-driven: a
    /// degradation or stall opens a per-box capacity window (a restore
    /// closes it early) that the next round's fault overlay deducts from
    /// the live capacity table; a drop surge raises the delivery tracker's
    /// per-connection hazards. This is both the step-loop's internal path
    /// for an attached [`FaultModel`] and the public entry point for
    /// scripted faults (the explorer's fault-event branches). A
    /// [`FaultEvent::DropSurge`] is a no-op unless a delivery tracker is
    /// attached.
    pub fn apply_fault(&mut self, event: FaultEvent) {
        self.faults_active = true;
        if let Some(box_id) = event.box_id() {
            assert!(
                box_id.index() < self.playing.len(),
                "fault event targets box {} outside the universe of {} boxes",
                box_id,
                self.playing.len()
            );
        }
        match event {
            FaultEvent::Degraded { box_id, pct, until } => {
                self.fault_pct[box_id.index()] = pct;
                self.fault_until[box_id.index()] = until;
            }
            FaultEvent::Stalled { box_id, until } => {
                self.fault_pct[box_id.index()] = 0;
                self.fault_until[box_id.index()] = until;
            }
            FaultEvent::Restored { box_id } => {
                self.fault_pct[box_id.index()] = 100;
                self.fault_until[box_id.index()] = 0;
            }
            FaultEvent::DropSurge { add_ppm, until } => {
                if let Some(tracker) = &mut self.delivery {
                    tracker.apply_surge(add_ppm, until);
                }
            }
        }
    }

    /// Enables dynamic relay-reservation sizing (heterogeneous systems
    /// only): instead of holding every relay at the worst-case
    /// `u* + 1 − 2u_b` reservation forever, the broker shrinks a relay's
    /// reserved slots after `window` consecutive calm rounds and grows them
    /// back on saturation, never past the plan's worst case. The engine
    /// resyncs its capacity table from the broker after every round, so
    /// freed slots serve ordinary traffic the next round. The sizing
    /// feedback reads observed relay loads, which are scheduler-dependent —
    /// enable it only when comparing runs within one scheduler family.
    pub fn enable_dynamic_reservations(&mut self, window: u64) {
        self.relay_broker
            .as_mut()
            .expect("dynamic reservation sizing needs a heterogeneous (relayed) system")
            .enable_dynamic_reservations(window);
    }

    /// Canonical signature of the behavioural state: everything the future
    /// of the simulation depends on — playback states (with their request
    /// plans), live candidate-cache entries, swarm preload counters, the
    /// current round, the live capacity table, and the relay plan. Pooled
    /// scratch, warm scheduler state, and accumulated reports are excluded:
    /// the equivalence gates prove they never change a schedule. Components
    /// are combined order-insensitively ([`SortedSignature`]), so both
    /// candidate pipelines produce identical signatures for equal states.
    pub fn state_signature(&self) -> u64 {
        let mut sig = SortedSignature::new();
        sig.push(&(0u8, self.round));
        for (idx, slot) in self.playing.iter().enumerate() {
            if let Some(st) = slot {
                sig.push(&(1u8, idx as u32, st));
            }
        }
        match &self.candidates {
            CandidatePipeline::Incremental(index) => {
                for (stripe, b, start) in index.iter_live() {
                    sig.push(&(2u8, stripe, b, start));
                }
            }
            CandidatePipeline::Rescan { caches, .. } => {
                for (idx, cache) in caches.iter().enumerate() {
                    for (stripe, start) in cache.iter() {
                        sig.push(&(2u8, stripe, BoxId(idx as u32), start));
                    }
                }
            }
        }
        for (video, swarm) in self.swarms.iter() {
            sig.push(&(3u8, video, swarm.entered_total()));
        }
        for (idx, cap) in self.capacities.iter().enumerate() {
            sig.push(&(4u8, idx as u32, *cap));
        }
        if let Some(broker) = &self.relay_broker {
            for (idx, slots) in broker.reserved_slots().iter().enumerate() {
                sig.push(&(5u8, idx as u32, *slots));
            }
            for (poor, relay) in broker.plan().assignments() {
                sig.push(&(6u8, poor, relay));
            }
        }
        // Live-population state: holder lists are order-sensitive (candidate
        // rows list holders in placement order), so each holder is tagged
        // with its position.
        for (stripe, holders) in self.placement.stripes() {
            for (pos, b) in holders.iter().enumerate() {
                sig.push(&(7u8, stripe, pos as u32, *b));
            }
        }
        for (idx, up) in self.alive.iter().enumerate() {
            if !up {
                sig.push(&(8u8, idx as u32));
            }
        }
        // The repair queue drives future placement mutations. (An attached
        // churn model is external stochastic input, like the demand
        // generator — not part of the engine's behavioural state.)
        if let Some(planner) = &self.repair {
            for &s in planner.pending() {
                sig.push(&(9u8, s));
            }
            for &s in planner.lost() {
                sig.push(&(10u8, s));
            }
        }
        // Fault-injection state: open fault windows, the delivery
        // tracker's retry/backoff queue and surge window, and the
        // degradation controller's window/mode all steer future rounds.
        // (An attached fault model is external stochastic input, like the
        // churn model.)
        for idx in 0..self.fault_pct.len() {
            if self.fault_pct[idx] != 100 || self.fault_until[idx] != 0 {
                sig.push(&(11u8, idx as u32, self.fault_pct[idx], self.fault_until[idx]));
            }
        }
        if let Some(tracker) = &self.delivery {
            tracker.push_signature(&mut sig);
        }
        if let Some(ctrl) = &self.degrade {
            ctrl.push_signature(&mut sig);
        }
        sig.finish()
    }

    /// Branches the simulation: an independent simulator continuing from
    /// this one's exact behavioural state, scheduling with `scheduler`.
    ///
    /// Live state (round, playbacks, candidate pipeline, swarms, stalls,
    /// report, capacity table, relay broker) is cloned; pooled scratch,
    /// memoized candidate rows, and the scheduler's warm state start cold —
    /// sound because the warm-vs-cold and incremental-vs-rebuild
    /// equivalence suites pin those as output-invariant. The fork and the
    /// original evolve independently from here; this is the branch
    /// primitive of the exhaustive explorer.
    pub fn fork_with(&self, scheduler: Box<dyn Scheduler>) -> Simulator<'a> {
        let mut fork = Simulator::with_scheduler(self.system, self.config, scheduler);
        fork.round = self.round;
        fork.playing = self.playing.clone();
        fork.candidates = self.candidates.clone();
        fork.swarms = self.swarms.clone();
        fork.stalls = self.stalls.clone();
        fork.report = self.report.clone();
        fork.capacities = self.capacities.clone();
        fork.relay_broker = self.relay_broker.as_ref().map(RelayBroker::fork);
        fork.placement = self.placement.clone();
        fork.alive = self.alive.clone();
        fork.churn = self.churn.clone();
        fork.repair = self.repair.clone();
        fork.faults = self.faults.clone();
        fork.faults_active = self.faults_active;
        fork.fault_pct = self.fault_pct.clone();
        fork.fault_until = self.fault_until.clone();
        fork.delivery = self.delivery.clone();
        fork.degrade = self.degrade.clone();
        fork
    }

    /// Applies one churn event to the relay subsystem mid-run and re-syncs
    /// the scheduler's capacity table from the live plan (departed boxes
    /// drop to zero upload; freed or grown reservations open slots).
    ///
    /// A [`RelayEvent::BoxLeft`] also detaches the box from the engine's
    /// live structures *the round it leaves*: its in-flight playback ends
    /// (recorded with its stalls so far), its playback-cache entries are
    /// purged from the candidate pipeline, and its replicas are stripped
    /// from the live allocation table (notifying the repair planner when
    /// one is attached). Without the purge, a departed box lingers as a
    /// stripe holder in candidate rows until cache expiry — and worse, a
    /// later rejoin would claim replicas the box no longer stores.
    ///
    /// Returns the compensation deltas performed, or the broker's named
    /// error when the population is no longer `u*`-compensable (the event's
    /// plan mutations still happened, exactly as [`RelayBroker::apply`]
    /// documents). Future playbacks plan against the updated live plan;
    /// playbacks already in flight keep the plans they were admitted with.
    ///
    /// # Panics
    /// Panics on homogeneous systems (no relay subsystem) and when a
    /// [`RelayEvent::BoxJoined`] id lies outside the original box universe
    /// (the engine's per-box tables are sized at construction).
    pub fn apply_relay_event(
        &mut self,
        event: RelayEvent,
    ) -> Result<Vec<vod_core::CompensationDelta>, vod_core::CoreError> {
        assert!(
            self.relay_broker.is_some(),
            "relay events require a heterogeneous system with a compensation plan"
        );
        match &event {
            RelayEvent::BoxJoined(node) => {
                assert!(
                    node.id.index() < self.playing.len(),
                    "box {} joined outside the original universe of {} boxes",
                    node.id,
                    self.playing.len()
                );
                self.alive[node.id.index()] = true;
            }
            RelayEvent::BoxLeft(id) => self.detach_box(*id),
            RelayEvent::UploadChanged(..) => {}
        }
        let broker = self.relay_broker.as_mut().expect("checked above");
        let clock = self.tracer.begin();
        let result = broker.apply(event);
        self.tracer.end(
            clock,
            Stage::RelayReplan,
            result.as_ref().map_or(0, |deltas| deltas.len() as u64),
        );
        for (idx, cap) in self.capacities.iter_mut().enumerate() {
            *cap = broker.open_upload_slots(BoxId(idx as u32));
        }
        result
    }

    /// Applies one [`ChurnEvent`] to the engine, on homogeneous and
    /// heterogeneous systems alike. Heterogeneous systems route through
    /// [`Simulator::apply_relay_event`] (reservation re-planning; a failed
    /// re-plan leaves poor boxes uncovered and the simulation continues —
    /// the resulting stalls are the modelled behaviour). Homogeneous
    /// systems mutate the liveness and capacity tables directly. This is
    /// both the step-loop's internal path for an attached [`ChurnModel`]
    /// and the public entry point for scripted churn (the explorer's
    /// churn-event branches).
    pub fn apply_churn(&mut self, event: ChurnEvent) {
        match event {
            ChurnEvent::Joined(node) => {
                assert!(
                    node.id.index() < self.playing.len(),
                    "box {} joined outside the original universe of {} boxes",
                    node.id,
                    self.playing.len()
                );
                if self.relay_broker.is_some() {
                    let _ = self.apply_relay_event(RelayEvent::BoxJoined(node));
                } else {
                    self.alive[node.id.index()] = true;
                    self.capacities[node.id.index()] = node.upload.stripe_slots(self.system.c());
                }
            }
            ChurnEvent::Left(id) | ChurnEvent::Crashed(id) => {
                if self.relay_broker.is_some() {
                    let _ = self.apply_relay_event(RelayEvent::BoxLeft(id));
                } else {
                    self.detach_box(id);
                    self.capacities[id.index()] = 0;
                }
            }
            ChurnEvent::UploadChanged(id, upload) => {
                if self.relay_broker.is_some() {
                    let _ = self.apply_relay_event(RelayEvent::UploadChanged(id, upload));
                } else {
                    self.capacities[id.index()] = upload.stripe_slots(self.system.c());
                }
            }
        }
    }

    /// Detaches a departed box from every live structure, effective this
    /// round: terminates its in-flight playback (recording it), purges its
    /// cache entries from the candidate pipeline (stamp bumps invalidate
    /// memoized rows), and strips its replicas from the live allocation
    /// table, queueing them with the repair planner.
    fn detach_box(&mut self, id: BoxId) {
        let idx = id.index();
        let now = self.round;
        self.alive[idx] = false;
        if let Some(st) = self.playing[idx].take() {
            self.swarms.leave(st.video, id);
            self.report.playbacks.push(PlaybackRecord {
                box_id: id,
                video: st.video,
                entered_at: st.entered_at,
                startup_delay: st.startup_delay(),
                stalled_rounds: self.stalls[idx],
            });
            self.stalls[idx] = 0;
        }
        if let Some(tracker) = &mut self.delivery {
            tracker.forget_viewer(id);
        }
        self.candidates.purge_box(id, now);
        let lost = self.placement.remove_box(id);
        for &stripe in &lost {
            self.candidates.touch(stripe, now);
        }
        if let Some(planner) = &mut self.repair {
            planner.note_lost(&lost);
        }
    }

    /// Runs the configured number of rounds against a demand generator and
    /// returns the report.
    pub fn run(mut self, generator: &mut dyn DemandGenerator) -> SimulationReport {
        while self.round < self.config.max_rounds {
            let feasible = self.step(generator);
            if !feasible && self.config.failure_policy == FailurePolicy::Abort {
                self.report.aborted = true;
                break;
            }
        }
        self.finish()
    }

    /// Consumes a manually-stepped simulator and finalizes its report
    /// (flushing in-flight playbacks and the relay utilization profile),
    /// exactly as [`Simulator::run`] does at the end of a run. For drivers
    /// that interleave [`Simulator::step`] with scripted churn.
    pub fn into_report(self) -> SimulationReport {
        self.finish()
    }

    /// Finalizes the report: flushes in-flight playbacks and the relay
    /// utilization profile.
    fn finish(mut self) -> SimulationReport {
        self.report.profile = self.tracer.run_profile();
        if self.delivery.is_some() {
            self.report.delivery = Some(DeliverySummary::from_rounds(&self.report.rounds));
        }
        if let Some(broker) = &self.relay_broker {
            self.report.relays = broker.utilization();
        }
        for (idx, slot) in self.playing.iter().enumerate() {
            if let Some(st) = slot {
                self.report.playbacks.push(PlaybackRecord {
                    box_id: BoxId(idx as u32),
                    video: st.video,
                    entered_at: st.entered_at,
                    startup_delay: st.startup_delay(),
                    stalled_rounds: self.stalls[idx],
                });
            }
        }
        self.report
    }

    /// Simulates one round. Returns `true` when every active request was
    /// served.
    pub fn step(&mut self, generator: &mut dyn DemandGenerator) -> bool {
        let now = self.round;
        let window = self.system.duration() as u64;
        self.tracer.set_round(now);

        let clock = self.tracer.begin();
        self.end_finished_playbacks(now);
        self.tracer.end(clock, Stage::PlaybackEnd, 0);
        // Candidate-pipeline maintenance is half of the round's candidate
        // cost; the other half (row construction) is timed in
        // `schedule_round` and summed into the same per-round profile.
        let maintenance = Instant::now();
        self.candidates.begin_round(now, window);
        let maintenance_ns = maintenance.elapsed().as_nanos() as u64;
        self.round_cand_stats = CandidateStats {
            build_ns: maintenance_ns,
            ..CandidateStats::default()
        };
        // The maintenance half is already timed unconditionally (it feeds
        // `CandidateStats::build_ns`), so the span reuses that measurement.
        self.tracer
            .emit_ns(Stage::CandidateMaintain, maintenance_ns, 0);
        // Engine-driven churn: membership changes land before admissions,
        // interleaved with the round rather than replayed between rounds.
        let clock = self.tracer.begin();
        self.drain_churn(now);
        self.tracer.end(clock, Stage::ChurnDrain, 0);
        // Fault overlay: open this round's fault windows (model events +
        // scripted ones still pending), expire finished windows, and
        // deduct the transient capacity loss before the repair planner and
        // the scheduler read the table. Restored after the repair commit.
        let clock = self.tracer.begin();
        if let Some(tracker) = &mut self.delivery {
            tracker.begin_round(now);
        }
        if let Some(ctrl) = &mut self.degrade {
            ctrl.begin_round(now);
        }
        self.fault_slots_lost = self.drain_faults(now);
        self.tracer
            .end(clock, Stage::FaultDrain, self.fault_slots_lost);
        // Repair planning deducts the transfer slots from the source boxes'
        // budgets before the scheduler sees them.
        let clock = self.tracer.begin();
        self.round_repair = self.plan_repairs();
        let planned = self.round_repair.as_ref().map_or(0, |s| s.repaired as u64);
        self.tracer.end(clock, Stage::RepairPlan, planned);
        let clock = self.tracer.begin();
        let new_demands = self.accept_demands(generator, now);
        self.tracer
            .end(clock, Stage::DemandIntake, new_demands as u64);
        // Detach the pooled request buffer so collection can borrow `self`.
        let mut requests = std::mem::take(&mut self.request_buf);
        requests.clear();
        let clock = self.tracer.begin();
        let self_served = self.collect_active_requests_into(now, &mut requests);
        self.tracer
            .end(clock, Stage::RequestCollect, requests.len() as u64);
        let (metrics, feasible) = self.schedule_round(now, &requests, self_served, new_demands);
        self.request_buf = requests;
        self.report.rounds.push(metrics);
        // Commit the planned repairs: capacities are restored and the new
        // replicas enter the live placement, serving from the next round on
        // (a transfer takes the round it was planned in).
        let clock = self.tracer.begin();
        self.commit_repairs(now);
        self.tracer.end(clock, Stage::RepairCommit, 0);
        // Restore the fault overlay's deductions: the capacity table
        // carries only the round's transient loss, recomputed from the
        // open windows each round (so churned capacities never drift).
        if self.faults_active {
            for idx in 0..self.fault_deducted.len() {
                if self.fault_deducted[idx] != 0 {
                    self.capacities[idx] += self.fault_deducted[idx];
                    self.fault_deducted[idx] = 0;
                }
            }
        }
        // Dynamic reservation sizing re-tunes inside `note_round`; pick the
        // shifted capacities up for the next round.
        if self
            .relay_broker
            .as_ref()
            .is_some_and(RelayBroker::dynamic_reservations_enabled)
        {
            let broker = self.relay_broker.as_ref().expect("checked above");
            for (idx, cap) in self.capacities.iter_mut().enumerate() {
                *cap = broker.open_upload_slots(BoxId(idx as u32));
            }
        }
        // The repair commit lands after the metrics push, so the round's
        // timing aggregate is patched into the record it belongs to.
        if let Some(timing) = self.tracer.take_round_timings() {
            if let Some(last) = self.report.rounds.last_mut() {
                last.timing = Some(timing);
            }
        }
        self.round += 1;
        feasible
    }

    /// Drains the attached churn model's events for `now` and applies them.
    fn drain_churn(&mut self, now: u64) {
        if self.churn.is_none() {
            return;
        }
        let mut events = std::mem::take(&mut self.churn_buf);
        self.churn
            .as_mut()
            .expect("checked above")
            .events_into(now, &mut events);
        for event in events.drain(..) {
            self.apply_churn(event);
        }
        self.churn_buf = events;
    }

    /// Drains the attached fault model's events for `now`, expires the
    /// fault windows whose round has come, and overlays the open windows
    /// on the live capacity table (`keep = ⌊cap·pct/100⌋`, recomputed
    /// fresh each round). Returns the upload slots removed.
    fn drain_faults(&mut self, now: u64) -> u64 {
        if !self.faults_active {
            return 0;
        }
        if self.faults.is_some() {
            let mut events = std::mem::take(&mut self.fault_buf);
            self.faults
                .as_mut()
                .expect("checked above")
                .events_into(now, &mut events);
            for event in events.drain(..) {
                self.apply_fault(event);
            }
            self.fault_buf = events;
        }
        let mut lost = 0u64;
        for idx in 0..self.fault_pct.len() {
            if self.fault_until[idx] != 0 && self.fault_until[idx] <= now {
                self.fault_until[idx] = 0;
                self.fault_pct[idx] = 100;
            }
            let pct = self.fault_pct[idx];
            if pct < 100 {
                let cap = self.capacities[idx];
                let keep = (cap as u64 * pct as u64 / 100) as u32;
                let loss = cap - keep;
                self.fault_deducted[idx] = loss;
                self.capacities[idx] = keep;
                lost += loss as u64;
            }
        }
        lost
    }

    /// Plans this round's repair transfers and charges their upload slots
    /// against the live capacity table, so serving and repair compete for
    /// the same `⌊u_b·c⌋` budgets. The plan reads only scheduler-invariant
    /// state (live placement, liveness, capacities) — never the assignment
    /// — keeping placement evolution bit-identical across the global,
    /// sharded, and rescan pipelines.
    fn plan_repairs(&mut self) -> Option<RepairRoundStats> {
        let planner = self.repair.as_mut()?;
        let stats = planner.plan_round(&self.placement, &self.alive, &self.capacities);
        for (idx, &egress) in planner.egress().iter().enumerate() {
            debug_assert!(egress <= self.capacities[idx], "repair oversubscribed box");
            self.capacities[idx] -= egress;
        }
        Some(stats)
    }

    /// Commits the round's planned repairs: restores the deducted source
    /// capacities and lands the new replicas in the live placement, bumping
    /// the repaired stripes' candidate stamps so next round's rows rebuild.
    fn commit_repairs(&mut self, now: u64) {
        let Some(planner) = &mut self.repair else {
            return;
        };
        for t in planner.transfers() {
            self.capacities[t.source.index()] += 1;
            // The scheduler already synced this round's stamps (`now + 1`),
            // so a post-schedule holder change must stamp one further ahead
            // or memoized rows would replay the pre-repair holder list.
            self.candidates.touch(t.stripe, now + 1);
        }
        planner.commit(&mut self.placement);
    }

    fn end_finished_playbacks(&mut self, now: u64) {
        for idx in 0..self.playing.len() {
            let finished = matches!(&self.playing[idx], Some(st) if st.ends_at <= now);
            if finished {
                let st = self.playing[idx].take().expect("checked above");
                self.swarms.leave(st.video, BoxId(idx as u32));
                self.report.playbacks.push(PlaybackRecord {
                    box_id: BoxId(idx as u32),
                    video: st.video,
                    entered_at: st.entered_at,
                    startup_delay: st.startup_delay(),
                    stalled_rounds: self.stalls[idx],
                });
                self.stalls[idx] = 0;
                if let Some(tracker) = &mut self.delivery {
                    tracker.forget_viewer(BoxId(idx as u32));
                }
            }
        }
    }

    fn accept_demands(&mut self, generator: &mut dyn DemandGenerator, now: u64) -> usize {
        // Pull the round's demands into the pooled buffer (detached so the
        // generator call can borrow `self.playing`).
        let mut demands = std::mem::take(&mut self.demand_buf);
        {
            let occupancy = Occupancy {
                playing: &self.playing,
                alive: &self.alive,
            };
            generator.demands_into(now, &occupancy, &mut demands);
        }
        let mut accepted = 0;
        for demand in demands.drain(..) {
            let idx = demand.box_id.index();
            if idx >= self.playing.len()
                || self.playing[idx].is_some()
                || !self.alive[idx]
                || self.system.catalog().video(demand.video).is_none()
            {
                self.report.rejected_demands += 1;
                continue;
            }
            // Degraded mode sheds new admissions deterministically:
            // existing playbacks' continuity outranks new entrants.
            if self.degrade.as_ref().is_some_and(|c| c.shedding()) {
                self.report.rejected_demands += 1;
                self.degrade.as_mut().expect("checked above").note_shed();
                continue;
            }
            self.start_playback(demand.box_id, demand.video, now);
            accepted += 1;
        }
        self.demand_buf = demands;
        self.report.total_demands += accepted;
        accepted
    }

    fn start_playback(&mut self, box_id: BoxId, video: VideoId, now: u64) {
        let c = self.system.c();
        let preload = self.swarms.join(video, box_id, now);
        let duration = self.system.duration() as u64;
        let mu = self.system.params().swarm_growth;

        // Plans consult the *live* plan when the relay subsystem is active
        // (the broker starts as a mirror of the system's static plan, so
        // behaviour is unchanged until a churn event is applied through
        // [`Simulator::apply_relay_event`]). A poor box whose relay could
        // not be re-placed after churn falls back to the direct rich plan.
        let (plan, playback_starts_at) = match &self.relay_broker {
            None => homogeneous_plan(c, preload, now),
            Some(broker) => {
                let upload = broker
                    .node(box_id)
                    .map(|n| n.upload)
                    .unwrap_or_else(|| self.system.boxes().get(box_id).upload);
                match broker.plan().relay(box_id) {
                    Some(relay) => {
                        let budget = direct_stripe_budget(c, upload.as_streams(), mu);
                        poor_plan(c, preload, now, relay, budget)
                    }
                    None => rich_plan(c, preload, now),
                }
            }
        };

        // Every stripe enters the requester's (and the viewer's) playback
        // cache at the round its download starts.
        for (stripe_idx, stripe_plan) in plan.iter().enumerate() {
            let stripe = StripeId::new(video, stripe_idx as u16);
            let start = stripe_plan.activate_at();
            let requester = stripe_plan.requester(box_id);
            self.candidates.insert(requester, stripe, start, now);
            if requester != box_id {
                self.candidates.insert(box_id, stripe, start, now);
            }
        }

        self.stalls[box_id.index()] = 0;
        self.playing[box_id.index()] = Some(PlaybackState {
            video,
            entered_at: now,
            ends_at: now + duration,
            playback_starts_at,
            plan,
        });
    }

    /// Collects the round's active stripe requests into the pooled buffer,
    /// returning the number of requests served from the requester's own
    /// static storage (no connection needed). With a delivery tracker
    /// attached, each request first consults the retry queue: a stream in
    /// backoff (or abandoned) is suppressed this round, an expired backoff
    /// re-enters as a first-class request. With partial service active,
    /// tail stripes (`index ≥ c'`) are suppressed without counting as
    /// stalls.
    fn collect_active_requests_into(&mut self, now: u64, out: &mut Vec<StripeRequest>) -> usize {
        // Detach the tracker so the closure can consult the retry queue
        // mutably while `self` is borrowed for the playback iteration.
        let mut delivery = self.delivery.take();
        let stripe_limit = self
            .degrade
            .as_ref()
            .and_then(DegradationController::active_stripe_limit);
        let mut suppressed = 0usize;
        let mut self_served = 0usize;
        for (idx, slot) in self.playing.iter().enumerate() {
            let viewer = BoxId(idx as u32);
            if let Some(st) = slot {
                st.for_each_active(viewer, now, |req| {
                    if self.placement.stores(req.requester, req.stripe) {
                        self_served += 1;
                    } else if stripe_limit.is_some_and(|limit| req.stripe.index >= limit) {
                        suppressed += 1;
                    } else {
                        match delivery
                            .as_mut()
                            .map_or(Admission::Emit, |t| t.admit(req.viewer, req.stripe, now))
                        {
                            Admission::Emit | Admission::Retry => out.push(req),
                            Admission::Suppress => {}
                        }
                    }
                });
            }
        }
        self.delivery = delivery;
        if suppressed > 0 {
            self.degrade
                .as_mut()
                .expect("stripe_limit came from the controller")
                .note_suppressed(suppressed);
        }
        self_served
    }

    /// Builds every request's candidate supplier row into the pooled flat
    /// CSR buffer: static holders of the stripe plus boxes whose playback
    /// cache is ahead on the same stripe, excluding the requester itself.
    /// Per-box generation marks give O(1) dedup between the two sources;
    /// row order is identical under both pipelines (holders in placement
    /// order, then cache holders in index insertion order).
    fn fill_round_candidates(&mut self, now: u64, requests: &[StripeRequest]) {
        let window = self.system.duration() as u64;
        self.cand_buf.clear();
        self.cand_stamps.clear();
        // The row cache is only worth keeping while it tracks the live
        // request population; once it clearly outgrows it (viewers churned
        // away, their rows can never hit again) drop it wholesale.
        if self.row_cache.len() > 2 * requests.len() + 64 {
            self.row_cache.clear();
        }
        for req in requests {
            // Replay a cached row when its inputs are unchanged: same index
            // stamp (the index stamps every per-stripe content change — the
            // engine also bumps it when the stripe's *live-placement* holder
            // list changes, on departures and committed repairs), same
            // requester (excluded from the row), same issue round (the
            // ahead-of-requester filter reads it). The legacy rescan
            // pipeline is excluded — its ahead-filter depends on the
            // current round, not on the issue round alone.
            if let CandidatePipeline::Incremental(index) = &self.candidates {
                if let Some(row) = self.row_cache.get(&(req.viewer, req.stripe)) {
                    if row.stamp == index.stripe_stamp(req.stripe)
                        && row.issued_at == req.issued_at
                        && row.requester == req.requester
                    {
                        self.row_cache_hits += 1;
                        for &b in &row.boxes {
                            self.cand_buf.push_box(b);
                        }
                        self.cand_stamps.push(row.stamp);
                        self.cand_buf.finish_row();
                        continue;
                    }
                }
                self.row_cache_misses += 1;
            }

            self.seen_epoch += 1;
            let epoch = self.seen_epoch;
            self.row_scratch.clear();
            for &b in self.placement.holders_of(req.stripe) {
                if b != req.requester {
                    self.box_seen[b.index()] = epoch;
                    self.row_scratch.push(b);
                }
            }
            match &self.candidates {
                CandidatePipeline::Incremental(index) => {
                    // Entries are live by construction (the wheel drained
                    // everything older than the window), so only the
                    // ahead-of-requester condition remains per entry.
                    for &(b, start) in index.candidates(req.stripe) {
                        debug_assert!(start + window >= now, "index kept an expired entry");
                        if b != req.requester
                            && self.box_seen[b.index()] != epoch
                            && start < req.issued_at
                        {
                            self.row_scratch.push(b);
                        }
                    }
                    let stamp = index.stripe_stamp(req.stripe);
                    self.cand_stamps.push(stamp);
                    let entry = self
                        .row_cache
                        .entry((req.viewer, req.stripe))
                        .or_insert_with(|| CachedRow {
                            stamp: 0,
                            issued_at: 0,
                            requester: req.requester,
                            boxes: Vec::new(),
                        });
                    entry.stamp = stamp;
                    entry.issued_at = req.issued_at;
                    entry.requester = req.requester;
                    entry.boxes.clear();
                    entry.boxes.extend_from_slice(&self.row_scratch);
                }
                CandidatePipeline::Rescan { caches, index, .. } => {
                    if let Some(cached) = index.get(&req.stripe) {
                        for &b in cached {
                            if b != req.requester
                                && self.box_seen[b.index()] != epoch
                                && caches[b.index()].can_serve(
                                    req.stripe,
                                    req.issued_at,
                                    now,
                                    window,
                                )
                            {
                                self.row_scratch.push(b);
                            }
                        }
                    }
                    // The legacy pipeline carries no change information.
                    self.cand_stamps.push(NO_STAMP);
                }
            }
            for &b in &self.row_scratch {
                self.cand_buf.push_box(b);
            }
            self.cand_buf.finish_row();
        }
    }

    fn schedule_round(
        &mut self,
        now: u64,
        requests: &[StripeRequest],
        self_served: usize,
        new_demands: usize,
    ) -> (RoundMetrics, bool) {
        // Build the flat candidate rows (timed into the round's candidate
        // profile together with the maintenance half from `step`).
        let fill = Instant::now();
        self.fill_round_candidates(now, requests);
        let fill_ns = fill.elapsed().as_nanos() as u64;
        let (live, expired, inserted) = self.candidates.stats();
        self.round_cand_stats = CandidateStats {
            index_entries: live,
            expired,
            inserted,
            build_ns: self.round_cand_stats.build_ns + fill_ns,
        };
        // Like the maintenance half, the fill is already timed into the
        // candidate profile — the span reuses the measurement.
        self.tracer
            .emit_ns(Stage::CandidateFill, fill_ns, requests.len() as u64);
        // Stable request identities let incremental schedulers patch the
        // previous round's flow network instead of rebuilding it.
        self.sched_keys.clear();
        self.sched_keys.extend(requests.iter().map(|r| RequestKey {
            viewer: r.viewer,
            stripe: r.stripe,
        }));

        // Relay attribution: a request downloaded by a box other than its
        // viewer is a poor box's stripe being fetched by its relay — the
        // relay's reservation forwards it every active round.
        self.relay_of.clear();
        if self.relay_broker.is_some() {
            self.relay_of.extend(
                requests
                    .iter()
                    .map(|r| (r.requester != r.viewer).then_some(r.requester)),
            );
        }

        let mut assignment = std::mem::take(&mut self.assignment);
        let clock = self.tracer.begin();
        match &self.relay_broker {
            Some(broker) => self.scheduler.schedule_relayed_view(
                &self.capacities,
                &self.sched_keys,
                self.cand_buf.view_with_stamps(&self.cand_stamps),
                &RelayView {
                    relay_of: &self.relay_of,
                    reserved: broker.reserved_slots(),
                },
                &mut assignment,
            ),
            None => self.scheduler.schedule_keyed_view(
                &self.capacities,
                &self.sched_keys,
                self.cand_buf.view_with_stamps(&self.cand_stamps),
                &mut assignment,
            ),
        }
        self.tracer
            .end(clock, Stage::Schedule, requests.len() as u64);
        debug_assert!(crate::scheduler::assignment_is_valid_view(
            &assignment,
            &self.capacities,
            self.cand_buf.view(),
            &mut self.dbg_loads,
        ));

        // Fold this round's forwarding demand into the relay subsystem's
        // utilization counters, merging the sharded scheduler's cross-swarm
        // lending observability when it ran.
        let relay_metrics = match &mut self.relay_broker {
            Some(broker) => {
                let clock = self.tracer.begin();
                self.relay_loads.clear();
                self.relay_loads.resize(self.capacities.len(), 0);
                for relay in self.relay_of.iter().flatten() {
                    self.relay_loads[relay.index()] += 1;
                }
                let mut stats = broker.note_round(&self.relay_loads);
                if let Some(lend) = self.scheduler.relay_stats() {
                    stats.contested_relays = lend.contested_relays;
                    stats.lent = lend.lent;
                }
                self.tracer
                    .end(clock, Stage::RelayAccount, stats.forwarded as u64);
                Some(stats)
            }
            None => None,
        };

        let mut served = 0usize;
        let mut served_from_allocation = 0usize;
        let mut served_from_cache = 0usize;
        let mut unserved = 0usize;
        // Pooled accumulation with generation marks: no linear `contains`
        // scan per unserved request.
        self.stalled_viewers.clear();
        self.failed_videos.clear();
        let mark = now + 1;

        // Delivery resolution rides the served loop: the outcome hash
        // depends only on (salt, round, viewer, stripe) — never on the
        // assigned supplier — so every scheduler pipeline resolves every
        // connection identically.
        let mut delivery = self.delivery.take();
        let deliver_clock = delivery.is_some().then(|| self.tracer.begin());
        for (req, assigned) in requests.iter().zip(&assignment) {
            match assigned {
                Some(supplier) => {
                    let outcome = delivery.as_mut().map_or(DeliveryOutcome::Delivered, |t| {
                        t.resolve(req.viewer, req.stripe, now)
                    });
                    match outcome {
                        DeliveryOutcome::Delivered => {
                            served += 1;
                            if self.placement.stores(*supplier, req.stripe) {
                                served_from_allocation += 1;
                            } else {
                                served_from_cache += 1;
                            }
                        }
                        DeliveryOutcome::Dropped | DeliveryOutcome::Timeout => {
                            // A failed delivery is a rebuffer round for its
                            // viewer, not a Lemma-1 failure: the matching
                            // existed, the data path lost it. It counts
                            // neither `served` nor `unserved`.
                            if self.rebuffer_mark[req.viewer.index()] != mark {
                                self.rebuffer_mark[req.viewer.index()] = mark;
                                delivery
                                    .as_mut()
                                    .expect("outcome came from the tracker")
                                    .note_rebuffer();
                            }
                            if self.viewer_mark[req.viewer.index()] != mark {
                                self.viewer_mark[req.viewer.index()] = mark;
                                self.stalled_viewers.push(req.viewer);
                            }
                        }
                    }
                }
                None => {
                    unserved += 1;
                    // Scheduler-unserved requests take the legacy stall
                    // path untouched — they do not enter the retry queue
                    // (Lemma-1 shortfall is the round's failure, not a
                    // data-path fault), keeping the fault-free run
                    // bit-identical to the pre-delivery engine.
                    if self.viewer_mark[req.viewer.index()] != mark {
                        self.viewer_mark[req.viewer.index()] = mark;
                        self.stalled_viewers.push(req.viewer);
                    }
                    let video_idx = req.stripe.video.0 as usize;
                    if self.video_mark[video_idx] != mark {
                        self.video_mark[video_idx] = mark;
                        self.failed_videos.push(req.stripe.video);
                    }
                }
            }
        }
        let delivery_stats = delivery.as_ref().map(DeliveryTracker::round_stats);
        self.delivery = delivery;
        if let Some(clock) = deliver_clock {
            let failed = delivery_stats
                .map(|d| (d.dropped + d.timed_out) as u64)
                .unwrap_or(0);
            self.tracer.end(clock, Stage::Deliver, failed);
        }

        for viewer in &self.stalled_viewers {
            self.stalls[viewer.index()] += 1;
        }

        // The degradation controller observes the round's scheduling
        // outcome last (its mode switch, if any, takes effect next round).
        let degradation_stats = match &mut self.degrade {
            Some(ctrl) => {
                let clock = self.tracer.begin();
                let stats = ctrl.note_round(now, requests.len() as u64, unserved as u64);
                self.tracer
                    .end(clock, Stage::Degrade, stats.window_unserved_ppm as u64);
                Some(stats)
            }
            None => None,
        };

        // A round fails iff a *download* leg goes unserved — the quantity
        // the paper's Lemma-1 feasibility (and every scheduler, sharded or
        // global) decides. Forwarding starvation on reserved relay
        // capacity does not fail the round: the reservation is the model's
        // statically-provisioned resource (Theorem 2 sizes it for the
        // worst case), so demand exceeding it is a model-assumption
        // violation reported through `RelayRoundStats::starved` and
        // `RelayUtilization::oversubscribed_rounds` each round, and named
        // per relay in `FailureRecord::starved_relays` whenever a failing
        // round is diagnosed below.
        let feasible = unserved == 0;
        if !feasible {
            let clock = self.tracer.begin();
            let (obstruction_size, obstruction_capacity, starved_relays) = if self
                .config
                .collect_obstructions
            {
                match &mut self.relay_broker {
                    // Heterogeneous rounds diagnose through the two-hop
                    // relay network: same supply-side Hall violator,
                    // plus the starved reservations by name.
                    Some(broker) => {
                        match broker.diagnose_view(
                            &self.capacities,
                            self.cand_buf.view(),
                            &self.relay_of,
                        ) {
                            Some(witness) => {
                                let supply = !witness.requests.is_empty();
                                (
                                    supply.then_some(witness.requests.len()),
                                    supply.then_some(witness.capacity),
                                    witness.starved.iter().map(|s| s.relay).collect(),
                                )
                            }
                            None => (None, None, Vec::new()),
                        }
                    }
                    None => {
                        let mut problem = ConnectionProblem::new(self.capacities.clone());
                        for cand in self.cand_buf.view().rows() {
                            problem.add_request(cand.iter().copied());
                        }
                        match find_obstruction_in(
                            &problem,
                            &mut self.obstruction_arena,
                            &mut self.obstruction_solver,
                        ) {
                            Some(ob) => (Some(ob.requests.len()), Some(ob.capacity), Vec::new()),
                            None => (None, None, Vec::new()),
                        }
                    }
                }
            } else {
                (None, None, Vec::new())
            };
            self.tracer
                .end(clock, Stage::FailureDiagnose, unserved as u64);
            self.report.failures.push(FailureRecord {
                round: now,
                unserved,
                obstruction_size,
                obstruction_capacity,
                starved_relays,
                videos: self.failed_videos.clone(),
                fault_slots_lost: self.fault_slots_lost,
            });
        }

        let metrics = RoundMetrics {
            round: now,
            new_demands,
            active_requests: requests.len(),
            self_served,
            served,
            unserved,
            served_from_allocation,
            served_from_cache,
            upload_slots_available: self.capacities.iter().map(|&c| c as u64).sum(),
            viewers: self.playing.iter().filter(|p| p.is_some()).count(),
            max_swarm: self.swarms.max_swarm_size(),
            // Sharding schedulers expose per-round shard observability
            // (shard counts, split water-filling, reconciliation work).
            shard: self.scheduler.shard_stats(),
            relay: relay_metrics,
            candidates: Some(self.round_cand_stats),
            repair: self.round_repair.take(),
            delivery: delivery_stats,
            degradation: degradation_stats,
            // Patched in by `step` once the round (including the repair
            // commit, which lands after this record is pushed) has closed.
            timing: None,
        };
        // Return the reused buffers for the next round.
        self.assignment = assignment;
        (metrics, feasible)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::GreedyScheduler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vod_core::{RandomPermutationAllocator, SystemParams};
    use vod_workloads::{FlashCrowd, NextVideoPolicy, SequentialViewing};

    fn small_system(n: usize, u: f64, c: u16, k: u32, duration: u32) -> VideoSystem {
        let params = SystemParams::new(n, u, 8, c, k, 1.5, duration);
        let mut rng = StdRng::seed_from_u64(42);
        VideoSystem::homogeneous(params, &RandomPermutationAllocator::new(k), &mut rng).unwrap()
    }

    #[test]
    fn well_provisioned_system_serves_sequential_viewing() {
        let sys = small_system(24, 2.0, 4, 4, 30);
        let sim = Simulator::new(&sys, SimConfig::new(60));
        let mut gen = SequentialViewing::new(24, sys.m(), NextVideoPolicy::RoundRobin, 1.5, 7);
        let report = sim.run(&mut gen);
        assert_eq!(report.round_count(), 60);
        assert!(
            report.all_rounds_feasible(),
            "failures: {:?}",
            report.failures
        );
        assert!(report.total_demands > 0);
        assert_eq!(report.service_ratio(), 1.0);
        assert!(report.mean_startup_delay() >= 3.0 - 1e-9);
    }

    #[test]
    fn flash_crowd_is_absorbed_by_swarming() {
        let sys = small_system(32, 2.0, 6, 4, 40);
        let sim = Simulator::new(&sys, SimConfig::new(50));
        let mut gen = FlashCrowd::single(VideoId(0), 32, sys.m(), 1.5, 3);
        let report = sim.run(&mut gen);
        assert!(
            report.all_rounds_feasible(),
            "failures: {:?}",
            report.failures
        );
        // Late joiners must have been served largely from caches of earlier
        // joiners (swarming), not only from the k allocation replicas.
        assert!(
            report.swarming_share() > 0.2,
            "share {}",
            report.swarming_share()
        );
    }

    #[test]
    fn candidate_row_cache_replays_stable_rows() {
        let sys = small_system(24, 2.0, 4, 4, 30);
        let mut gen = SequentialViewing::new(24, sys.m(), NextVideoPolicy::RoundRobin, 1.5, 7);
        let mut sim = Simulator::new(&sys, SimConfig::new(40));
        while sim.round() < 40 && sim.step(&mut gen) {}
        let (hits, misses) = sim.candidate_row_cache_stats();
        assert!(misses > 0, "first sightings must build rows");
        // A stripe request stays active (same issued_at) for the whole
        // playback, so stamp-stable rows replay from the cache.
        assert!(hits > misses, "hits {hits} vs misses {misses}");

        // The legacy rescan pipeline cannot cache rows at all.
        let mut gen = SequentialViewing::new(24, sys.m(), NextVideoPolicy::RoundRobin, 1.5, 7);
        let mut rescan = Simulator::new(&sys, SimConfig::new(40).with_rescan_candidates());
        while rescan.round() < 40 && rescan.step(&mut gen) {}
        assert_eq!(rescan.candidate_row_cache_stats(), (0, 0));
    }

    #[test]
    fn starved_system_fails_and_reports_obstruction() {
        // u = 0.4 < 1 with a large catalog: the adversarial situation arises
        // even under benign sequential demand because upload is insufficient.
        let sys = small_system(16, 0.4, 4, 1, 30);
        let sim = Simulator::new(&sys, SimConfig::new(30));
        let mut gen = SequentialViewing::new(16, sys.m(), NextVideoPolicy::RoundRobin, 1.5, 1);
        let report = sim.run(&mut gen);
        assert!(!report.all_rounds_feasible());
        assert!(report.aborted);
        let failure = &report.failures[0];
        assert!(failure.unserved > 0);
        assert!(failure.obstruction_size.is_some());
        assert!(failure.obstruction_capacity.unwrap() < failure.obstruction_size.unwrap() as u64);
    }

    #[test]
    fn continue_policy_keeps_simulating_after_failures() {
        let sys = small_system(16, 0.4, 4, 1, 30);
        let sim = Simulator::new(
            &sys,
            SimConfig::new(20)
                .continue_on_failure()
                .without_obstructions(),
        );
        let mut gen = SequentialViewing::new(16, sys.m(), NextVideoPolicy::RoundRobin, 1.5, 1);
        let report = sim.run(&mut gen);
        assert_eq!(report.round_count(), 20);
        assert!(!report.aborted);
        assert!(!report.failures.is_empty());
        assert!(report.service_ratio() < 1.0);
        assert!(report.failures.iter().all(|f| f.obstruction_size.is_none()));
    }

    #[test]
    fn sharded_scheduler_matches_maxflow_round_for_round() {
        let sys = small_system(24, 2.0, 4, 4, 30);
        let run = |sim: Simulator| {
            let mut gen = SequentialViewing::new(24, sys.m(), NextVideoPolicy::RoundRobin, 1.5, 7);
            sim.run(&mut gen)
        };
        let global = run(Simulator::new(&sys, SimConfig::new(50)));
        for threads in [1usize, 4] {
            let sharded = run(Simulator::with_sharded_scheduler(
                &sys,
                SimConfig::new(50),
                threads,
            ));
            assert_eq!(sharded.round_count(), global.round_count());
            for (a, b) in sharded.rounds.iter().zip(&global.rounds) {
                assert_eq!(a.served, b.served, "round {}", a.round);
                assert_eq!(a.unserved, b.unserved, "round {}", a.round);
            }
        }
    }

    #[test]
    fn greedy_scheduler_plugs_in() {
        let sys = small_system(16, 2.5, 4, 4, 25);
        let sim =
            Simulator::with_scheduler(&sys, SimConfig::new(40), Box::new(GreedyScheduler::new()));
        let mut gen = SequentialViewing::new(16, sys.m(), NextVideoPolicy::UniformRandom, 1.5, 2);
        let report = sim.run(&mut gen);
        assert!(report.round_count() > 0);
        assert!(report.service_ratio() > 0.9);
    }

    #[test]
    fn playback_records_cover_all_accepted_demands() {
        let sys = small_system(12, 2.0, 4, 4, 10);
        let sim = Simulator::new(&sys, SimConfig::new(35));
        let mut gen = SequentialViewing::new(12, sys.m(), NextVideoPolicy::RoundRobin, 1.5, 5);
        let report = sim.run(&mut gen);
        assert_eq!(report.playbacks.len(), report.total_demands);
        // With duration 10 and 35 rounds, boxes cycle through several videos.
        assert!(report.total_demands > 12);
    }

    #[test]
    fn occupancy_prevents_double_booking() {
        let sys = small_system(8, 2.0, 4, 4, 20);
        let sim = Simulator::new(&sys, SimConfig::new(10));
        // Generator that asks every box every round: only the first demand
        // per box per playback window may be accepted.
        let mut gen = SequentialViewing::new(8, sys.m(), NextVideoPolicy::RoundRobin, 4.0, 9);
        let report = sim.run(&mut gen);
        assert_eq!(report.total_demands, 8);
    }

    #[test]
    fn rescan_pipeline_reproduces_incremental_reports_bit_for_bit() {
        // The legacy full-rescan pipeline and the incremental expiry-wheel
        // index must produce identical simulations: same schedules, same
        // metrics, same candidate-pipeline counters (equality ignores only
        // the wall-clock build_ns).
        let sys = small_system(24, 2.0, 4, 4, 18);
        let run = |config: SimConfig| {
            let mut gen = SequentialViewing::new(24, sys.m(), NextVideoPolicy::RoundRobin, 1.5, 7);
            Simulator::new(&sys, config).run(&mut gen)
        };
        let incremental = run(SimConfig::new(45).continue_on_failure());
        let rescan = run(SimConfig::new(45)
            .continue_on_failure()
            .with_rescan_candidates());
        assert_eq!(incremental, rescan);
        let stats = incremental.rounds[10]
            .candidates
            .expect("candidate stats are recorded");
        assert!(stats.index_entries > 0, "index never populated");
    }

    #[test]
    fn candidate_stats_track_expiry_scale() {
        // With duration 6 and steady churn, entries keep expiring; the
        // expired counts across the run must equal insertions minus what is
        // still live at the end.
        let sys = small_system(12, 2.0, 4, 4, 6);
        let mut gen = SequentialViewing::new(12, sys.m(), NextVideoPolicy::RoundRobin, 1.5, 5);
        let report = Simulator::new(&sys, SimConfig::new(40).continue_on_failure()).run(&mut gen);
        let inserted: usize = report
            .rounds
            .iter()
            .map(|r| r.candidates.unwrap().inserted)
            .sum();
        let expired: usize = report
            .rounds
            .iter()
            .map(|r| r.candidates.unwrap().expired)
            .sum();
        let live_at_end = report
            .rounds
            .last()
            .unwrap()
            .candidates
            .unwrap()
            .index_entries;
        assert!(inserted > 0);
        assert!(expired > 0, "no entry ever expired");
        assert_eq!(inserted - expired, live_at_end);
    }

    /// A fork continues exactly like the original: same per-round metrics,
    /// same state signatures, even though the fork's scheduler, scratch,
    /// and row cache start cold.
    #[test]
    fn fork_with_continues_bit_identically() {
        let sys = small_system(12, 2.0, 4, 4, 8);
        let make_gen = || SequentialViewing::new(12, sys.m(), NextVideoPolicy::RoundRobin, 1.5, 5);
        let mut original = Simulator::new(&sys, SimConfig::new(30).continue_on_failure());
        let mut gen = make_gen();
        for _ in 0..10 {
            original.step(&mut gen);
        }
        let mut fork = original.fork_with(Box::new(MaxFlowScheduler::new()));
        assert_eq!(fork.round(), original.round());
        assert_eq!(fork.state_signature(), original.state_signature());
        // Generators are stateful, so warm two fresh ones identically (each
        // against its own throwaway simulator) before driving the pair.
        let mut gen_fork = make_gen();
        let mut gen_orig = make_gen();
        let mut rewarm_a = Simulator::new(&sys, SimConfig::new(30).continue_on_failure());
        let mut rewarm_b = Simulator::new(&sys, SimConfig::new(30).continue_on_failure());
        for _ in 0..10 {
            rewarm_a.step(&mut gen_fork);
            rewarm_b.step(&mut gen_orig);
        }
        for _ in 0..10 {
            fork.step(&mut gen_fork);
            original.step(&mut gen_orig);
            assert_eq!(fork.state_signature(), original.state_signature());
            assert_eq!(
                fork.report_so_far().rounds.last(),
                original.report_so_far().rounds.last()
            );
        }
    }

    /// The state signature is insensitive to pipeline implementation: the
    /// incremental and rescan candidate pipelines, and the sharded
    /// scheduler, all walk through identical signatures on the same
    /// demand sequence.
    #[test]
    fn state_signature_agrees_across_pipelines() {
        let sys = small_system(12, 2.0, 4, 4, 8);
        let config = SimConfig::new(20).continue_on_failure();
        let make_gen = || SequentialViewing::new(12, sys.m(), NextVideoPolicy::RoundRobin, 1.5, 5);
        let mut incremental =
            Simulator::with_scheduler(&sys, config, Box::new(MaxFlowScheduler::new()));
        let mut rescan = Simulator::with_scheduler(
            &sys,
            config.with_rescan_candidates(),
            Box::new(MaxFlowScheduler::new()),
        );
        let mut sharded = Simulator::with_sharded_scheduler(&sys, config, 2);
        let (mut g1, mut g2, mut g3) = (make_gen(), make_gen(), make_gen());
        for round in 0..20 {
            incremental.step(&mut g1);
            rescan.step(&mut g2);
            sharded.step(&mut g3);
            let sig = incremental.state_signature();
            assert_eq!(sig, rescan.state_signature(), "round {round}");
            assert_eq!(sig, sharded.state_signature(), "round {round}");
        }
    }

    /// The faults-off identity gate at unit scale: attaching a zero-rate
    /// fault model (which also attaches a delivery tracker) must leave
    /// every state signature and every scheduling outcome bit-identical
    /// to the plain engine — the tracker only *observes* until a hazard
    /// is configured.
    #[test]
    fn zero_rate_fault_model_keeps_the_schedule_bit_identical() {
        let sys = small_system(24, 2.0, 4, 4, 30);
        let make_gen = || SequentialViewing::new(24, sys.m(), NextVideoPolicy::RoundRobin, 1.5, 7);
        let mut plain = Simulator::new(&sys, SimConfig::new(40).continue_on_failure());
        let mut faulty = Simulator::new(&sys, SimConfig::new(40).continue_on_failure());
        faulty.attach_faults(FaultModel::new(sys.boxes(), 0x1DEA));
        let (mut g1, mut g2) = (make_gen(), make_gen());
        for round in 0..40 {
            plain.step(&mut g1);
            faulty.step(&mut g2);
            assert_eq!(
                plain.state_signature(),
                faulty.state_signature(),
                "round {round}"
            );
        }
        let plain = plain.into_report();
        let faulty = faulty.into_report();
        for (a, b) in plain.rounds.iter().zip(&faulty.rounds) {
            assert_eq!(
                (a.served, a.unserved),
                (b.served, b.unserved),
                "round {}",
                a.round
            );
        }
        let summary = faulty.delivery.expect("tracker was attached");
        assert_eq!(summary.dropped + summary.timed_out, 0);
        assert_eq!(summary.delivered, faulty.total_served());
        assert!(plain.delivery.is_none());
    }

    /// Fault trajectories are scheduler-invariant: the same seeded fault
    /// model (capacity windows, drops, surges) plus retry and degradation
    /// drives the incremental, rescan, and sharded pipelines through
    /// identical states and scheduling outcomes.
    #[test]
    fn pipelines_agree_under_injected_faults() {
        let sys = small_system(16, 2.0, 4, 4, 10);
        let config = SimConfig::new(30)
            .continue_on_failure()
            .without_obstructions();
        let make_gen = || SequentialViewing::new(16, sys.m(), NextVideoPolicy::RoundRobin, 1.5, 5);
        let make_faults = || {
            FaultModel::new(sys.boxes(), 0xFA17)
                .with_degradation(0.05, vec![25, 50], 1, 3)
                .with_flapping(0.03, 1, 2)
                .with_drop_rate(60_000, 20_000)
                .with_drop_surges(0.05, 200_000, 1, 3)
        };
        let mut sims = vec![
            Simulator::with_scheduler(&sys, config, Box::new(MaxFlowScheduler::new())),
            Simulator::with_scheduler(
                &sys,
                config.with_rescan_candidates(),
                Box::new(MaxFlowScheduler::new()),
            ),
            Simulator::with_sharded_scheduler(&sys, config, 2),
        ];
        for sim in &mut sims {
            sim.attach_faults(make_faults());
            sim.attach_degradation(DegradationConfig::default());
        }
        let mut gens: Vec<_> = (0..sims.len()).map(|_| make_gen()).collect();
        for round in 0..30 {
            for (sim, gen) in sims.iter_mut().zip(&mut gens) {
                sim.step(gen);
            }
            let sig = sims[0].state_signature();
            for sim in &sims[1..] {
                assert_eq!(sig, sim.state_signature(), "round {round}");
            }
            let last = sims[0].report_so_far().rounds.last().cloned();
            for sim in &sims[1..] {
                let other = sim.report_so_far().rounds.last().cloned();
                assert_eq!(
                    last.as_ref()
                        .map(|r| (r.served, r.unserved, r.delivery, r.degradation)),
                    other
                        .as_ref()
                        .map(|r| (r.served, r.unserved, r.delivery, r.degradation)),
                    "round {round}"
                );
            }
        }
        let report = sims.remove(0).into_report();
        let summary = report.delivery.expect("tracker attached");
        assert!(
            summary.dropped + summary.timed_out > 0,
            "hazards never fired"
        );
    }

    /// Dropped deliveries re-enter the schedule as retries and the
    /// affected playbacks still finish: with a generous retry policy no
    /// stream is abandoned, while the no-retry baseline abandons every
    /// stream its first drop touches.
    #[test]
    fn retries_recover_dropped_deliveries() {
        let sys = small_system(24, 2.0, 4, 4, 30);
        let run = |policy: DeliveryPolicy| {
            let mut sim = Simulator::new(&sys, SimConfig::new(60).continue_on_failure());
            sim.attach_faults(FaultModel::new(sys.boxes(), 0xD0_5E).with_drop_rate(120_000, 0));
            sim.attach_delivery(policy);
            let mut gen = SequentialViewing::new(24, sys.m(), NextVideoPolicy::RoundRobin, 1.5, 7);
            while sim.round() < 60 {
                sim.step(&mut gen);
            }
            sim.into_report()
        };
        let retrying = run(DeliveryPolicy::default());
        let summary = retrying.delivery.expect("tracker attached");
        assert!(summary.dropped > 0, "the drop hazard never fired");
        assert!(summary.retries > 0, "drops must come back as retries");
        assert_eq!(summary.abandoned, 0, "generous policy never abandons");

        let no_retry = run(DeliveryPolicy::no_retry());
        let summary = no_retry.delivery.expect("tracker attached");
        assert!(summary.abandoned > 0, "no-retry abandons on first drop");
        assert_eq!(summary.retries, 0, "no-retry never re-enters");
        // Abandoned streams stop requesting, so the no-retry run delivers
        // measurably less than the retrying run.
        assert!(
            no_retry.total_served() < retrying.total_served(),
            "no-retry {} vs retrying {}",
            no_retry.total_served(),
            retrying.total_served()
        );
    }

    /// The degradation controller sheds new admissions under sustained
    /// infeasibility and re-admits when headroom returns, without ever
    /// flapping round-to-round.
    #[test]
    fn degradation_sheds_and_readmits_with_hysteresis() {
        // u = 0.4 < 1: chronically infeasible under sustained demand.
        let sys = small_system(16, 0.4, 4, 1, 30);
        let mut sim = Simulator::new(
            &sys,
            SimConfig::new(60)
                .continue_on_failure()
                .without_obstructions(),
        );
        sim.attach_degradation(DegradationConfig {
            enter_ppm: 100_000,
            exit_ppm: 20_000,
            window: 4,
            cooldown: 3,
            min_stripes: 2,
        });
        let mut gen = SequentialViewing::new(16, sys.m(), NextVideoPolicy::RoundRobin, 1.5, 1);
        while sim.round() < 60 {
            sim.step(&mut gen);
        }
        let report = sim.into_report();
        let degraded: Vec<bool> = report
            .rounds
            .iter()
            .map(|r| r.degradation.expect("controller attached").degraded)
            .collect();
        assert!(degraded.iter().any(|&d| d), "never entered degraded mode");
        let shed: u64 = report
            .rounds
            .iter()
            .map(|r| r.degradation.unwrap().shed_demands as u64)
            .sum();
        let suppressed: u64 = report
            .rounds
            .iter()
            .map(|r| r.degradation.unwrap().suppressed_stripes as u64)
            .sum();
        assert!(shed > 0, "degraded mode must shed admissions");
        assert!(suppressed > 0, "partial service must suppress tail stripes");
        // No round-to-round flap: every switch persists for at least the
        // cooldown's worth of rounds.
        let mut last_switch = 0usize;
        for i in 1..degraded.len() {
            if degraded[i] != degraded[i - 1] {
                assert!(
                    i - last_switch >= 3 || last_switch == 0,
                    "mode flapped at round {i}"
                );
                last_switch = i;
            }
        }
    }

    /// An upload change through the engine refreshes the live slot table
    /// used by subsequent scheduling rounds.
    #[test]
    fn apply_relay_event_refreshes_capacities() {
        use vod_core::{Bandwidth, Catalog};
        let c: u16 = 4;
        let uploads = [0.6, 0.6, 2.6, 2.6, 2.6];
        let boxes = VideoSystem::proportional_boxes(&uploads, 6.0, c);
        let params = SystemParams::new(boxes.len(), 1.8, 8, c, 3, 1.3, 20);
        let catalog = Catalog::uniform(4, 20, c);
        let mut rng = StdRng::seed_from_u64(9);
        let sys = VideoSystem::heterogeneous(
            params,
            boxes,
            catalog,
            &RandomPermutationAllocator::new(3),
            Some(Bandwidth::from_streams(1.2)),
            &mut rng,
        )
        .unwrap();
        let mut sim = Simulator::new(&sys, SimConfig::new(20).continue_on_failure());
        let mut gen = SequentialViewing::new(5, sys.m(), NextVideoPolicy::RoundRobin, 1.2, 3);
        for _ in 0..3 {
            sim.step(&mut gen);
        }
        let before = sim.upload_slots(BoxId(4));
        sim.apply_relay_event(RelayEvent::UploadChanged(
            BoxId(4),
            Bandwidth::from_streams(3.4),
        ))
        .unwrap();
        let after = sim.upload_slots(BoxId(4));
        assert!(after > before, "{after} vs {before}");
        let broker = sim.relay_broker().unwrap();
        for idx in 0..5u32 {
            assert_eq!(
                sim.upload_slots(BoxId(idx)),
                broker.open_upload_slots(BoxId(idx))
            );
        }
        // The run continues cleanly on the refreshed table.
        for _ in 0..5 {
            sim.step(&mut gen);
        }
        assert_eq!(sim.round(), 8);
    }

    /// Staleness regression: the round a box leaves, it is gone from every
    /// live structure — liveness, capacities, the live allocation table,
    /// and the candidate pipeline. Its playback-cache entries must not
    /// linger as candidate rows until cache expiry, and a later rejoin
    /// must not claim replicas the box no longer stores. Both candidate
    /// pipelines walk through identical states under the same scripted
    /// departure, so a one-sided purge would break the equality below.
    #[test]
    fn departed_box_is_purged_the_round_it_leaves() {
        use vod_workloads::ChurnEvent;
        let sys = small_system(16, 2.0, 4, 4, 20);
        let make_gen = || SequentialViewing::new(16, sys.m(), NextVideoPolicy::RoundRobin, 1.5, 11);
        let config = SimConfig::new(40).continue_on_failure();
        let mut inc = Simulator::new(&sys, config);
        let mut rescan = Simulator::new(&sys, config.with_rescan_candidates());
        let (mut g1, mut g2) = (make_gen(), make_gen());
        for _ in 0..6 {
            inc.step(&mut g1);
            rescan.step(&mut g2);
        }
        let gone = BoxId(3);
        let held_before: Vec<StripeId> = inc
            .live_placement()
            .stripes()
            .filter(|(_, holders)| holders.contains(&gone))
            .map(|(stripe, _)| stripe)
            .collect();
        assert!(!held_before.is_empty(), "box 3 held no replicas");

        inc.apply_churn(ChurnEvent::Left(gone));
        rescan.apply_churn(ChurnEvent::Left(gone));
        // Purged immediately — not at cache expiry, not at the next round.
        assert!(!inc.is_alive(gone));
        assert_eq!(inc.alive_count(), 15);
        assert_eq!(inc.upload_slots(gone), 0);
        for (stripe, holders) in inc.live_placement().stripes() {
            assert!(!holders.contains(&gone), "{stripe} still lists box 3");
        }
        assert_eq!(inc.state_signature(), rescan.state_signature());

        // The box rejoins with fresh capacity but WITHOUT its old replicas
        // (nothing re-replicated them): candidate rows must not offer it as
        // a supplier of stripes it no longer stores.
        let node = *sys.boxes().iter().nth(gone.index()).unwrap();
        inc.apply_churn(ChurnEvent::Joined(node));
        rescan.apply_churn(ChurnEvent::Joined(node));
        assert!(inc.is_alive(gone));
        assert!(inc.upload_slots(gone) > 0);
        for &stripe in &held_before {
            assert!(!inc.live_placement().stores(gone, stripe));
        }
        // Both pipelines continue bit-identically through the churned state.
        for round in 0..10 {
            inc.step(&mut g1);
            rescan.step(&mut g2);
            assert_eq!(
                inc.state_signature(),
                rescan.state_signature(),
                "round {round}"
            );
            assert_eq!(
                inc.report_so_far().rounds.last(),
                rescan.report_so_far().rounds.last(),
                "round {round}"
            );
        }
    }

    /// Engine-driven churn with repair: membership changes interleave with
    /// admissions, the repair planner re-replicates under its budget, and
    /// the whole process is deterministic — two runs from the same seeds
    /// produce bit-identical reports, and every surviving replica is held
    /// by a live box.
    #[test]
    fn engine_churn_with_repair_recovers_replication() {
        use vod_workloads::{ChurnModel, SessionLength};
        let sys = small_system(24, 2.0, 4, 3, 12);
        let run = || {
            let mut sim = Simulator::new(&sys, SimConfig::new(50).continue_on_failure());
            sim.attach_churn(
                ChurnModel::new(sys.boxes(), 77)
                    .with_session(SessionLength::Geometric { leave_rate: 0.03 })
                    .with_rejoin_delay(3, 6)
                    .with_min_up(16),
            );
            sim.attach_repair(RepairPlanner::for_system(&sys, 6));
            let mut gen = SequentialViewing::new(24, sys.m(), NextVideoPolicy::RoundRobin, 1.5, 5);
            for _ in 0..50 {
                sim.step(&mut gen);
            }
            sim
        };
        let sim = run();
        let planner = sim.repair_planner().unwrap();
        assert!(planner.repaired_total() > 0, "churn never exercised repair");
        let report = sim.report_so_far();
        let repaired: u64 = report
            .rounds
            .iter()
            .filter_map(|r| r.repair)
            .map(|r| r.repaired as u64)
            .sum();
        assert_eq!(repaired, planner.repaired_total());
        // Departed boxes hold nothing; every holder is live.
        for (stripe, holders) in sim.live_placement().stripes() {
            for &b in holders {
                assert!(sim.is_alive(b), "dead box {b} still holds {stripe}");
            }
        }
        // Bit-identical replay from the same seeds.
        let twin = run();
        assert_eq!(sim.state_signature(), twin.state_signature());
        assert_eq!(report, twin.report_so_far());
    }

    /// The live-population loop keeps every pipeline equivalence intact:
    /// with the same seeded churn process and repair planner attached, the
    /// incremental, rescan, and sharded engines walk through identical
    /// state signatures, and the sharded engine serves exactly as many
    /// requests per round as the global one.
    #[test]
    fn pipelines_agree_under_engine_driven_churn() {
        use vod_workloads::{ChurnModel, SessionLength};
        let sys = small_system(16, 2.0, 4, 3, 10);
        let config = SimConfig::new(30).continue_on_failure();
        let churn = || {
            ChurnModel::new(sys.boxes(), 19)
                .with_session(SessionLength::Geometric { leave_rate: 0.04 })
                .with_crash_rate(0.01)
                .with_rejoin_delay(2, 4)
                .with_min_up(10)
        };
        let make_gen = || SequentialViewing::new(16, sys.m(), NextVideoPolicy::RoundRobin, 1.5, 5);
        let mut inc = Simulator::new(&sys, config);
        let mut rescan = Simulator::new(&sys, config.with_rescan_candidates());
        let mut sharded = Simulator::with_sharded_scheduler(&sys, config, 2);
        for sim in [&mut inc, &mut rescan, &mut sharded] {
            sim.attach_churn(churn());
            sim.attach_repair(RepairPlanner::for_system(&sys, 4));
        }
        let (mut g1, mut g2, mut g3) = (make_gen(), make_gen(), make_gen());
        for round in 0..30 {
            inc.step(&mut g1);
            rescan.step(&mut g2);
            sharded.step(&mut g3);
            let sig = inc.state_signature();
            assert_eq!(sig, rescan.state_signature(), "round {round}");
            assert_eq!(sig, sharded.state_signature(), "round {round}");
        }
        let (global, shard) = (inc.report_so_far(), sharded.report_so_far());
        for (a, b) in global.rounds.iter().zip(&shard.rounds) {
            assert_eq!(a.served, b.served, "round {}", a.round);
            assert_eq!(a.unserved, b.unserved, "round {}", a.round);
            assert_eq!(a.repair, b.repair, "round {}", a.round);
        }
        assert!(
            global
                .rounds
                .iter()
                .any(|r| r.repair.is_some_and(|s| s.repaired > 0)),
            "churn never exercised repair"
        );
    }
}
