//! # vod-sim
//!
//! Discrete round-based simulator of the fully distributed Video-on-Demand
//! protocol studied in the IPDPS 2009 threshold paper. It executes the
//! preloading strategy of Section 3 (and the relaying strategy of Section 4
//! for `u*`-balanced heterogeneous systems) against arbitrary demand
//! generators, computing each round's connection matching with the paper's
//! max-flow machinery (or baseline schedulers) and reporting feasibility,
//! utilization, sourcing/swarming split, start-up delays, and obstruction
//! witnesses.
//!
//! * [`request`] — stripe requests, per-box download plans, start-up delays;
//! * [`candidates`] — incremental candidate-index maintenance: the expiry
//!   wheel behind each round's `B(x)` supplier sets;
//! * [`swarm`] — per-video swarm tracking and preload-stripe rotation;
//! * [`scheduler`] — max-flow, greedy, random, incremental, and per-swarm
//!   sharded schedulers (parallel shard solves, deficit water-filling
//!   budget splits, persistent incremental reconciliation), plus the
//!   relay subsystem's [`RelayBroker`] (live `u*`-compensation:
//!   reservation re-planning under churn, per-relay utilization, starved
//!   reservation witnesses);
//! * [`engine`] — the simulator itself, including the live-population loop
//!   (engine-driven churn, liveness-aware occupancy, live allocation table);
//! * [`metrics`] — per-round and aggregate measurements;
//! * [`repair`] — budgeted, deterministic re-replication of stripes that
//!   lost replicas to departures, competing with serving traffic through
//!   the same Lemma-1 box budgets;
//! * [`delivery`] — the delivery-reliability state machine: scheduled
//!   connections resolve into delivered/dropped/timed-out outcomes, failed
//!   streams retry with deadline + capped exponential backoff through the
//!   same Lemma-1 budgets, and a graceful-degradation controller sheds
//!   load (admission shedding, partial service) under sustained
//!   infeasibility with hysteresis.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod candidates;
pub mod delivery;
pub mod engine;
pub mod metrics;
pub mod repair;
pub mod request;
pub mod scheduler;
pub mod swarm;

pub use candidates::{CandidateIndex, CandidateStats};
pub use delivery::{
    Admission, DegradationConfig, DegradationController, DegradationRoundStats, DeliveryOutcome,
    DeliveryPolicy, DeliveryRoundStats, DeliverySummary, DeliveryTracker,
};
pub use engine::{CandidateMode, FailurePolicy, SimConfig, Simulator};
pub use metrics::{FailureRecord, PlaybackRecord, RoundMetrics, SimulationReport};
pub use repair::{RepairPlanner, RepairRoundStats, RepairTransfer};
pub use request::{PlaybackState, RequestKind, StripePlan, StripeRequest};
pub use scheduler::{
    GreedyScheduler, IncrementalMatcher, MaxFlowScheduler, RandomScheduler, ReconcilePolicy,
    RelayBroker, RelayEvent, RelayRoundStats, RelayUtilization, RequestKey, Scheduler,
    ShardRoundStats, ShardedMatcher, SplitPolicy,
};
pub use swarm::{Swarm, SwarmTracker};
// Observability surface: the tracer types callers hand to
// [`Simulator::attach_tracer`] and the timing aggregates they read back,
// re-exported so downstream crates need no direct vod-obs dependency.
pub use vod_obs::{
    eq_ignoring_timing, RunProfile, Stage, StageProfile, StageTimings, TimingNeutral, TraceHandle,
    TraceRecord,
};
