//! Simulation metrics.
//!
//! The simulator records, per round and aggregated over the run, the
//! quantities the experiments report: served/unserved requests, upload
//! utilization, sourcing vs swarming split, start-up delays, and the
//! obstructions witnessing infeasible rounds.

use crate::candidates::CandidateStats;
use crate::delivery::{DegradationRoundStats, DeliveryRoundStats, DeliverySummary};
use crate::repair::RepairRoundStats;
use crate::scheduler::{RelayRoundStats, RelayUtilization, ShardRoundStats};
use vod_core::json::{obj, Json, JsonCodec, JsonError};
use vod_core::{BoxId, VideoId};
use vod_obs::{RunProfile, StageTimings};

/// Per-round measurements.
#[derive(Clone, Debug, Default)]
pub struct RoundMetrics {
    /// The round these metrics describe.
    pub round: u64,
    /// New video demands accepted this round.
    pub new_demands: usize,
    /// Active stripe requests needing a connection this round.
    pub active_requests: usize,
    /// Requests satisfied from the requester's own static storage
    /// (no connection needed).
    pub self_served: usize,
    /// Requests served over the network this round.
    pub served: usize,
    /// Requests left unserved (stalls) this round.
    pub unserved: usize,
    /// Served requests whose supplier holds the stripe in its static
    /// allocation (the paper's *sourcing*).
    pub served_from_allocation: usize,
    /// Served requests whose supplier only has the stripe in its playback
    /// cache (the paper's *swarming*).
    pub served_from_cache: usize,
    /// Total upload slots available this round (Σ ⌊u_b·c⌋ net of relaying).
    pub upload_slots_available: u64,
    /// Number of boxes currently playing a video.
    pub viewers: usize,
    /// Largest swarm size this round.
    pub max_swarm: usize,
    /// Sharded-scheduler observability (shard counts, budget-split
    /// water-filling, reconciliation work), when the round was scheduled by
    /// a sharding scheduler; `None` otherwise.
    pub shard: Option<ShardRoundStats>,
    /// Relay-subsystem observability (forwarding demand vs reserved
    /// capacity, saturation, cross-shard lending), when the system is
    /// heterogeneous with a compensation plan; `None` otherwise.
    pub relay: Option<RelayRoundStats>,
    /// Candidate-pipeline observability (index size, expiry/insert volume,
    /// build wall-clock; equality ignores the timing). `None` only in
    /// reports serialized before the pipeline existed.
    pub candidates: Option<CandidateStats>,
    /// Stripe-repair observability (queue depth, transfers, budget slots
    /// spent), when a repair planner is attached; `None` otherwise. Repair
    /// plans are scheduler-invariant, so equality compares this field
    /// across engine variants un-normalized.
    pub repair: Option<RepairRoundStats>,
    /// Delivery-reliability observability (outcome split, retries,
    /// backoff/abandonment, rebuffering viewers), when a delivery tracker
    /// is attached; `None` otherwise. Delivery outcomes are
    /// scheduler-invariant, so equality compares this un-normalized.
    pub delivery: Option<DeliveryRoundStats>,
    /// Graceful-degradation observability (mode, shed admissions,
    /// partial-service suppressions, windowed unserved ratio), when a
    /// degradation controller is attached; `None` otherwise.
    pub degradation: Option<DegradationRoundStats>,
    /// Per-stage wall-clock breakdown of the round, when a tracer was
    /// attached; `None` otherwise (including every report serialized
    /// before tracing existed). Pure timing: excluded from equality, so a
    /// traced round compares equal to an untraced one.
    pub timing: Option<StageTimings>,
}

impl PartialEq for RoundMetrics {
    fn eq(&self, other: &Self) -> bool {
        // `timing` is deliberately excluded: it is wall-clock only (see
        // [`vod_obs::TimingNeutral`]), and a `Some`-vs-`None` mismatch
        // between a traced and an untraced run must not fail the
        // bit-equality gates.
        self.round == other.round
            && self.new_demands == other.new_demands
            && self.active_requests == other.active_requests
            && self.self_served == other.self_served
            && self.served == other.served
            && self.unserved == other.unserved
            && self.served_from_allocation == other.served_from_allocation
            && self.served_from_cache == other.served_from_cache
            && self.upload_slots_available == other.upload_slots_available
            && self.viewers == other.viewers
            && self.max_swarm == other.max_swarm
            && self.shard == other.shard
            && self.relay == other.relay
            && self.candidates == other.candidates
            && self.repair == other.repair
            && self.delivery == other.delivery
            && self.degradation == other.degradation
    }
}

impl JsonCodec for RoundMetrics {
    fn to_json(&self) -> Json {
        obj(vec![
            ("round", self.round.to_json()),
            ("new_demands", self.new_demands.to_json()),
            ("active_requests", self.active_requests.to_json()),
            ("self_served", self.self_served.to_json()),
            ("served", self.served.to_json()),
            ("unserved", self.unserved.to_json()),
            (
                "served_from_allocation",
                self.served_from_allocation.to_json(),
            ),
            ("served_from_cache", self.served_from_cache.to_json()),
            (
                "upload_slots_available",
                self.upload_slots_available.to_json(),
            ),
            ("viewers", self.viewers.to_json()),
            ("max_swarm", self.max_swarm.to_json()),
            ("shard", self.shard.to_json()),
            ("relay", self.relay.to_json()),
            ("candidates", self.candidates.to_json()),
            ("repair", self.repair.to_json()),
            ("delivery", self.delivery.to_json()),
            ("degradation", self.degradation.to_json()),
            ("timing", self.timing.to_json()),
        ])
    }
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(RoundMetrics {
            round: u64::from_json(json.field("round")?)?,
            new_demands: usize::from_json(json.field("new_demands")?)?,
            active_requests: usize::from_json(json.field("active_requests")?)?,
            self_served: usize::from_json(json.field("self_served")?)?,
            served: usize::from_json(json.field("served")?)?,
            unserved: usize::from_json(json.field("unserved")?)?,
            served_from_allocation: usize::from_json(json.field("served_from_allocation")?)?,
            served_from_cache: usize::from_json(json.field("served_from_cache")?)?,
            upload_slots_available: u64::from_json(json.field("upload_slots_available")?)?,
            viewers: usize::from_json(json.field("viewers")?)?,
            max_swarm: usize::from_json(json.field("max_swarm")?)?,
            // Absent in reports serialized before the shard field existed.
            shard: match json.field("shard") {
                Ok(value) => Option::from_json(value)?,
                Err(_) => None,
            },
            // Absent in reports serialized before the relay subsystem.
            relay: match json.field("relay") {
                Ok(value) => Option::from_json(value)?,
                Err(_) => None,
            },
            // Absent in reports serialized before the candidate pipeline.
            candidates: match json.field("candidates") {
                Ok(value) => Option::from_json(value)?,
                Err(_) => None,
            },
            // Absent in reports serialized before the repair planner.
            repair: match json.field("repair") {
                Ok(value) => Option::from_json(value)?,
                Err(_) => None,
            },
            // Absent in reports serialized before delivery tracking.
            delivery: match json.field("delivery") {
                Ok(value) => Option::from_json(value)?,
                Err(_) => None,
            },
            // Absent in reports serialized before the degradation
            // controller existed.
            degradation: match json.field("degradation") {
                Ok(value) => Option::from_json(value)?,
                Err(_) => None,
            },
            // Absent in reports serialized before the tracer existed.
            timing: match json.field("timing") {
                Ok(value) => Option::from_json(value)?,
                Err(_) => None,
            },
        })
    }
}

impl RoundMetrics {
    /// Fraction of available upload slots in use (0 when none available).
    pub fn utilization(&self) -> f64 {
        if self.upload_slots_available == 0 {
            0.0
        } else {
            self.served as f64 / self.upload_slots_available as f64
        }
    }

    /// Fraction of active requests that stalled this round.
    pub fn stall_rate(&self) -> f64 {
        if self.active_requests == 0 {
            0.0
        } else {
            self.unserved as f64 / self.active_requests as f64
        }
    }
}

/// A round in which the connection matching could not serve every request.
#[derive(Clone, Debug, PartialEq)]
pub struct FailureRecord {
    /// The failing round.
    pub round: u64,
    /// Number of unserved requests.
    pub unserved: usize,
    /// Size of the obstruction (Hall-violating request set) extracted from
    /// the minimum cut, if obstruction collection was enabled.
    pub obstruction_size: Option<usize>,
    /// Upload capacity (stripe connections) of the obstruction's
    /// neighbourhood.
    pub obstruction_capacity: Option<u64>,
    /// Relays whose forwarding reservation was starved this round, when
    /// the obstruction was extracted through the relay subsystem's two-hop
    /// network (heterogeneous systems only; empty otherwise).
    pub starved_relays: Vec<BoxId>,
    /// Videos implicated in the unserved requests.
    pub videos: Vec<VideoId>,
    /// Upload slots removed from the round's capacity table by injected
    /// fault windows (0 when no faults were active — the round was
    /// infeasible on the allocation's own merits).
    pub fault_slots_lost: u64,
}

impl FailureRecord {
    /// Names the failure's cause: `"allocation"` when the round was
    /// infeasible at full capacity, `"fault-degraded"` when injected
    /// faults had removed upload slots the matching could have used.
    pub fn cause(&self) -> &'static str {
        if self.fault_slots_lost > 0 {
            "fault-degraded"
        } else {
            "allocation"
        }
    }
}

impl JsonCodec for FailureRecord {
    fn to_json(&self) -> Json {
        obj(vec![
            ("round", self.round.to_json()),
            ("unserved", self.unserved.to_json()),
            ("obstruction_size", self.obstruction_size.to_json()),
            ("obstruction_capacity", self.obstruction_capacity.to_json()),
            ("starved_relays", self.starved_relays.to_json()),
            ("videos", self.videos.to_json()),
            ("fault_slots_lost", self.fault_slots_lost.to_json()),
        ])
    }
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(FailureRecord {
            round: u64::from_json(json.field("round")?)?,
            unserved: usize::from_json(json.field("unserved")?)?,
            obstruction_size: Option::from_json(json.field("obstruction_size")?)?,
            obstruction_capacity: Option::from_json(json.field("obstruction_capacity")?)?,
            // Absent in reports serialized before the relay subsystem.
            starved_relays: match json.field("starved_relays") {
                Ok(value) => Vec::from_json(value)?,
                Err(_) => Vec::new(),
            },
            videos: Vec::from_json(json.field("videos")?)?,
            // Absent in reports serialized before fault injection.
            fault_slots_lost: match json.field("fault_slots_lost") {
                Ok(value) => u64::from_json(value)?,
                Err(_) => 0,
            },
        })
    }
}

/// One completed playback, for start-up delay and completion statistics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlaybackRecord {
    /// The viewer.
    pub box_id: BoxId,
    /// The video played.
    pub video: VideoId,
    /// Swarm entry round.
    pub entered_at: u64,
    /// Start-up delay in rounds.
    pub startup_delay: u64,
    /// Rounds during which at least one of its stripe requests stalled.
    pub stalled_rounds: u64,
}

impl JsonCodec for PlaybackRecord {
    fn to_json(&self) -> Json {
        obj(vec![
            ("box_id", self.box_id.to_json()),
            ("video", self.video.to_json()),
            ("entered_at", self.entered_at.to_json()),
            ("startup_delay", self.startup_delay.to_json()),
            ("stalled_rounds", self.stalled_rounds.to_json()),
        ])
    }
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(PlaybackRecord {
            box_id: BoxId::from_json(json.field("box_id")?)?,
            video: VideoId::from_json(json.field("video")?)?,
            entered_at: u64::from_json(json.field("entered_at")?)?,
            startup_delay: u64::from_json(json.field("startup_delay")?)?,
            stalled_rounds: u64::from_json(json.field("stalled_rounds")?)?,
        })
    }
}

/// Aggregated result of a simulation run.
#[derive(Clone, Debug, Default)]
pub struct SimulationReport {
    /// Per-round metrics, in round order.
    pub rounds: Vec<RoundMetrics>,
    /// Failing rounds.
    pub failures: Vec<FailureRecord>,
    /// Completed (or still running at the end) playbacks.
    pub playbacks: Vec<PlaybackRecord>,
    /// Total demands accepted.
    pub total_demands: usize,
    /// Total demands rejected because the box was busy.
    pub rejected_demands: usize,
    /// True when the run was aborted on the first infeasible round.
    pub aborted: bool,
    /// Cumulative per-relay utilization of the reserved forwarding
    /// capacity (heterogeneous systems only; empty otherwise).
    pub relays: Vec<RelayUtilization>,
    /// Whole-run delivery/degradation summary, when a delivery tracker
    /// was attached; `None` otherwise (including every report serialized
    /// before delivery tracking existed).
    pub delivery: Option<DeliverySummary>,
    /// Whole-run per-stage profile (span counts, totals, log-bucketed
    /// latency histograms), when a tracer was attached; `None` otherwise.
    /// Pure timing: excluded from equality like `RoundMetrics::timing`.
    pub profile: Option<RunProfile>,
}

impl PartialEq for SimulationReport {
    fn eq(&self, other: &Self) -> bool {
        // `profile` is wall-clock only and deliberately excluded (see
        // [`RoundMetrics`]'s equality): traced and untraced runs of the
        // same schedule must compare equal.
        self.rounds == other.rounds
            && self.failures == other.failures
            && self.playbacks == other.playbacks
            && self.total_demands == other.total_demands
            && self.rejected_demands == other.rejected_demands
            && self.aborted == other.aborted
            && self.relays == other.relays
            && self.delivery == other.delivery
    }
}

impl JsonCodec for SimulationReport {
    fn to_json(&self) -> Json {
        obj(vec![
            ("rounds", self.rounds.to_json()),
            ("failures", self.failures.to_json()),
            ("playbacks", self.playbacks.to_json()),
            ("total_demands", self.total_demands.to_json()),
            ("rejected_demands", self.rejected_demands.to_json()),
            ("aborted", self.aborted.to_json()),
            ("relays", self.relays.to_json()),
            ("delivery", self.delivery.to_json()),
            ("profile", self.profile.to_json()),
        ])
    }
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(SimulationReport {
            rounds: Vec::from_json(json.field("rounds")?)?,
            failures: Vec::from_json(json.field("failures")?)?,
            playbacks: Vec::from_json(json.field("playbacks")?)?,
            total_demands: usize::from_json(json.field("total_demands")?)?,
            rejected_demands: usize::from_json(json.field("rejected_demands")?)?,
            aborted: bool::from_json(json.field("aborted")?)?,
            // Absent in reports serialized before the relay subsystem.
            relays: match json.field("relays") {
                Ok(value) => Vec::from_json(value)?,
                Err(_) => Vec::new(),
            },
            // Absent in reports serialized before delivery tracking.
            delivery: match json.field("delivery") {
                Ok(value) => Option::from_json(value)?,
                Err(_) => None,
            },
            // Absent in reports serialized before the tracer existed.
            profile: match json.field("profile") {
                Ok(value) => Option::from_json(value)?,
                Err(_) => None,
            },
        })
    }
}

impl SimulationReport {
    /// Number of simulated rounds.
    pub fn round_count(&self) -> usize {
        self.rounds.len()
    }

    /// True when every round was fully served.
    pub fn all_rounds_feasible(&self) -> bool {
        self.failures.is_empty()
    }

    /// Total stripe-request-rounds served over the run.
    pub fn total_served(&self) -> u64 {
        self.rounds.iter().map(|r| r.served as u64).sum()
    }

    /// Total stripe-request-rounds that stalled over the run.
    pub fn total_unserved(&self) -> u64 {
        self.rounds.iter().map(|r| r.unserved as u64).sum()
    }

    /// Fraction of request-rounds served (1.0 when nothing stalled).
    pub fn service_ratio(&self) -> f64 {
        let served = self.total_served();
        let total = served + self.total_unserved();
        if total == 0 {
            1.0
        } else {
            served as f64 / total as f64
        }
    }

    /// Mean upload utilization over rounds with any available capacity.
    pub fn mean_utilization(&self) -> f64 {
        let used: Vec<f64> = self
            .rounds
            .iter()
            .filter(|r| r.upload_slots_available > 0)
            .map(RoundMetrics::utilization)
            .collect();
        if used.is_empty() {
            0.0
        } else {
            used.iter().sum::<f64>() / used.len() as f64
        }
    }

    /// Peak upload utilization over the run.
    pub fn peak_utilization(&self) -> f64 {
        self.rounds
            .iter()
            .map(RoundMetrics::utilization)
            .fold(0.0, f64::max)
    }

    /// Share of network-served requests that came from playback caches
    /// (swarming) rather than the static allocation (sourcing).
    pub fn swarming_share(&self) -> f64 {
        let cache: u64 = self.rounds.iter().map(|r| r.served_from_cache as u64).sum();
        let alloc: u64 = self
            .rounds
            .iter()
            .map(|r| r.served_from_allocation as u64)
            .sum();
        if cache + alloc == 0 {
            0.0
        } else {
            cache as f64 / (cache + alloc) as f64
        }
    }

    /// Mean start-up delay over all playbacks (0 when none).
    pub fn mean_startup_delay(&self) -> f64 {
        if self.playbacks.is_empty() {
            0.0
        } else {
            self.playbacks
                .iter()
                .map(|p| p.startup_delay as f64)
                .sum::<f64>()
                / self.playbacks.len() as f64
        }
    }

    /// Maximum start-up delay over all playbacks.
    pub fn max_startup_delay(&self) -> u64 {
        self.playbacks
            .iter()
            .map(|p| p.startup_delay)
            .max()
            .unwrap_or(0)
    }

    /// Total forwarding units served from reserved relay capacity over the
    /// run (0 for homogeneous runs — no relays).
    pub fn total_forwarded(&self) -> u64 {
        self.rounds
            .iter()
            .filter_map(|r| r.relay.as_ref())
            .map(|r| r.forwarded as u64)
            .sum()
    }

    /// Total forwarding demand the static reservations could not cover
    /// over the run.
    pub fn total_forward_starved(&self) -> u64 {
        self.rounds
            .iter()
            .filter_map(|r| r.relay.as_ref())
            .map(|r| r.starved as u64)
            .sum()
    }

    /// Total connections lost to delivery faults (drops + timeouts) over
    /// the run (0 when no delivery tracker was attached).
    pub fn total_delivery_failures(&self) -> u64 {
        self.delivery.map(|d| d.dropped + d.timed_out).unwrap_or(0)
    }

    /// Rounds spent in degraded mode over the run (0 when no degradation
    /// controller was attached).
    pub fn degraded_rounds(&self) -> u64 {
        self.delivery.map(|d| d.degraded_rounds).unwrap_or(0)
    }

    /// Failing rounds attributable to injected faults (capacity removed
    /// by active fault windows when the matching came up short).
    pub fn fault_attributed_failures(&self) -> usize {
        self.failures
            .iter()
            .filter(|f| f.cause() == "fault-degraded")
            .count()
    }

    /// Fraction of playbacks that never stalled.
    pub fn smooth_playback_ratio(&self) -> f64 {
        if self.playbacks.is_empty() {
            return 1.0;
        }
        self.playbacks
            .iter()
            .filter(|p| p.stalled_rounds == 0)
            .count() as f64
            / self.playbacks.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(served: usize, unserved: usize, slots: u64) -> RoundMetrics {
        RoundMetrics {
            served,
            unserved,
            upload_slots_available: slots,
            active_requests: served + unserved,
            ..RoundMetrics::default()
        }
    }

    #[test]
    fn utilization_and_stall_rate() {
        let r = round(6, 2, 12);
        assert!((r.utilization() - 0.5).abs() < 1e-12);
        assert!((r.stall_rate() - 0.25).abs() < 1e-12);
        let empty = RoundMetrics::default();
        assert_eq!(empty.utilization(), 0.0);
        assert_eq!(empty.stall_rate(), 0.0);
    }

    #[test]
    fn report_aggregates() {
        let report = SimulationReport {
            rounds: vec![round(4, 0, 8), round(8, 2, 8)],
            failures: vec![FailureRecord {
                round: 1,
                unserved: 2,
                obstruction_size: Some(3),
                obstruction_capacity: Some(1),
                starved_relays: Vec::new(),
                videos: vec![VideoId(0)],
                fault_slots_lost: 0,
            }],
            playbacks: vec![
                PlaybackRecord {
                    box_id: BoxId(0),
                    video: VideoId(0),
                    entered_at: 0,
                    startup_delay: 3,
                    stalled_rounds: 0,
                },
                PlaybackRecord {
                    box_id: BoxId(1),
                    video: VideoId(0),
                    entered_at: 1,
                    startup_delay: 5,
                    stalled_rounds: 2,
                },
            ],
            total_demands: 2,
            rejected_demands: 1,
            aborted: false,
            relays: Vec::new(),
            delivery: None,
            profile: None,
        };
        assert_eq!(report.round_count(), 2);
        assert!(!report.all_rounds_feasible());
        assert_eq!(report.total_served(), 12);
        assert_eq!(report.total_unserved(), 2);
        assert!((report.service_ratio() - 12.0 / 14.0).abs() < 1e-12);
        assert!((report.mean_utilization() - 0.75).abs() < 1e-12);
        assert_eq!(report.peak_utilization(), 1.0);
        assert_eq!(report.mean_startup_delay(), 4.0);
        assert_eq!(report.max_startup_delay(), 5);
        assert_eq!(report.smooth_playback_ratio(), 0.5);
    }

    #[test]
    fn swarming_share_counts_cache_served() {
        let mut r0 = round(10, 0, 20);
        r0.served_from_allocation = 6;
        r0.served_from_cache = 4;
        let report = SimulationReport {
            rounds: vec![r0],
            ..SimulationReport::default()
        };
        assert!((report.swarming_share() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_report_defaults() {
        let report = SimulationReport::default();
        assert_eq!(report.service_ratio(), 1.0);
        assert_eq!(report.mean_utilization(), 0.0);
        assert_eq!(report.smooth_playback_ratio(), 1.0);
        assert!(report.all_rounds_feasible());
    }
}
