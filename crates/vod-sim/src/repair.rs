//! Stripe repair planning: re-replicating under-replicated stripes under a
//! per-round upload budget.
//!
//! The paper assumes a static box population, so the balanced allocation of
//! Theorem 1 never degrades. Under live churn it does: a departing box takes
//! its `k`-replica shares with it, and every stripe it held drops one
//! replication level. The [`RepairPlanner`] restores the invariant: it keeps
//! a queue of under-replicated stripes and, each round, plans replica
//! transfers from surviving holders onto alive boxes with spare storage.
//!
//! Repair traffic competes with serving traffic through the same Lemma-1
//! box budgets: every planned transfer consumes one upload slot of its
//! source *before* the round is scheduled, so the scheduler sees the reduced
//! `⌊u_b·c⌋` capacities and a repair slot can never be double-spent on a
//! viewer. Planning deliberately reads only scheduler-invariant state
//! (placement, liveness, capacities) — never the round's assignment. The
//! global max-flow and sharded schedulers agree on served *counts* but not
//! on supplier identity, so any plan derived from per-box assignment loads
//! would make the placement evolve differently per scheduler and break the
//! bit-identical equivalence gates.
//!
//! Determinism: pending stripes are repaired most-degraded first (ascending
//! replica count, ascending stripe id on ties), sources are the first alive
//! holder with budget left (holder order is insertion order, itself
//! deterministic), and destinations maximise spare storage with lowest box
//! id on ties. The plan is a pure function of (placement, alive, capacities,
//! config), identical across schedulers and thread counts.

use vod_core::json::{obj, Json, JsonCodec, JsonError};
use vod_core::{BoxId, Catalog, Placement, StripeId, VideoSystem};

/// One planned replica transfer: `dest` fetches `stripe` from `source`,
/// spending one of `source`'s upload slots this round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RepairTransfer {
    /// The stripe being re-replicated.
    pub stripe: StripeId,
    /// The surviving holder uploading the replica.
    pub source: BoxId,
    /// The box receiving the new replica.
    pub dest: BoxId,
}

/// Per-round repair observability, threaded into `RoundMetrics::repair`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairRoundStats {
    /// Under-replicated stripes known when the round was planned (after
    /// dropping healed and lost stripes).
    pub pending: usize,
    /// Replica transfers planned this round.
    pub repaired: usize,
    /// Pending stripes still below target after this round's transfers.
    pub deferred: usize,
    /// Stripes with no surviving replica so far (data lost; cumulative).
    pub lost: usize,
    /// Upload slots consumed by repair this round (one per transfer),
    /// deducted from the same `⌊u_b·c⌋` budgets serving traffic uses.
    pub budget_slots: u32,
}

impl JsonCodec for RepairRoundStats {
    fn to_json(&self) -> Json {
        obj(vec![
            ("pending", self.pending.to_json()),
            ("repaired", self.repaired.to_json()),
            ("deferred", self.deferred.to_json()),
            ("lost", self.lost.to_json()),
            ("budget_slots", self.budget_slots.to_json()),
        ])
    }
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(RepairRoundStats {
            pending: usize::from_json(json.field("pending")?)?,
            repaired: usize::from_json(json.field("repaired")?)?,
            deferred: usize::from_json(json.field("deferred")?)?,
            lost: usize::from_json(json.field("lost")?)?,
            budget_slots: u32::from_json(json.field("budget_slots")?)?,
        })
    }
}

/// Budgeted, deterministic re-replication of under-replicated stripes.
///
/// The planner is notified of replica losses ([`RepairPlanner::note_lost`]),
/// plans a bounded batch of transfers each round
/// ([`RepairPlanner::plan_round`]), and commits them to the live placement
/// after the round is scheduled ([`RepairPlanner::commit`]) so a repaired
/// replica starts serving the *next* round — a transfer takes the round it
/// was planned in.
#[derive(Clone, Debug)]
pub struct RepairPlanner {
    /// Target replicas per stripe (`k`).
    target: usize,
    /// Maximum transfers per round across all stripes.
    round_budget: u32,
    /// Maximum transfers drawn from a single source box per round.
    per_box_egress: u32,
    /// Storage capacity (stripe slots) per box.
    storage: Vec<u32>,
    /// Under-replicated stripes awaiting repair (sorted, deduped).
    pending: Vec<StripeId>,
    /// Stripes with no surviving replica (sorted, deduped; cumulative).
    lost: Vec<StripeId>,
    /// Transfers planned by the most recent [`RepairPlanner::plan_round`].
    transfers: Vec<RepairTransfer>,
    /// Upload slots drawn per source box by the most recent plan.
    egress: Vec<u32>,
    /// Scratch: replicas planned onto each destination this round.
    dest_load: Vec<u32>,
    /// Replicas committed over the planner's lifetime.
    repaired_total: u64,
}

impl RepairPlanner {
    /// A planner over explicit per-box storage capacities (stripe slots).
    pub fn new(storage: Vec<u32>, target_replication: usize, round_budget: u32) -> Self {
        let n = storage.len();
        RepairPlanner {
            target: target_replication,
            round_budget,
            per_box_egress: round_budget,
            storage,
            pending: Vec::new(),
            lost: Vec::new(),
            transfers: Vec::new(),
            egress: vec![0; n],
            dest_load: vec![0; n],
            repaired_total: 0,
        }
    }

    /// A planner for `system`: target `k` from the parameters, storage from
    /// the box set, and the initial queue primed with any stripe the seed
    /// allocation already left under-replicated (duplicate draws of a
    /// random allocator waste slots).
    pub fn for_system(system: &VideoSystem, round_budget: u32) -> Self {
        let storage = system.boxes().iter().map(|b| b.storage.slots()).collect();
        let mut planner =
            RepairPlanner::new(storage, system.params().replication as usize, round_budget);
        planner.prime(system.placement(), system.catalog());
        planner
    }

    /// Caps the upload slots repair may draw from one source per round.
    pub fn with_per_box_egress(mut self, cap: u32) -> Self {
        self.per_box_egress = cap;
        self
    }

    /// Enqueues every stripe of `catalog` currently below the target level.
    pub fn prime(&mut self, placement: &Placement, catalog: &Catalog) {
        for stripe in catalog.stripes() {
            if placement.replica_count(stripe) < self.target {
                self.pending.push(stripe);
            }
        }
        self.pending.sort();
        self.pending.dedup();
    }

    /// Records replica losses (e.g. the stripes a departed box held).
    pub fn note_lost(&mut self, stripes: &[StripeId]) {
        self.pending.extend_from_slice(stripes);
        self.pending.sort();
        self.pending.dedup();
    }

    /// Plans this round's transfers from the live placement. `alive[b]`
    /// gates both sources and destinations; `capacities[b]` are the open
    /// upload slots repair competes for (the caller deducts
    /// [`RepairPlanner::egress`] from its slot table before scheduling).
    /// Nothing is applied to `placement` until [`RepairPlanner::commit`].
    pub fn plan_round(
        &mut self,
        placement: &Placement,
        alive: &[bool],
        capacities: &[u32],
    ) -> RepairRoundStats {
        self.transfers.clear();
        let n = self.storage.len();
        self.egress.clear();
        self.egress.resize(n, 0);
        self.dest_load.clear();
        self.dest_load.resize(n, 0);

        // Compact the queue: drop healed stripes, move data-loss stripes to
        // the `lost` ledger (no replica left to copy from).
        let target = self.target;
        let lost = &mut self.lost;
        self.pending.retain(|&s| match placement.replica_count(s) {
            0 => {
                lost.push(s);
                false
            }
            have => have < target,
        });
        lost.sort();
        lost.dedup();

        // Most-degraded first, stripe id on ties.
        self.pending
            .sort_by_key(|&s| (placement.replica_count(s), s));

        let mut budget = self.round_budget;
        let mut deferred = 0usize;
        for &stripe in &self.pending {
            let have = placement.replica_count(stripe);
            let missing = target - have;
            let mut planned = 0usize;
            for _ in 0..missing {
                if budget == 0 {
                    break;
                }
                let Some((source, dest)) = self.pick_transfer(placement, alive, capacities, stripe)
                else {
                    break;
                };
                self.transfers.push(RepairTransfer {
                    stripe,
                    source,
                    dest,
                });
                self.egress[source.index()] += 1;
                self.dest_load[dest.index()] += 1;
                budget -= 1;
                planned += 1;
            }
            if have + planned < target {
                deferred += 1;
            }
        }

        RepairRoundStats {
            pending: self.pending.len(),
            repaired: self.transfers.len(),
            deferred,
            lost: self.lost.len(),
            budget_slots: self.transfers.len() as u32,
        }
    }

    /// Deterministic (source, dest) choice for one missing replica of
    /// `stripe`, or `None` when no holder has upload budget or no alive box
    /// has a free storage slot.
    fn pick_transfer(
        &self,
        placement: &Placement,
        alive: &[bool],
        capacities: &[u32],
        stripe: StripeId,
    ) -> Option<(BoxId, BoxId)> {
        let source = placement.holders_of(stripe).iter().copied().find(|b| {
            let i = b.index();
            alive.get(i).copied().unwrap_or(false)
                && self.egress[i] < self.per_box_egress
                && self.egress[i] < capacities.get(i).copied().unwrap_or(0)
        })?;
        let mut best: Option<(u32, BoxId)> = None;
        for i in 0..self.storage.len() {
            let b = BoxId(i as u32);
            if !alive.get(i).copied().unwrap_or(false) || placement.stores(b, stripe) {
                continue;
            }
            // A destination already picked for this stripe this round holds
            // a planned (uncommitted) replica — skip it.
            if self
                .transfers
                .iter()
                .any(|t| t.stripe == stripe && t.dest == b)
            {
                continue;
            }
            let used = placement.box_load(b) as u32 + self.dest_load[i];
            if used >= self.storage[i] {
                continue;
            }
            let spare = self.storage[i] - used;
            if best.is_none_or(|(top, _)| spare > top) {
                best = Some((spare, b));
            }
        }
        best.map(|(_, dest)| (source, dest))
    }

    /// Applies the planned transfers to the live placement (new replicas
    /// serve from the next round on) and clears the plan.
    pub fn commit(&mut self, placement: &mut Placement) {
        for t in self.transfers.drain(..) {
            placement.add(t.dest, t.stripe);
            self.repaired_total += 1;
        }
    }

    /// The transfers planned by the most recent plan (empty after commit).
    pub fn transfers(&self) -> &[RepairTransfer] {
        &self.transfers
    }

    /// Upload slots the most recent plan draws per source box.
    pub fn egress(&self) -> &[u32] {
        &self.egress
    }

    /// Under-replicated stripes currently queued (sorted ascending).
    pub fn pending(&self) -> &[StripeId] {
        &self.pending
    }

    /// Stripes that lost every replica so far (sorted ascending).
    pub fn lost(&self) -> &[StripeId] {
        &self.lost
    }

    /// Target replicas per stripe (`k`).
    pub fn target_replication(&self) -> usize {
        self.target
    }

    /// Maximum transfers per round.
    pub fn round_budget(&self) -> u32 {
        self.round_budget
    }

    /// Replicas committed over the planner's lifetime.
    pub fn repaired_total(&self) -> u64 {
        self.repaired_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vod_core::{
        Allocator, Bandwidth, BoxSet, RandomPermutationAllocator, RoundRobinAllocator, StorageSlots,
    };

    fn setup(n: usize, slots: u32, m: usize, c: u16, k: u32) -> (BoxSet, Catalog, Placement) {
        let boxes = BoxSet::homogeneous(
            n,
            Bandwidth::from_streams(1.5),
            StorageSlots::from_slots(slots),
        );
        let catalog = Catalog::uniform(m, 60, c);
        let mut rng = StdRng::seed_from_u64(1);
        let p = RoundRobinAllocator::new(k)
            .allocate(&boxes, &catalog, &mut rng)
            .unwrap();
        (boxes, catalog, p)
    }

    fn depart(planner: &mut RepairPlanner, placement: &mut Placement, alive: &mut [bool], b: u32) {
        alive[b as usize] = false;
        let stripes = placement.remove_box(BoxId(b));
        planner.note_lost(&stripes);
    }

    /// Repairs everything the budget allows, returns rounds taken.
    fn drain(
        planner: &mut RepairPlanner,
        placement: &mut Placement,
        alive: &[bool],
        capacities: &[u32],
    ) -> usize {
        let mut rounds = 0;
        loop {
            let stats = planner.plan_round(placement, alive, capacities);
            if stats.repaired == 0 {
                return rounds;
            }
            planner.commit(placement);
            rounds += 1;
        }
    }

    #[test]
    fn departures_enqueue_and_budgeted_rounds_restore_replication() {
        let (boxes, catalog, mut placement) = setup(20, 24, 20, 4, 3);
        let storage: Vec<u32> = boxes.iter().map(|b| b.storage.slots()).collect();
        let mut planner = RepairPlanner::new(storage, 3, 4);
        let mut alive = vec![true; 20];
        let caps = vec![6u32; 20];
        for b in [2, 7, 11, 16] {
            depart(&mut planner, &mut placement, &mut alive, b);
        }
        assert!(!planner.pending().is_empty());
        let rounds = drain(&mut planner, &mut placement, &alive, &caps);
        assert!(rounds > 1, "budget 4 must need several rounds");
        for s in catalog.stripes() {
            assert!(placement.replica_count(s) >= 3, "stripe {s}");
        }
        assert!(
            planner.pending().is_empty() || {
                // Stripes left pending can only lack storage or sources.
                false
            }
        );
        // Departed boxes received nothing.
        for b in [2u32, 7, 11, 16] {
            assert_eq!(placement.box_load(BoxId(b)), 0);
        }
    }

    #[test]
    fn round_budget_caps_transfers_and_egress_respects_capacities() {
        let (boxes, _catalog, mut placement) = setup(12, 24, 12, 4, 3);
        let storage: Vec<u32> = boxes.iter().map(|b| b.storage.slots()).collect();
        let mut planner = RepairPlanner::new(storage, 3, 3).with_per_box_egress(1);
        let mut alive = vec![true; 12];
        let caps = vec![2u32; 12];
        depart(&mut planner, &mut placement, &mut alive, 0);
        depart(&mut planner, &mut placement, &mut alive, 1);
        let stats = planner.plan_round(&placement, &alive, &caps);
        assert!(stats.repaired <= 3, "round budget");
        assert_eq!(stats.budget_slots as usize, stats.repaired);
        for (b, &e) in planner.egress().iter().enumerate() {
            assert!(e <= 1, "per-box egress cap violated on {b}");
            assert!(e <= caps[b], "egress exceeds open capacity on {b}");
        }
        // Transfers only name alive sources that hold the stripe and alive
        // destinations that do not.
        for t in planner.transfers() {
            assert!(alive[t.source.index()] && alive[t.dest.index()]);
            assert!(placement.stores(t.source, t.stripe));
            assert!(!placement.stores(t.dest, t.stripe));
        }
    }

    #[test]
    fn stripes_with_no_surviving_replica_are_lost() {
        let boxes = BoxSet::homogeneous(
            4,
            Bandwidth::from_streams(1.5),
            StorageSlots::from_slots(24),
        );
        let catalog = Catalog::uniform(6, 60, 4);
        let mut rng = StdRng::seed_from_u64(4);
        let mut placement = RandomPermutationAllocator::new(1)
            .allocate(&boxes, &catalog, &mut rng)
            .unwrap();
        let storage: Vec<u32> = boxes.iter().map(|b| b.storage.slots()).collect();
        let mut planner = RepairPlanner::new(storage, 1, 8);
        let mut alive = vec![true; 4];
        for b in [0, 1, 2] {
            depart(&mut planner, &mut placement, &mut alive, b);
        }
        let caps = vec![6u32; 4];
        let stats = planner.plan_round(&placement, &alive, &caps);
        assert!(stats.lost > 0, "k = 1 and 3 of 4 boxes gone loses data");
        for &s in planner.lost() {
            assert_eq!(placement.replica_count(s), 0);
        }
        drain(&mut planner, &mut placement, &alive, &caps);
        // Lost stripes stay lost; everything else is back at target.
        for s in catalog.stripes() {
            if planner.lost().contains(&s) {
                assert_eq!(placement.replica_count(s), 0);
            } else {
                assert!(placement.replica_count(s) >= 1);
            }
        }
    }

    #[test]
    fn plan_is_a_pure_function_of_its_inputs() {
        let (boxes, _catalog, mut placement) = setup(16, 24, 16, 4, 3);
        let storage: Vec<u32> = boxes.iter().map(|b| b.storage.slots()).collect();
        let mut alive = vec![true; 16];
        let caps = vec![4u32; 16];
        let mut a = RepairPlanner::new(storage.clone(), 3, 5);
        depart(&mut a, &mut placement, &mut alive, 3);
        depart(&mut a, &mut placement, &mut alive, 9);
        let mut b = a.clone();
        let sa = a.plan_round(&placement, &alive, &caps);
        let sb = b.plan_round(&placement, &alive, &caps);
        assert_eq!(sa, sb);
        assert_eq!(a.transfers(), b.transfers());
    }

    #[test]
    fn healthy_allocation_plans_nothing() {
        let (boxes, catalog, mut placement) = setup(10, 16, 10, 4, 2);
        let storage: Vec<u32> = boxes.iter().map(|b| b.storage.slots()).collect();
        let mut planner = RepairPlanner::new(storage, 2, 8);
        planner.prime(&placement, &catalog);
        let alive = vec![true; 10];
        let stats = planner.plan_round(&placement, &alive, &[6u32; 10]);
        assert_eq!(stats.repaired, 0);
        assert_eq!(stats.pending, 0);
        planner.commit(&mut placement);
        assert_eq!(planner.repaired_total(), 0);
    }

    #[test]
    fn stats_roundtrip_json() {
        let stats = RepairRoundStats {
            pending: 5,
            repaired: 3,
            deferred: 2,
            lost: 1,
            budget_slots: 3,
        };
        assert_eq!(
            RepairRoundStats::from_json(&stats.to_json()).unwrap(),
            stats
        );
    }
}
