//! Stripe requests and per-box playback state.
//!
//! When a user demands a video during `[t−1, t[`, the box enters the video's
//! swarm at `t` and issues requests according to the preloading strategy of
//! Section 3 (homogeneous) or Section 4 (heterogeneous relaying):
//!
//! * homogeneous box: 1 *preloading* request at `t`, the `c−1` *postponed*
//!   requests at `t+1`; start-up delay 3 rounds;
//! * poor box `b` with relay `r(b)`: the preloading request is issued by
//!   `r(b)` at `t` and forwarded over statically reserved upload; `b` issues
//!   `c_b = ⌊c·u_b − 4µ⁴⌋` direct requests at `t+2`; the remaining stripes are
//!   requested by `r(b)` at `t+3` and forwarded; the effective time scale is
//!   doubled;
//! * rich box in a heterogeneous system: preload at `t`, postponed at `t+2`.
//!
//! A request stays *active* from its issue round until the playback ends
//! (`t + T`): every active request must be matched to a supplier each round.

use vod_core::{BoxId, StripeId, StripeIndex, VideoId};

/// Whether a request is the preloading request or a postponed one.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// The single stripe preloaded when entering the swarm.
    Preload,
    /// One of the `c−1` stripes requested after the preload.
    Postponed,
}

/// One stripe request, attributed to the box that performs the download
/// (the relay for relayed stripes of a poor box).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct StripeRequest {
    /// The requested stripe.
    pub stripe: StripeId,
    /// The box performing the download (and caching the stripe).
    pub requester: BoxId,
    /// The box that will play the video (differs from `requester` for
    /// relayed requests).
    pub viewer: BoxId,
    /// Round at which the request was issued (`t_i` in the paper).
    pub issued_at: u64,
    /// Preload or postponed.
    pub kind: RequestKind,
}

/// How one playing box obtains each stripe of its video.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StripePlan {
    /// Downloaded directly by the viewer, activating at the given round.
    Direct {
        /// Round at which the request is issued.
        activate_at: u64,
        /// Preload or postponed.
        kind: RequestKind,
    },
    /// Downloaded by the relay box and forwarded over reserved upload,
    /// activating at the given round.
    Relayed {
        /// Round at which the relay issues the request.
        activate_at: u64,
        /// The relay box performing the download.
        relay: BoxId,
        /// Preload or postponed.
        kind: RequestKind,
    },
}

impl StripePlan {
    /// Round at which the request becomes active.
    pub fn activate_at(&self) -> u64 {
        match self {
            StripePlan::Direct { activate_at, .. } => *activate_at,
            StripePlan::Relayed { activate_at, .. } => *activate_at,
        }
    }

    /// The box that performs the download.
    pub fn requester(&self, viewer: BoxId) -> BoxId {
        match self {
            StripePlan::Direct { .. } => viewer,
            StripePlan::Relayed { relay, .. } => *relay,
        }
    }

    /// Preload or postponed.
    pub fn kind(&self) -> RequestKind {
        match self {
            StripePlan::Direct { kind, .. } => *kind,
            StripePlan::Relayed { kind, .. } => *kind,
        }
    }
}

/// The state of one box currently playing a video.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PlaybackState {
    /// The video being played.
    pub video: VideoId,
    /// Round at which the box entered the swarm.
    pub entered_at: u64,
    /// Round at which playback (and the requests) end: `entered_at + T`.
    pub ends_at: u64,
    /// Round at which playback actually starts (start-up delay after entry).
    pub playback_starts_at: u64,
    /// The per-stripe download plan, indexed by stripe index `0..c`.
    pub plan: Vec<StripePlan>,
}

impl PlaybackState {
    /// Calls `f` for each stripe request of this playback that is active at
    /// round `now` (issued at or before `now`, playback not yet finished),
    /// in stripe order. The allocation-free core behind
    /// [`PlaybackState::active_requests`]; the engine drives it directly so
    /// steady-state request collection costs no heap.
    pub fn for_each_active(&self, viewer: BoxId, now: u64, mut f: impl FnMut(StripeRequest)) {
        if now >= self.ends_at {
            return;
        }
        for (idx, p) in self.plan.iter().enumerate() {
            if p.activate_at() <= now {
                f(StripeRequest {
                    stripe: StripeId::new(self.video, idx as StripeIndex),
                    requester: p.requester(viewer),
                    viewer,
                    issued_at: p.activate_at(),
                    kind: p.kind(),
                });
            }
        }
    }

    /// The stripe requests of this playback that are active at round `now`
    /// (issued at or before `now`, playback not yet finished).
    pub fn active_requests(&self, viewer: BoxId, now: u64) -> Vec<StripeRequest> {
        let mut out = Vec::new();
        self.for_each_active(viewer, now, |req| out.push(req));
        out
    }

    /// Start-up delay in rounds (from swarm entry to playback start).
    pub fn startup_delay(&self) -> u64 {
        self.playback_starts_at - self.entered_at
    }
}

/// Builds the homogeneous download plan of Section 3: preload stripe at `t`,
/// the other `c−1` stripes at `t+1`; playback starts at `t+3`.
pub fn homogeneous_plan(
    c: u16,
    preload_stripe: StripeIndex,
    entered_at: u64,
) -> (Vec<StripePlan>, u64) {
    let plan = (0..c)
        .map(|i| {
            if i == preload_stripe {
                StripePlan::Direct {
                    activate_at: entered_at,
                    kind: RequestKind::Preload,
                }
            } else {
                StripePlan::Direct {
                    activate_at: entered_at + 1,
                    kind: RequestKind::Postponed,
                }
            }
        })
        .collect();
    (plan, entered_at + 3)
}

/// Builds the heterogeneous plan of Section 4 for a *rich* box: identical to
/// the homogeneous plan except postponed requests move to `t+2` (the doubled
/// time scale); playback starts at `t+4`.
pub fn rich_plan(c: u16, preload_stripe: StripeIndex, entered_at: u64) -> (Vec<StripePlan>, u64) {
    let plan = (0..c)
        .map(|i| {
            if i == preload_stripe {
                StripePlan::Direct {
                    activate_at: entered_at,
                    kind: RequestKind::Preload,
                }
            } else {
                StripePlan::Direct {
                    activate_at: entered_at + 2,
                    kind: RequestKind::Postponed,
                }
            }
        })
        .collect();
    (plan, entered_at + 4)
}

/// Number of postponed stripes a poor box downloads directly:
/// `c_b = ⌊c·u_b − 4µ⁴⌋`, clamped to `[0, c−1]`
/// (`0` whenever `u_b ≤ 4µ⁴/c`, slightly stricter than the paper's `2µ⁴/c`
/// cut-off, which only changes who carries the transfer, not feasibility).
pub fn direct_stripe_budget(c: u16, upload_streams: f64, mu: f64) -> u16 {
    let raw = (c as f64 * upload_streams - 4.0 * mu.powi(4)).floor();
    if raw <= 0.0 {
        0
    } else {
        (raw as u16).min(c.saturating_sub(1))
    }
}

/// Builds the heterogeneous plan of Section 4 for a *poor* box relayed by
/// `relay`: preload via relay at `t`, `c_b` direct postponed stripes at
/// `t+2`, the remaining stripes via relay at `t+3`; playback starts at `t+5`.
pub fn poor_plan(
    c: u16,
    preload_stripe: StripeIndex,
    entered_at: u64,
    relay: BoxId,
    direct_budget: u16,
) -> (Vec<StripePlan>, u64) {
    let mut direct_left = direct_budget;
    let plan = (0..c)
        .map(|i| {
            if i == preload_stripe {
                StripePlan::Relayed {
                    activate_at: entered_at,
                    relay,
                    kind: RequestKind::Preload,
                }
            } else if direct_left > 0 {
                direct_left -= 1;
                StripePlan::Direct {
                    activate_at: entered_at + 2,
                    kind: RequestKind::Postponed,
                }
            } else {
                StripePlan::Relayed {
                    activate_at: entered_at + 3,
                    relay,
                    kind: RequestKind::Postponed,
                }
            }
        })
        .collect();
    (plan, entered_at + 5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_plan_shape() {
        let (plan, starts) = homogeneous_plan(4, 2, 10);
        assert_eq!(plan.len(), 4);
        assert_eq!(starts, 13);
        assert_eq!(
            plan[2],
            StripePlan::Direct {
                activate_at: 10,
                kind: RequestKind::Preload
            }
        );
        for (i, p) in plan.iter().enumerate() {
            if i != 2 {
                assert_eq!(p.activate_at(), 11);
                assert_eq!(p.kind(), RequestKind::Postponed);
            }
        }
    }

    #[test]
    fn active_requests_grow_with_time_and_stop_at_end() {
        let (plan, starts) = homogeneous_plan(4, 0, 5);
        let st = PlaybackState {
            video: VideoId(7),
            entered_at: 5,
            ends_at: 25,
            playback_starts_at: starts,
            plan,
        };
        let viewer = BoxId(3);
        assert_eq!(st.active_requests(viewer, 5).len(), 1);
        assert_eq!(st.active_requests(viewer, 6).len(), 4);
        assert_eq!(st.active_requests(viewer, 24).len(), 4);
        assert!(st.active_requests(viewer, 25).is_empty());
        assert_eq!(st.startup_delay(), 3);
        // All requests attributed to the viewer in the homogeneous case.
        assert!(st
            .active_requests(viewer, 10)
            .iter()
            .all(|r| r.requester == viewer && r.viewer == viewer));
    }

    #[test]
    fn direct_stripe_budget_formula() {
        // c = 16, u_b = 0.5, µ = 1.05: 8 − 4·1.216 ≈ 3.1 → 3.
        assert_eq!(direct_stripe_budget(16, 0.5, 1.05), 3);
        // Tiny upload: zero budget.
        assert_eq!(direct_stripe_budget(16, 0.1, 1.05), 0);
        // Budget never reaches c (at least the preload goes via the relay).
        assert_eq!(direct_stripe_budget(4, 10.0, 1.0), 3);
    }

    #[test]
    fn poor_plan_routes_stripes_through_relay() {
        let relay = BoxId(9);
        let (plan, starts) = poor_plan(6, 1, 100, relay, 2);
        assert_eq!(starts, 105);
        // Preload stripe is relayed at t.
        assert_eq!(
            plan[1],
            StripePlan::Relayed {
                activate_at: 100,
                relay,
                kind: RequestKind::Preload
            }
        );
        let direct = plan
            .iter()
            .filter(|p| matches!(p, StripePlan::Direct { .. }))
            .count();
        let relayed = plan
            .iter()
            .filter(|p| matches!(p, StripePlan::Relayed { .. }))
            .count();
        assert_eq!(direct, 2);
        assert_eq!(relayed, 4); // preload + 3 postponed
                                // Direct stripes activate at t+2, relayed postponed at t+3.
        for p in &plan {
            match p {
                StripePlan::Direct { activate_at, .. } => assert_eq!(*activate_at, 102),
                StripePlan::Relayed {
                    activate_at, kind, ..
                } => {
                    if *kind == RequestKind::Postponed {
                        assert_eq!(*activate_at, 103);
                    }
                }
            }
        }
    }

    #[test]
    fn poor_plan_requester_is_relay_for_relayed_stripes() {
        let relay = BoxId(2);
        let viewer = BoxId(5);
        let (plan, starts) = poor_plan(4, 0, 0, relay, 1);
        let st = PlaybackState {
            video: VideoId(0),
            entered_at: 0,
            ends_at: 50,
            playback_starts_at: starts,
            plan,
        };
        let reqs = st.active_requests(viewer, 10);
        assert_eq!(reqs.len(), 4);
        let relayed: Vec<_> = reqs.iter().filter(|r| r.requester == relay).collect();
        let direct: Vec<_> = reqs.iter().filter(|r| r.requester == viewer).collect();
        assert_eq!(relayed.len(), 3);
        assert_eq!(direct.len(), 1);
        assert!(reqs.iter().all(|r| r.viewer == viewer));
    }

    #[test]
    fn rich_plan_has_doubled_postponed_delay() {
        let (plan, starts) = rich_plan(3, 0, 7);
        assert_eq!(starts, 11);
        assert_eq!(plan[0].activate_at(), 7);
        assert_eq!(plan[1].activate_at(), 9);
        assert_eq!(plan[2].activate_at(), 9);
    }
}
