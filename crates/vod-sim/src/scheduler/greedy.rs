//! Greedy baseline scheduler.
//!
//! Requests are processed in order of increasing candidate-set size (most
//! constrained first) and each is assigned to the candidate with the largest
//! remaining capacity. This is the kind of local heuristic a practical
//! protocol would implement without global coordination; comparing it against
//! the max-flow matching quantifies how much the paper's optimal-matching
//! assumption matters near the capacity threshold.

use super::Scheduler;
use vod_core::BoxId;

/// Most-constrained-first, most-capacity-first greedy scheduler.
#[derive(Clone, Copy, Debug, Default)]
pub struct GreedyScheduler;

impl GreedyScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        GreedyScheduler
    }
}

impl Scheduler for GreedyScheduler {
    fn schedule(&mut self, capacities: &[u32], candidates: &[Vec<BoxId>]) -> Vec<Option<BoxId>> {
        let mut remaining: Vec<u32> = capacities.to_vec();
        let mut assignment = vec![None; candidates.len()];

        // Most constrained requests first (fewest candidates).
        let mut order: Vec<usize> = (0..candidates.len()).collect();
        order.sort_by_key(|&x| candidates[x].len());

        for x in order {
            let best = candidates[x]
                .iter()
                .filter(|b| remaining[b.index()] > 0)
                .max_by_key(|b| remaining[b.index()]);
            if let Some(&b) = best {
                remaining[b.index()] -= 1;
                assignment[x] = Some(b);
            }
        }
        assignment
    }

    fn name(&self) -> &'static str {
        "greedy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::assignment_is_valid;

    fn b(i: u32) -> BoxId {
        BoxId(i)
    }

    #[test]
    fn respects_capacities_and_candidates() {
        let caps = vec![1, 2];
        let cands = vec![vec![b(0), b(1)], vec![b(1)], vec![b(0)], vec![b(1)]];
        let a = GreedyScheduler::new().schedule(&caps, &cands);
        assert!(assignment_is_valid(&a, &caps, &cands));
    }

    #[test]
    fn constrained_first_ordering_helps() {
        // Request 1 only has box 0; request 0 has both. Processing the
        // constrained one first lets greedy serve both.
        let caps = vec![1, 1];
        let cands = vec![vec![b(0), b(1)], vec![b(0)]];
        let a = GreedyScheduler::new().schedule(&caps, &cands);
        assert_eq!(a.iter().filter(|x| x.is_some()).count(), 2);
    }

    #[test]
    fn can_be_suboptimal_on_crafted_instances() {
        // Two constrained requests point at box 0 and box 1 respectively;
        // two flexible requests then compete. Greedy still serves 3 of 4
        // whereas max flow serves 4 — this documents (rather than hides) the
        // gap the ablation experiment measures. Instance: capacities all 1.
        let caps = vec![1, 1, 1];
        let cands = vec![
            vec![b(0), b(1)],
            vec![b(1), b(2)],
            vec![b(0), b(2)],
            vec![b(2)],
        ];
        let a = GreedyScheduler::new().schedule(&caps, &cands);
        let served = a.iter().filter(|x| x.is_some()).count();
        assert!(assignment_is_valid(&a, &caps, &cands));
        assert!(served >= 3);
    }

    #[test]
    fn unserviceable_requests_stay_unserved() {
        let caps = vec![0];
        let cands = vec![vec![b(0)], vec![]];
        let a = GreedyScheduler::new().schedule(&caps, &cands);
        assert!(a.iter().all(Option::is_none));
    }
}
