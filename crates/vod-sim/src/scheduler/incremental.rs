//! Incremental per-round connection matching.
//!
//! Consecutive simulation rounds solve nearly identical matching instances:
//! most playbacks continue, so most stripe requests and their candidate sets
//! carry over unchanged, and per-box capacities are static. The
//! [`IncrementalMatcher`] exploits this by keeping one Lemma-1 flow network
//! alive inside a [`FlowArena`] across rounds:
//!
//! * requests are identified by a stable [`RequestKey`]; each round the
//!   incoming key set is diffed against the previous round's;
//! * surviving requests keep their node, edges, **and assigned flow**;
//!   departed requests have their flow cancelled and their edges
//!   de-capacitated; new requests get (or reuse) a node and edges;
//! * candidate-set changes patch edge capacities in place, reviving a
//!   previously de-capacitated edge when a candidate returns (a box's cache
//!   entry ageing out and re-appearing is common under churn);
//! * the solver then *warm-starts* from the repaired residual flow, so it
//!   only has to route the delta instead of re-solving from zero.
//!
//! All bookkeeping (slots, edge lists, scratch buffers, the key map) reuses
//! its allocations, so a steady-state round — same working set of requests —
//! performs **zero heap allocations** in the matching layer. De-capacitated
//! edges accumulate in the arena under heavy churn; when more than half of
//! the arena is dead the matcher compacts by rebuilding in place (amortized
//! O(1), still allocation-free once the arena has grown to the high-water
//! mark).

use std::collections::HashMap;
use std::hash::BuildHasherDefault;
use vod_core::{BoxId, StripeId};
use vod_flow::{CandidateBuf, CandidateView, Dinic, FlowArena, MaxFlowSolve, NodeId, NO_STAMP};
use vod_obs::TraceHandle;

/// Deterministic multiply-xor hasher for the request-key map: the default
/// SipHash dominates the per-round diff cost at thousands of lookups per
/// round, and HashDoS resistance is irrelevant for simulator-internal keys
/// (shared with the flow layer via [`vod_core::hash`]).
pub type KeyHasher = vod_core::FxHasher64;

type KeyMap<V> = HashMap<RequestKey, V, BuildHasherDefault<KeyHasher>>;

/// Stable identity of a stripe request across rounds.
///
/// Within one round a viewer has at most one active request per stripe, and a
/// viewer's playback of a video spans contiguous rounds, so `(viewer,
/// stripe)` identifies "the same request as last round".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestKey {
    /// The box that will play the stripe.
    pub viewer: BoxId,
    /// The requested stripe.
    pub stripe: StripeId,
}

/// One tracked request: its node in the arena and every edge ever created
/// for it. Slots (and their edge lists) are pooled and reused.
#[derive(Clone, Debug, Default)]
struct RequestSlot {
    node: NodeId,
    sink_edge: usize,
    /// Candidate edges ever created for this node, sorted by box id. An edge
    /// is *active* when its capacity is 1, de-capacitated (0) otherwise.
    cand_edges: Vec<(BoxId, usize)>,
    /// The raw candidate list as last given (pre-sort), letting unchanged
    /// rounds skip the sort-and-diff entirely.
    given: Vec<BoxId>,
    /// False until `given` reflects this slot's active edges (freshly
    /// allocated or recycled slots must run a full diff).
    given_valid: bool,
    /// The producer change stamp `given` was captured under
    /// ([`vod_flow::NO_STAMP`] when the producer attached none): an equal
    /// stamp on a later round proves the row unchanged without comparing it.
    given_stamp: u64,
    /// Round stamp of the last round that listed this request.
    stamp: u64,
    /// Position of this request in the current round's input.
    pos: usize,
}

/// Reusable incremental matcher over one [`FlowArena`].
///
/// ```
/// use vod_core::{BoxId, StripeId, VideoId};
/// use vod_sim::{IncrementalMatcher, RequestKey};
///
/// let caps = vec![1, 1];
/// let keys = vec![
///     RequestKey { viewer: BoxId(0), stripe: StripeId::new(VideoId(0), 0) },
///     RequestKey { viewer: BoxId(1), stripe: StripeId::new(VideoId(0), 1) },
/// ];
/// let cands = vec![vec![BoxId(0), BoxId(1)], vec![BoxId(0)]];
/// let mut matcher = IncrementalMatcher::default();
/// let mut out = Vec::new();
/// matcher.schedule_keyed(&caps, &keys, &cands, &mut out);
/// assert_eq!(out.iter().flatten().count(), 2);
///
/// // An identical round patches nothing and keeps the flow: still optimal,
/// // still exactly one rebuild.
/// matcher.schedule_keyed(&caps, &keys, &cands, &mut out);
/// assert_eq!(out.iter().flatten().count(), 2);
/// assert_eq!(matcher.rebuilds(), 1);
/// ```
pub struct IncrementalMatcher {
    arena: FlowArena,
    solver: Box<dyn MaxFlowSolve>,
    /// Current per-box capacity (stripe connections).
    caps: Vec<u32>,
    /// Source edge per box (always present, capacity may be 0).
    source_edges: Vec<usize>,
    slots: Vec<RequestSlot>,
    /// Slot index per arena node (`usize::MAX` for non-request nodes).
    node_slot: Vec<usize>,
    by_key: KeyMap<usize>,
    free_slots: Vec<usize>,
    sink: NodeId,
    stamp: u64,
    total_flow: i64,
    /// Edge pairs currently de-capacitated (candidate + sink edges).
    dead_pairs: usize,
    rebuilds: u64,
    rounds: u64,
    /// True when the arena no longer reflects the tracked instance (e.g.
    /// after a cold one-shot solve) and must be rebuilt.
    dirty: bool,
    /// True when the current round modified the instance (so the solver must
    /// run); untouched rounds keep the previous maximum flow as-is.
    changed: bool,
    // Scratch buffers (reused every round).
    sorted_cands: Vec<BoxId>,
    added_cands: Vec<BoxId>,
    stale_keys: Vec<RequestKey>,
    /// Slot index per input position for the current round (skips a second
    /// hash pass during extraction).
    round_slots: Vec<usize>,
    /// Visit stamps for the targeted augmenting-path search.
    visit_stamp: Vec<u64>,
    visit_epoch: u64,
    /// DFS scratch: `(node, adjacency cursor)` stack and the residual edges
    /// of the current path (source-ward order).
    dfs_stack: Vec<(NodeId, Option<usize>)>,
    path_edges: Vec<usize>,
    /// Scratch for the debug-only maximality check (kept allocation-free so
    /// steady-state rounds allocate nothing even in debug builds).
    dbg_seen: Vec<bool>,
    dbg_stack: Vec<NodeId>,
    /// Pooled CSR bridge for the slice-of-vecs entry points (the view-based
    /// [`IncrementalMatcher::schedule_keyed_view`] is the native path).
    csr_bridge: CandidateBuf,
}

impl Default for IncrementalMatcher {
    fn default() -> Self {
        IncrementalMatcher::new(Box::new(Dinic::new()))
    }
}

impl IncrementalMatcher {
    /// Creates a matcher warm-starting the given solver each round.
    pub fn new(solver: Box<dyn MaxFlowSolve>) -> Self {
        IncrementalMatcher {
            arena: FlowArena::new(),
            solver,
            caps: Vec::new(),
            source_edges: Vec::new(),
            slots: Vec::new(),
            node_slot: Vec::new(),
            by_key: KeyMap::default(),
            free_slots: Vec::new(),
            sink: 0,
            stamp: 0,
            total_flow: 0,
            dead_pairs: 0,
            rebuilds: 0,
            rounds: 0,
            dirty: true,
            changed: false,
            sorted_cands: Vec::new(),
            added_cands: Vec::new(),
            stale_keys: Vec::new(),
            round_slots: Vec::new(),
            visit_stamp: Vec::new(),
            visit_epoch: 0,
            dfs_stack: Vec::new(),
            path_edges: Vec::new(),
            dbg_seen: Vec::new(),
            dbg_stack: Vec::new(),
            csr_bridge: CandidateBuf::new(),
        }
    }

    /// Installs a trace handle on the underlying flow solver, so solver
    /// phases (shape analyses, HK phases, global relabels) emit spans.
    pub fn attach_tracer(&mut self, tracer: &TraceHandle) {
        self.solver.attach_tracer(tracer);
    }

    /// The number of full rebuilds performed so far (1 after the first
    /// round; steady-state rounds must not add more).
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// The number of rounds scheduled so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The current matching size carried in the arena.
    pub fn total_flow(&self) -> i64 {
        self.total_flow
    }

    /// Directed edge count of the underlying arena (twins included) —
    /// observability for the compaction heuristic.
    pub fn arena_edge_count(&self) -> usize {
        self.arena.edge_count()
    }

    /// The solver driving this matcher.
    pub fn solver_name(&self) -> &'static str {
        self.solver.name()
    }

    /// Schedules one round incrementally. `keys[i]` is the stable identity
    /// of the request with candidate set `candidates[i]`; the assignment is
    /// written into `out` (reused, index-aligned with the input).
    pub fn schedule_keyed(
        &mut self,
        capacities: &[u32],
        keys: &[RequestKey],
        candidates: &[Vec<BoxId>],
        out: &mut Vec<Option<BoxId>>,
    ) {
        // Detach the pooled bridge buffer so the view can borrow it while
        // `self` stays mutably borrowable for the core call.
        let mut bridge = std::mem::take(&mut self.csr_bridge);
        bridge.fill_from_slices(candidates);
        self.schedule_keyed_view(capacities, keys, bridge.view(), out);
        self.csr_bridge = bridge;
    }

    /// View-based core of [`IncrementalMatcher::schedule_keyed`]: identical
    /// semantics over a borrowed flat [`CandidateView`] (the engine's native
    /// representation). When the view carries per-row change stamps, a
    /// surviving request whose stamp is unchanged skips the per-row
    /// sort-and-diff entirely.
    pub fn schedule_keyed_view(
        &mut self,
        capacities: &[u32],
        keys: &[RequestKey],
        candidates: CandidateView<'_>,
        out: &mut Vec<Option<BoxId>>,
    ) {
        assert_eq!(keys.len(), candidates.len(), "one key per request");
        self.rounds += 1;
        let total_pairs = self.arena.edge_count() / 2;
        let needs_compaction = total_pairs > 64 && self.dead_pairs * 2 > total_pairs;
        self.changed = false;
        if self.dirty || capacities.len() != self.caps.len() || needs_compaction {
            self.rebuild(capacities, keys, candidates);
            // Cold instance: hand the whole thing to the configured solver.
            self.total_flow += self.solver.max_flow(&mut self.arena, 0, self.sink);
        } else {
            self.patch(capacities, keys, candidates);
            if self.changed {
                // The patched flow is valid but possibly not maximal; only
                // unserved requests can be endpoints of augmenting paths.
                // With few of them, targeted searches restore maximality
                // without touching the (much larger) unchanged part of the
                // network. A large unserved set (persistently infeasible
                // instance) would thrash the targeted search — every
                // successful augment invalidates the failure marks — so hand
                // that case to the solver, warm-started on the residual.
                let unserved = self.count_unserved();
                if unserved * 8 > self.round_slots.len() + 64 {
                    self.total_flow += self.solver.max_flow(&mut self.arena, 0, self.sink);
                } else if unserved > 0 {
                    self.augment_unserved();
                }
            }
        }
        debug_assert!(self.flow_is_consistent());
        debug_assert!(self.flow_is_maximal());
        self.extract(out);
    }

    /// One-shot solve without request identity: rebuilds the instance inside
    /// the reused arena and solves cold. Leaves the matcher marked dirty, so
    /// a later keyed round rebuilds before patching.
    pub fn schedule_cold(
        &mut self,
        capacities: &[u32],
        candidates: &[Vec<BoxId>],
        out: &mut Vec<Option<BoxId>>,
    ) {
        self.rounds += 1;
        // Reuse the keyed machinery with positional pseudo-keys: stale state
        // never leaks because the instance is rebuilt from scratch.
        let mut problem = vod_flow::ConnectionProblem::new(capacities.to_vec());
        for cands in candidates {
            problem.add_request(cands.iter().copied());
        }
        let matching = problem.solve_in(&mut self.arena, &mut self.solver);
        self.dirty = true;
        out.clear();
        out.extend(matching.assignment);
    }

    /// Full reconstruction of the tracked instance inside the reused arena.
    fn rebuild(&mut self, capacities: &[u32], keys: &[RequestKey], candidates: CandidateView<'_>) {
        let boxes = capacities.len();
        self.arena.clear(boxes + 2);
        self.sink = boxes + 1;
        self.caps.clear();
        self.caps.extend_from_slice(capacities);
        self.source_edges.clear();
        for (i, &cap) in capacities.iter().enumerate() {
            self.source_edges
                .push(self.arena.add_edge(0, 1 + i, cap as i64));
        }
        // Recycle every slot: clear its edges but keep the allocations. The
        // arena was cleared, so stale node/edge ids must be forgotten
        // (`node == 0` marks "no node": node 0 is always the source).
        self.by_key.clear();
        self.free_slots.clear();
        for (idx, slot) in self.slots.iter_mut().enumerate() {
            slot.cand_edges.clear();
            slot.stamp = 0;
            slot.node = 0;
            slot.sink_edge = 0;
            self.free_slots.push(idx);
        }
        self.node_slot.clear();
        self.node_slot.resize(boxes + 2, usize::MAX);
        self.total_flow = 0;
        self.dead_pairs = 0;
        self.stamp += 1;

        self.round_slots.clear();
        for (pos, key) in keys.iter().enumerate() {
            let slot_idx = self.alloc_slot(*key, pos);
            self.set_candidates(slot_idx, candidates.row(pos), candidates.row_stamp(pos));
            self.round_slots.push(slot_idx);
        }
        self.rebuilds += 1;
        self.dirty = false;
        self.changed = true;
    }

    /// Diffs the incoming round against the tracked instance, patching the
    /// arena in place and repairing flow validity.
    fn patch(&mut self, capacities: &[u32], keys: &[RequestKey], candidates: CandidateView<'_>) {
        self.stamp += 1;

        // Per-box capacity changes (rare: capacities are static per system).
        for (i, &cap) in capacities.iter().enumerate() {
            if cap != self.caps[i] {
                self.patch_box_capacity(i, cap);
            }
        }

        // Upsert this round's requests.
        self.round_slots.clear();
        let mut arrivals = false;
        for (pos, key) in keys.iter().enumerate() {
            let slot_idx = match self.by_key.get(key) {
                Some(&idx) => {
                    // A duplicate key in one round would silently alias two
                    // requests onto one flow slot; reject it outright.
                    assert_ne!(
                        self.slots[idx].stamp, self.stamp,
                        "duplicate request key {key:?} in one round"
                    );
                    self.slots[idx].stamp = self.stamp;
                    self.slots[idx].pos = pos;
                    idx
                }
                None => {
                    arrivals = true;
                    self.alloc_slot(*key, pos)
                }
            };
            self.set_candidates(slot_idx, candidates.row(pos), candidates.row_stamp(pos));
            self.round_slots.push(slot_idx);
        }

        // Sweep requests that disappeared this round. With no arrivals and
        // matching cardinality the tracked set is exactly the input set, so
        // the sweep can be skipped.
        if arrivals || self.by_key.len() != keys.len() {
            self.stale_keys.clear();
            for (key, &slot_idx) in &self.by_key {
                if self.slots[slot_idx].stamp != self.stamp {
                    self.stale_keys.push(*key);
                }
            }
            // `stale_keys` is a scratch field, so detach it while mutating.
            let mut stale = std::mem::take(&mut self.stale_keys);
            for key in stale.drain(..) {
                self.remove_request(key);
            }
            self.stale_keys = stale;
        }
    }

    /// Registers a new request under `key`, reusing a pooled slot (and its
    /// arena node plus edge list) when one is free.
    fn alloc_slot(&mut self, key: RequestKey, pos: usize) -> usize {
        let slot_idx = match self.free_slots.pop() {
            Some(idx) => idx,
            None => {
                self.slots.push(RequestSlot::default());
                self.slots.len() - 1
            }
        };
        // A recycled slot keeps its node and sink edge if it has them from a
        // previous life in the *current* arena; otherwise create both.
        let needs_node = self.slots[slot_idx].node == 0;
        if needs_node {
            let node = self.arena.add_node();
            let sink_edge = self.arena.add_edge(node, self.sink, 1);
            self.node_slot.resize(self.arena.node_count(), usize::MAX);
            let slot = &mut self.slots[slot_idx];
            slot.node = node;
            slot.sink_edge = sink_edge;
        } else {
            // Revive the recycled sink edge.
            let sink_edge = self.slots[slot_idx].sink_edge;
            if self.arena.edge(sink_edge).original_cap == 0 {
                self.arena.set_capacity(sink_edge, 1);
                self.dead_pairs -= 1;
            }
        }
        let node = self.slots[slot_idx].node;
        self.node_slot[node] = slot_idx;
        self.slots[slot_idx].stamp = self.stamp;
        self.slots[slot_idx].pos = pos;
        self.slots[slot_idx].given_valid = false;
        let previous = self.by_key.insert(key, slot_idx);
        assert!(
            previous.is_none(),
            "duplicate request key {key:?} in one round"
        );
        self.changed = true;
        slot_idx
    }

    /// Patches the slot's candidate edges to match `cands`: revives or
    /// creates edges for current candidates, de-capacitates edges for
    /// dropped ones (cancelling their flow first).
    fn set_candidates(&mut self, slot_idx: usize, cands: &[BoxId], stamp: u64) {
        // Fastest path: the producer's change stamp proves the row unchanged
        // since the last sync of this slot — no comparison needed at all
        // (the engine's candidate-index diffs handed down as precomputed
        // deltas).
        if self.slots[slot_idx].given_valid
            && stamp != NO_STAMP
            && self.slots[slot_idx].given_stamp == stamp
        {
            debug_assert_eq!(self.slots[slot_idx].given, *cands, "stale change stamp");
            return;
        }
        // Fast path: identical raw candidate list → active edges already
        // match, nothing to sort or diff.
        if self.slots[slot_idx].given_valid && self.slots[slot_idx].given == *cands {
            self.slots[slot_idx].given_stamp = stamp;
            return;
        }
        let boxes = self.caps.len();
        self.sorted_cands.clear();
        self.sorted_cands
            .extend(cands.iter().copied().filter(|b| b.index() < boxes));
        self.sorted_cands.sort();
        self.sorted_cands.dedup();

        self.added_cands.clear();
        // Two-pointer diff over the sorted edge list and candidate list.
        // Existing edges are revived/de-capacitated in place; missing
        // candidates are collected and appended afterwards (appending while
        // iterating would invalidate the walk).
        let mut edge_cursor = 0;
        let mut cand_cursor = 0;
        while edge_cursor < self.slots[slot_idx].cand_edges.len()
            || cand_cursor < self.sorted_cands.len()
        {
            let edge_entry = self.slots[slot_idx].cand_edges.get(edge_cursor).copied();
            let cand = self.sorted_cands.get(cand_cursor).copied();
            match (edge_entry, cand) {
                (Some((edge_box, edge)), Some(cand_box)) if edge_box == cand_box => {
                    if self.arena.edge(edge).original_cap == 0 {
                        self.arena.set_capacity(edge, 1);
                        self.dead_pairs -= 1;
                        self.changed = true;
                    }
                    edge_cursor += 1;
                    cand_cursor += 1;
                }
                (Some((edge_box, edge)), Some(cand_box)) if edge_box < cand_box => {
                    self.deactivate_cand_edge(slot_idx, edge_box, edge);
                    edge_cursor += 1;
                }
                (Some((edge_box, edge)), None) => {
                    self.deactivate_cand_edge(slot_idx, edge_box, edge);
                    edge_cursor += 1;
                }
                (_, Some(cand_box)) => {
                    self.added_cands.push(cand_box);
                    cand_cursor += 1;
                }
                (None, None) => unreachable!("loop condition"),
            }
        }
        // Append the new edges, keeping the list sorted by box id.
        let node = self.slots[slot_idx].node;
        let mut added = std::mem::take(&mut self.added_cands);
        for &cand_box in added.iter() {
            let edge = self.arena.add_edge(1 + cand_box.index(), node, 1);
            let list = &mut self.slots[slot_idx].cand_edges;
            let at = list.partition_point(|&(b, _)| b < cand_box);
            list.insert(at, (cand_box, edge));
            self.changed = true;
        }
        added.clear();
        self.added_cands = added;
        // Remember the raw list (and the stamp it was captured under) for
        // next round's fast paths.
        let slot = &mut self.slots[slot_idx];
        slot.given.clear();
        slot.given.extend_from_slice(cands);
        slot.given_valid = true;
        slot.given_stamp = stamp;
    }

    /// De-capacitates one candidate edge, cancelling its flow first.
    fn deactivate_cand_edge(&mut self, slot_idx: usize, edge_box: BoxId, edge: usize) {
        if self.arena.edge(edge).original_cap == 0 {
            return; // already inactive
        }
        if self.arena.flow_on(edge) == 1 {
            self.cancel_assignment(slot_idx, edge_box, edge);
        }
        self.arena.set_capacity(edge, 0);
        self.dead_pairs += 1;
        self.changed = true;
    }

    /// Cancels one unit of flow running source → box → request → sink.
    fn cancel_assignment(&mut self, slot_idx: usize, edge_box: BoxId, cand_edge: usize) {
        debug_assert_eq!(self.arena.flow_on(cand_edge), 1);
        self.arena.push(cand_edge, -1);
        self.arena.push(self.source_edges[edge_box.index()], -1);
        self.arena.push(self.slots[slot_idx].sink_edge, -1);
        self.total_flow -= 1;
    }

    /// Applies a changed per-box capacity, evicting excess assignments when
    /// the new capacity is below the box's current load.
    fn patch_box_capacity(&mut self, box_idx: usize, new_cap: u32) {
        let source_edge = self.source_edges[box_idx];
        let mut excess = self.arena.flow_on(source_edge) - new_cap as i64;
        if excess > 0 {
            // Walk the box's forward edges and cancel assignments until the
            // load fits (the warm solve will re-route them elsewhere).
            let node = 1 + box_idx;
            let mut cursor = self.arena.first_edge(node);
            while let Some(edge) = cursor {
                if excess == 0 {
                    break;
                }
                cursor = self.arena.next_edge(edge);
                if edge % 2 != 0 || self.arena.flow_on(edge) != 1 {
                    continue;
                }
                let target = self.arena.target(edge);
                let slot_idx = self.node_slot[target];
                debug_assert_ne!(slot_idx, usize::MAX, "box edge must point at a request");
                self.cancel_assignment(slot_idx, BoxId(box_idx as u32), edge);
                excess -= 1;
            }
            debug_assert_eq!(excess, 0);
        }
        self.arena.set_capacity(source_edge, new_cap as i64);
        self.caps[box_idx] = new_cap;
        self.changed = true;
    }

    /// Removes a tracked request: cancels its flow and de-capacitates its
    /// sink edge, returning the slot to the pool.
    ///
    /// Candidate edges are left active: with the sink edge at capacity 0 no
    /// flow can route through the request node, so they are harmless, and a
    /// recycled slot often reuses them directly (its next `set_candidates`
    /// diff deactivates only the ones the new request does not need).
    fn remove_request(&mut self, key: RequestKey) {
        let slot_idx = self.by_key.remove(&key).expect("request is tracked");
        // Cancel any flow through the request.
        if self.arena.flow_on(self.slots[slot_idx].sink_edge) == 1 {
            let carrying = self.slots[slot_idx]
                .cand_edges
                .iter()
                .copied()
                .find(|&(_, e)| self.arena.flow_on(e) == 1)
                .expect("served request has a flow-carrying candidate edge");
            self.cancel_assignment(slot_idx, carrying.0, carrying.1);
        }
        let sink_edge = self.slots[slot_idx].sink_edge;
        if self.arena.edge(sink_edge).original_cap != 0 {
            self.arena.set_capacity(sink_edge, 0);
            self.dead_pairs += 1;
        }
        self.node_slot[self.slots[slot_idx].node] = usize::MAX;
        self.free_slots.push(slot_idx);
        self.changed = true;
    }

    /// Number of this round's requests currently carrying no flow.
    fn count_unserved(&self) -> usize {
        self.round_slots
            .iter()
            .filter(|&&slot_idx| self.arena.flow_on(self.slots[slot_idx].sink_edge) == 0)
            .count()
    }

    /// Attempts one augmenting path per unserved request of this round.
    ///
    /// Visit stamps persist across *failed* searches (the residual graph is
    /// unchanged by a failure, so nodes proven unable to reach the source
    /// stay unreachable) and are refreshed after every successful augment.
    fn augment_unserved(&mut self) {
        // Stale stamps can stay: the epoch is monotonic, so marks from
        // earlier rounds never collide with the current epoch.
        self.visit_stamp.resize(self.arena.node_count(), 0);
        self.visit_epoch += 1;
        for i in 0..self.round_slots.len() {
            let slot_idx = self.round_slots[i];
            let sink_edge = self.slots[slot_idx].sink_edge;
            if self.arena.flow_on(sink_edge) == 0 && self.try_augment(slot_idx) {
                self.total_flow += 1;
                self.visit_epoch += 1;
            }
        }
    }

    /// Searches a residual path `source → … → request` backwards from the
    /// request node and, when found, pushes one unit along it (plus the
    /// request's sink edge). Returns whether the request is now served.
    fn try_augment(&mut self, slot_idx: usize) -> bool {
        let root = self.slots[slot_idx].node;
        if self.visit_stamp[root] == self.visit_epoch {
            return false; // proven unreachable earlier this epoch
        }
        self.visit_stamp[root] = self.visit_epoch;
        self.dfs_stack.clear();
        self.path_edges.clear();
        self.dfs_stack.push((root, self.arena.first_edge(root)));

        while let Some(&(_node, cursor)) = self.dfs_stack.last() {
            // Incoming residual edges of `node` are the twins of the edges
            // in its adjacency list.
            let mut cursor = cursor;
            let mut descended = false;
            while let Some(idx) = cursor {
                let next_cursor = self.arena.next_edge(idx);
                let incoming = idx ^ 1;
                let from = self.arena.target(idx);
                if from != self.sink
                    && self.visit_stamp[from] != self.visit_epoch
                    && self.arena.residual(incoming) > 0
                {
                    if from == 0 {
                        // Reached the source: push flow along the path.
                        self.arena.push(incoming, 1);
                        for k in 0..self.path_edges.len() {
                            let e = self.path_edges[k];
                            self.arena.push(e, 1);
                        }
                        self.arena.push(self.slots[slot_idx].sink_edge, 1);
                        return true;
                    }
                    // Shortcut: a box with spare source capacity completes
                    // the path immediately. Without this, depth-first order
                    // (most-recent edge first) would wander through the
                    // box's alternating tree before reaching its source
                    // edge, which was added first and is iterated last.
                    if from >= 1 && from <= self.caps.len() {
                        let source_edge = self.source_edges[from - 1];
                        if self.arena.residual(source_edge) > 0 {
                            self.arena.push(source_edge, 1);
                            self.arena.push(incoming, 1);
                            for k in 0..self.path_edges.len() {
                                let e = self.path_edges[k];
                                self.arena.push(e, 1);
                            }
                            self.arena.push(self.slots[slot_idx].sink_edge, 1);
                            return true;
                        }
                    }
                    self.visit_stamp[from] = self.visit_epoch;
                    // Remember where to resume on `node`, descend to `from`.
                    let top = self.dfs_stack.len() - 1;
                    self.dfs_stack[top].1 = next_cursor;
                    self.path_edges.push(incoming);
                    self.dfs_stack.push((from, self.arena.first_edge(from)));
                    descended = true;
                    break;
                }
                cursor = next_cursor;
            }
            if !descended {
                self.dfs_stack.pop();
                self.path_edges.pop();
            }
        }
        false
    }

    /// Debug check: no augmenting path is left (every unserved request of
    /// the current round is unreachable from the source in the residual
    /// graph). Debug builds only; uses reusable scratch so it allocates
    /// nothing in steady state.
    fn flow_is_maximal(&mut self) -> bool {
        self.arena
            .residual_reachable_into(0, &mut self.dbg_seen, &mut self.dbg_stack);
        self.round_slots.iter().all(|&slot_idx| {
            let slot = &self.slots[slot_idx];
            self.arena.flow_on(slot.sink_edge) == 1 || !self.dbg_seen[slot.node]
        })
    }

    /// Writes the assignment for this round's requests into `out`.
    fn extract(&self, out: &mut Vec<Option<BoxId>>) {
        out.clear();
        out.resize(self.round_slots.len(), None);
        for (pos, &slot_idx) in self.round_slots.iter().enumerate() {
            let slot = &self.slots[slot_idx];
            debug_assert_eq!(slot.pos, pos);
            out[pos] = slot
                .cand_edges
                .iter()
                .copied()
                .find(|&(_, e)| self.arena.flow_on(e) == 1)
                .map(|(b, _)| b);
        }
    }

    /// Debug check: the arena's flow is a valid flow of value `total_flow`.
    fn flow_is_consistent(&self) -> bool {
        let mut source_out = 0;
        for &e in &self.source_edges {
            let flow = self.arena.flow_on(e);
            if flow < 0 || flow > self.arena.edge(e).original_cap {
                return false;
            }
            source_out += flow;
        }
        source_out == self.total_flow && self.arena.net_outflow(0) == self.total_flow
    }
}

/// The incremental matcher plugs into the engine as a
/// [`Scheduler`](crate::scheduler::Scheduler): keyed rounds patch the
/// persistent instance, unkeyed rounds fall back to the cold one-shot
/// solve.
impl crate::scheduler::Scheduler for IncrementalMatcher {
    fn schedule(&mut self, capacities: &[u32], candidates: &[Vec<BoxId>]) -> Vec<Option<BoxId>> {
        let mut out = Vec::new();
        self.schedule_cold(capacities, candidates, &mut out);
        out
    }

    fn schedule_keyed(
        &mut self,
        capacities: &[u32],
        keys: &[RequestKey],
        candidates: &[Vec<BoxId>],
        out: &mut Vec<Option<BoxId>>,
    ) {
        IncrementalMatcher::schedule_keyed(self, capacities, keys, candidates, out);
    }

    fn schedule_keyed_view(
        &mut self,
        capacities: &[u32],
        keys: &[RequestKey],
        candidates: CandidateView<'_>,
        out: &mut Vec<Option<BoxId>>,
    ) {
        IncrementalMatcher::schedule_keyed_view(self, capacities, keys, candidates, out);
    }

    fn schedule_relayed_view(
        &mut self,
        capacities: &[u32],
        keys: &[RequestKey],
        candidates: CandidateView<'_>,
        relays: &vod_flow::RelayView,
        out: &mut Vec<Option<BoxId>>,
    ) {
        // Relay-blind (see `Scheduler::schedule_relayed`): stay on the
        // native view path instead of the allocating default bridge.
        let _ = relays;
        IncrementalMatcher::schedule_keyed_view(self, capacities, keys, candidates, out);
    }

    fn attach_tracer(&mut self, tracer: &TraceHandle) {
        IncrementalMatcher::attach_tracer(self, tracer);
    }

    fn name(&self) -> &'static str {
        "incremental"
    }
}

impl std::fmt::Debug for IncrementalMatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IncrementalMatcher")
            .field("solver", &self.solver.name())
            .field("boxes", &self.caps.len())
            .field("tracked_requests", &self.by_key.len())
            .field("total_flow", &self.total_flow)
            .field("rebuilds", &self.rebuilds)
            .field("rounds", &self.rounds)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::assignment_is_valid;
    use vod_core::VideoId;

    fn key(viewer: u32, video: u32, index: u16) -> RequestKey {
        RequestKey {
            viewer: BoxId(viewer),
            stripe: StripeId::new(VideoId(video), index),
        }
    }

    fn b(i: u32) -> BoxId {
        BoxId(i)
    }

    fn cold_served(caps: &[u32], cands: &[Vec<BoxId>]) -> usize {
        let mut problem = vod_flow::ConnectionProblem::new(caps.to_vec());
        for c in cands {
            problem.add_request(c.iter().copied());
        }
        problem.solve().served()
    }

    #[test]
    fn first_round_matches_cold_solve() {
        let caps = vec![1, 1];
        let keys = vec![key(0, 0, 0), key(1, 0, 1)];
        let cands = vec![vec![b(0), b(1)], vec![b(0)]];
        let mut matcher = IncrementalMatcher::default();
        let mut out = Vec::new();
        matcher.schedule_keyed(&caps, &keys, &cands, &mut out);
        assert!(assignment_is_valid(&out, &caps, &cands));
        assert_eq!(out.iter().flatten().count(), cold_served(&caps, &cands));
        assert_eq!(matcher.rebuilds(), 1);
    }

    #[test]
    fn unchanged_rounds_do_not_rebuild_and_stay_optimal() {
        let caps = vec![2, 1];
        let keys = vec![key(0, 0, 0), key(1, 0, 1), key(2, 0, 2)];
        let cands = vec![vec![b(0)], vec![b(0), b(1)], vec![b(1)]];
        let mut matcher = IncrementalMatcher::default();
        let mut out = Vec::new();
        for _ in 0..10 {
            matcher.schedule_keyed(&caps, &keys, &cands, &mut out);
            assert!(assignment_is_valid(&out, &caps, &cands));
            assert_eq!(out.iter().flatten().count(), 3);
        }
        assert_eq!(matcher.rebuilds(), 1);
        assert_eq!(matcher.rounds(), 10);
    }

    #[test]
    fn arrivals_and_departures_track_cold_solves() {
        // Rolling window of requests over 4 boxes: each round drops the
        // oldest request and adds a new one with rotating candidates.
        let caps = vec![1, 1, 1, 1];
        let mut matcher = IncrementalMatcher::default();
        let mut out = Vec::new();
        let mut window: Vec<(RequestKey, Vec<BoxId>)> = Vec::new();
        for round in 0u32..40 {
            if window.len() >= 5 {
                window.remove(0);
            }
            let cands = vec![b(round % 4), b((round + 1) % 4)];
            window.push((key(round, round % 7, 0), cands));
            let keys: Vec<RequestKey> = window.iter().map(|(k, _)| *k).collect();
            let cands: Vec<Vec<BoxId>> = window.iter().map(|(_, c)| c.clone()).collect();
            matcher.schedule_keyed(&caps, &keys, &cands, &mut out);
            assert!(assignment_is_valid(&out, &caps, &cands), "round {round}");
            assert_eq!(
                out.iter().flatten().count(),
                cold_served(&caps, &cands),
                "round {round}"
            );
        }
    }

    #[test]
    fn candidate_set_changes_are_patched() {
        let caps = vec![1, 1];
        let keys = vec![key(0, 0, 0), key(1, 0, 0)];
        let mut matcher = IncrementalMatcher::default();
        let mut out = Vec::new();
        // Round 1: both requests can only use box 0 → one unserved.
        let cands = vec![vec![b(0)], vec![b(0)]];
        matcher.schedule_keyed(&caps, &keys, &cands, &mut out);
        assert_eq!(out.iter().flatten().count(), 1);
        // Round 2: request 1 gains box 1 → both served, no rebuild.
        let cands = vec![vec![b(0)], vec![b(0), b(1)]];
        matcher.schedule_keyed(&caps, &keys, &cands, &mut out);
        assert_eq!(out.iter().flatten().count(), 2);
        // Round 3: request 0 loses box 0 entirely → its flow is cancelled.
        let cands = vec![vec![], vec![b(0), b(1)]];
        matcher.schedule_keyed(&caps, &keys, &cands, &mut out);
        assert_eq!(out[0], None);
        assert_eq!(out.iter().flatten().count(), 1);
        assert_eq!(matcher.rebuilds(), 1);
    }

    #[test]
    fn capacity_reduction_evicts_and_reroutes() {
        let keys = vec![key(0, 0, 0), key(1, 0, 0)];
        let cands = vec![vec![b(0), b(1)], vec![b(0), b(1)]];
        let mut matcher = IncrementalMatcher::default();
        let mut out = Vec::new();
        matcher.schedule_keyed(&[2, 0], &keys, &cands, &mut out);
        assert_eq!(out.iter().flatten().count(), 2);
        // Box 0 shrinks to 1 slot, box 1 opens one: still fully servable.
        matcher.schedule_keyed(&[1, 1], &keys, &cands, &mut out);
        assert_eq!(out.iter().flatten().count(), 2);
        assert!(assignment_is_valid(&out, &[1, 1], &cands));
        // Both boxes shrink: only one request served.
        matcher.schedule_keyed(&[1, 0], &keys, &cands, &mut out);
        assert_eq!(out.iter().flatten().count(), 1);
        assert_eq!(matcher.rebuilds(), 1);
    }

    #[test]
    fn heavy_churn_triggers_compaction_and_stays_correct() {
        let caps = vec![2; 8];
        let mut matcher = IncrementalMatcher::default();
        let mut out = Vec::new();
        for round in 0u32..300 {
            // Entirely fresh keys each round: worst case for edge garbage.
            let keys: Vec<RequestKey> = (0..6).map(|i| key(round * 10 + i, round % 5, 0)).collect();
            let cands: Vec<Vec<BoxId>> = (0..6u32)
                .map(|i| vec![b((round + i) % 8), b((round + i + 3) % 8)])
                .collect();
            matcher.schedule_keyed(&caps, &keys, &cands, &mut out);
            assert_eq!(out.iter().flatten().count(), 6, "round {round}");
        }
        assert!(matcher.rebuilds() > 1, "compaction never kicked in");
        // The arena stays bounded: dead edges are reclaimed.
        assert!(matcher.arena_edge_count() < 4000);
    }

    #[test]
    fn cold_one_shot_then_keyed_round_recovers() {
        let caps = vec![1, 1];
        let mut matcher = IncrementalMatcher::default();
        let mut out = Vec::new();
        matcher.schedule_cold(&caps, &[vec![b(0), b(1)], vec![b(0)]], &mut out);
        assert_eq!(out.iter().flatten().count(), 2);
        let keys = vec![key(0, 0, 0)];
        let cands = vec![vec![b(1)]];
        matcher.schedule_keyed(&caps, &keys, &cands, &mut out);
        assert_eq!(out, vec![Some(b(1))]);
    }
}
