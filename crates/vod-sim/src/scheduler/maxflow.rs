//! The paper's optimal scheduler: connection matching by maximum flow.

use super::Scheduler;
use vod_core::BoxId;
use vod_flow::{ConnectionProblem, FlowSolver};

/// Scheduler computing an optimal connection matching (Lemma 1) each round.
#[derive(Clone, Copy, Debug, Default)]
pub struct MaxFlowScheduler {
    solver: FlowSolver,
}

impl MaxFlowScheduler {
    /// Scheduler backed by Dinic's algorithm.
    pub fn new() -> Self {
        MaxFlowScheduler {
            solver: FlowSolver::Dinic,
        }
    }

    /// Scheduler backed by an explicit flow solver.
    pub fn with_solver(solver: FlowSolver) -> Self {
        MaxFlowScheduler { solver }
    }
}

impl Scheduler for MaxFlowScheduler {
    fn schedule(&mut self, capacities: &[u32], candidates: &[Vec<BoxId>]) -> Vec<Option<BoxId>> {
        let mut problem = ConnectionProblem::new(capacities.to_vec());
        for cand in candidates {
            problem.add_request(cand.iter().copied());
        }
        problem.solve_with(self.solver).assignment
    }

    fn name(&self) -> &'static str {
        "max-flow"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::assignment_is_valid;

    fn b(i: u32) -> BoxId {
        BoxId(i)
    }

    #[test]
    fn finds_the_augmenting_assignment_greedy_would_miss() {
        // Request 0 can go to box 0 or 1; request 1 only to box 0.
        // A greedy pass serving request 0 from box 0 would strand request 1.
        let caps = vec![1, 1];
        let cands = vec![vec![b(0), b(1)], vec![b(0)]];
        let mut s = MaxFlowScheduler::new();
        let a = s.schedule(&caps, &cands);
        assert!(assignment_is_valid(&a, &caps, &cands));
        assert_eq!(a.iter().filter(|x| x.is_some()).count(), 2);
        assert_eq!(a[1], Some(b(0)));
        assert_eq!(a[0], Some(b(1)));
    }

    #[test]
    fn infeasible_requests_left_unserved() {
        let caps = vec![1];
        let cands = vec![vec![b(0)], vec![b(0)], vec![b(0)]];
        let a = MaxFlowScheduler::new().schedule(&caps, &cands);
        assert_eq!(a.iter().filter(|x| x.is_some()).count(), 1);
    }

    #[test]
    fn push_relabel_variant_agrees_on_served_count() {
        let caps = vec![2, 1, 1];
        let cands = vec![
            vec![b(0)],
            vec![b(0), b(1)],
            vec![b(1), b(2)],
            vec![b(2)],
            vec![b(0), b(2)],
        ];
        let a = MaxFlowScheduler::new().schedule(&caps, &cands);
        let c = MaxFlowScheduler::with_solver(FlowSolver::PushRelabel).schedule(&caps, &cands);
        assert_eq!(
            a.iter().filter(|x| x.is_some()).count(),
            c.iter().filter(|x| x.is_some()).count()
        );
    }

    #[test]
    fn empty_request_set_yields_empty_assignment() {
        let a = MaxFlowScheduler::new().schedule(&[3, 3], &[]);
        assert!(a.is_empty());
    }
}
