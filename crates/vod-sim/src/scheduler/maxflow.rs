//! The paper's optimal scheduler: connection matching by maximum flow.
//!
//! Backed by the [`IncrementalMatcher`]: when driven through
//! [`Scheduler::schedule_keyed`] (as the engine does) consecutive rounds
//! patch one reused flow arena and warm-start the solver, so a steady-state
//! round performs no heap allocation in the matching layer. The plain
//! [`Scheduler::schedule`] entry point solves one-shot instances, still
//! reusing the same arena storage.

use super::{IncrementalMatcher, RequestKey, Scheduler};
use vod_core::BoxId;
use vod_flow::{CandidateView, MaxFlowSolve};

/// Scheduler computing an optimal connection matching (Lemma 1) each round.
#[derive(Debug, Default)]
pub struct MaxFlowScheduler {
    matcher: IncrementalMatcher,
}

impl MaxFlowScheduler {
    /// Scheduler backed by Dinic's algorithm.
    pub fn new() -> Self {
        MaxFlowScheduler::default()
    }

    /// Scheduler backed by an explicit flow solver.
    pub fn with_solver(solver: Box<dyn MaxFlowSolve>) -> Self {
        MaxFlowScheduler {
            matcher: IncrementalMatcher::new(solver),
        }
    }

    /// The incremental matcher behind this scheduler (observability:
    /// rebuild count, arena size, current flow).
    pub fn matcher(&self) -> &IncrementalMatcher {
        &self.matcher
    }
}

impl Scheduler for MaxFlowScheduler {
    fn schedule(&mut self, capacities: &[u32], candidates: &[Vec<BoxId>]) -> Vec<Option<BoxId>> {
        let mut out = Vec::with_capacity(candidates.len());
        self.matcher.schedule_cold(capacities, candidates, &mut out);
        out
    }

    fn schedule_keyed(
        &mut self,
        capacities: &[u32],
        keys: &[RequestKey],
        candidates: &[Vec<BoxId>],
        out: &mut Vec<Option<BoxId>>,
    ) {
        self.matcher
            .schedule_keyed(capacities, keys, candidates, out);
    }

    fn schedule_keyed_view(
        &mut self,
        capacities: &[u32],
        keys: &[RequestKey],
        candidates: CandidateView<'_>,
        out: &mut Vec<Option<BoxId>>,
    ) {
        self.matcher
            .schedule_keyed_view(capacities, keys, candidates, out);
    }

    fn schedule_relayed_view(
        &mut self,
        capacities: &[u32],
        keys: &[RequestKey],
        candidates: CandidateView<'_>,
        relays: &vod_flow::RelayView,
        out: &mut Vec<Option<BoxId>>,
    ) {
        // Relay-blind (forwarding draws on reserved capacity, not on the
        // open budgets the matching allocates): stay on the native view
        // path instead of falling into the allocating default bridge.
        let _ = relays;
        self.matcher
            .schedule_keyed_view(capacities, keys, candidates, out);
    }

    fn attach_tracer(&mut self, tracer: &vod_obs::TraceHandle) {
        self.matcher.attach_tracer(tracer);
    }

    fn name(&self) -> &'static str {
        "max-flow"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::assignment_is_valid;
    use vod_flow::{HopcroftKarpSolve, PushRelabel};

    fn b(i: u32) -> BoxId {
        BoxId(i)
    }

    #[test]
    fn finds_the_augmenting_assignment_greedy_would_miss() {
        // Request 0 can go to box 0 or 1; request 1 only to box 0.
        // A greedy pass serving request 0 from box 0 would strand request 1.
        let caps = vec![1, 1];
        let cands = vec![vec![b(0), b(1)], vec![b(0)]];
        let mut s = MaxFlowScheduler::new();
        let a = s.schedule(&caps, &cands);
        assert!(assignment_is_valid(&a, &caps, &cands));
        assert_eq!(a.iter().filter(|x| x.is_some()).count(), 2);
        assert_eq!(a[1], Some(b(0)));
        assert_eq!(a[0], Some(b(1)));
    }

    #[test]
    fn infeasible_requests_left_unserved() {
        let caps = vec![1];
        let cands = vec![vec![b(0)], vec![b(0)], vec![b(0)]];
        let a = MaxFlowScheduler::new().schedule(&caps, &cands);
        assert_eq!(a.iter().filter(|x| x.is_some()).count(), 1);
    }

    #[test]
    fn alternative_solvers_agree_on_served_count() {
        let caps = vec![2, 1, 1];
        let cands = vec![
            vec![b(0)],
            vec![b(0), b(1)],
            vec![b(1), b(2)],
            vec![b(2)],
            vec![b(0), b(2)],
        ];
        let a = MaxFlowScheduler::new().schedule(&caps, &cands);
        let c = MaxFlowScheduler::with_solver(Box::new(PushRelabel::new())).schedule(&caps, &cands);
        let h = MaxFlowScheduler::with_solver(Box::new(HopcroftKarpSolve::new()))
            .schedule(&caps, &cands);
        let served = |a: &[Option<BoxId>]| a.iter().filter(|x| x.is_some()).count();
        assert_eq!(served(&a), served(&c));
        assert_eq!(served(&a), served(&h));
    }

    #[test]
    fn empty_request_set_yields_empty_assignment() {
        let a = MaxFlowScheduler::new().schedule(&[3, 3], &[]);
        assert!(a.is_empty());
    }
}
