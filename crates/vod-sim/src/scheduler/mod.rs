//! Per-round connection schedulers.
//!
//! Each round the simulator has a set of active stripe requests, each with a
//! candidate supplier set, and per-box upload capacities (in stripe
//! connections). A scheduler decides which box serves which request. The
//! paper's machinery is the optimal max-flow matching (Lemma 1); the greedy
//! and random schedulers are baselines showing how much of the threshold
//! behaviour is due to optimal matching versus the allocation itself.

mod greedy;
pub mod incremental;
mod maxflow;
mod random_pick;
pub mod relay_broker;
pub mod sharded;

pub use greedy::GreedyScheduler;
pub use incremental::{IncrementalMatcher, RequestKey};
pub use maxflow::MaxFlowScheduler;
pub use random_pick::RandomScheduler;
pub use relay_broker::{RelayBroker, RelayEvent, RelayRoundStats, RelayUtilization};
pub use sharded::{ReconcilePolicy, ShardRoundStats, ShardedMatcher, SplitPolicy};

use vod_core::BoxId;
use vod_flow::{CandidateView, RelayLendStats, RelayView};
use vod_obs::TraceHandle;

/// A per-round connection scheduler.
///
/// ```
/// use vod_core::BoxId;
/// use vod_sim::{MaxFlowScheduler, Scheduler};
///
/// // Two requests over two boxes with one upload slot each: the paper's
/// // max-flow scheduler always finds the maximum matching.
/// let caps = vec![1, 1];
/// let cands = vec![vec![BoxId(0), BoxId(1)], vec![BoxId(0)]];
/// let mut scheduler = MaxFlowScheduler::new();
/// let assignment = scheduler.schedule(&caps, &cands);
/// assert_eq!(assignment.iter().flatten().count(), 2);
/// ```
pub trait Scheduler {
    /// Assigns a supplier to each request.
    ///
    /// * `capacities[i]` — number of stripe connections box `i` may serve
    ///   this round (`⌊u_b·c⌋`, already net of compensation reservations);
    /// * `candidates[x]` — the boxes possessing the data of request `x`.
    ///
    /// Returns, for each request, the serving box or `None` if unserved. The
    /// returned assignment must respect capacities and candidate sets.
    fn schedule(&mut self, capacities: &[u32], candidates: &[Vec<BoxId>]) -> Vec<Option<BoxId>>;

    /// Keyed variant used by the simulation engine: `keys[x]` is a stable
    /// cross-round identity for request `x`, letting incremental schedulers
    /// patch the previous round's instance instead of solving from scratch.
    /// The assignment is written into `out` (cleared first), index-aligned
    /// with the input.
    ///
    /// The default implementation ignores the keys and delegates to
    /// [`Scheduler::schedule`], so stateless schedulers need not care.
    fn schedule_keyed(
        &mut self,
        capacities: &[u32],
        keys: &[RequestKey],
        candidates: &[Vec<BoxId>],
        out: &mut Vec<Option<BoxId>>,
    ) {
        debug_assert_eq!(keys.len(), candidates.len());
        out.clear();
        out.extend(self.schedule(capacities, candidates));
    }

    /// Flat-CSR variant of [`Scheduler::schedule_keyed`], the entry point
    /// the simulation engine drives: `candidates` is one contiguous
    /// [`CandidateView`] instead of a slice of per-request `Vec`s, and may
    /// carry per-row change stamps that let incremental schedulers skip
    /// their per-row diffs (see [`vod_flow::candidates`]).
    ///
    /// The default implementation materializes the rows and delegates to
    /// [`Scheduler::schedule_keyed`], so external schedulers implementing
    /// only the slice-of-vecs form keep working unchanged; the in-tree
    /// matchers override it to consume the view natively.
    fn schedule_keyed_view(
        &mut self,
        capacities: &[u32],
        keys: &[RequestKey],
        candidates: CandidateView<'_>,
        out: &mut Vec<Option<BoxId>>,
    ) {
        let rows = candidates.to_vecs();
        self.schedule_keyed(capacities, keys, &rows, out);
    }

    /// Relay-aware variant used for heterogeneous systems: `relays` names
    /// each request's forwarding relay and the per-box reserved forwarding
    /// slots. Relay structure never changes *which* requests find suppliers
    /// (forwarding draws on reserved capacity, disjoint from the open
    /// budgets the matching allocates), so the default implementation
    /// ignores it and delegates to [`Scheduler::schedule_keyed`] — the
    /// global matchers stay relay-blind and still produce the right
    /// schedule. Relay-aware schedulers (the [`ShardedMatcher`]) override
    /// this to additionally account reserved capacity across shards and
    /// expose it through [`Scheduler::relay_stats`].
    fn schedule_relayed(
        &mut self,
        capacities: &[u32],
        keys: &[RequestKey],
        candidates: &[Vec<BoxId>],
        relays: &RelayView,
        out: &mut Vec<Option<BoxId>>,
    ) {
        let _ = relays;
        self.schedule_keyed(capacities, keys, candidates, out);
    }

    /// Flat-CSR variant of [`Scheduler::schedule_relayed`] (the engine's
    /// heterogeneous entry point). Defaults bridge exactly like
    /// [`Scheduler::schedule_keyed_view`]: rows are materialized and handed
    /// to the slice-of-vecs form, so relay-blind and external schedulers
    /// need not care.
    fn schedule_relayed_view(
        &mut self,
        capacities: &[u32],
        keys: &[RequestKey],
        candidates: CandidateView<'_>,
        relays: &RelayView,
        out: &mut Vec<Option<BoxId>>,
    ) {
        let rows = candidates.to_vecs();
        self.schedule_relayed(capacities, keys, &rows, relays, out);
    }

    /// Per-round shard observability, for schedulers that shard the round's
    /// instance (see [`ShardRoundStats`]). The engine threads this into
    /// [`crate::metrics::RoundMetrics::shard`]; non-sharded schedulers
    /// return `None` (the default).
    fn shard_stats(&self) -> Option<ShardRoundStats> {
        None
    }

    /// Per-round relay-lending observability, for relay-aware schedulers
    /// (see [`vod_flow::RelayLendStats`]). The engine merges this into
    /// [`crate::metrics::RoundMetrics::relay`]; relay-blind schedulers
    /// return `None` (the default).
    fn relay_stats(&self) -> Option<RelayLendStats> {
        None
    }

    /// Installs a trace handle for scheduler-internal stage spans (shard
    /// partition/solve/reconcile, solver phases). The engine calls this
    /// when a tracer is attached to the simulator; schedulers without
    /// internal stages keep the default no-op, and an off handle costs
    /// nothing on the hot path.
    fn attach_tracer(&mut self, tracer: &TraceHandle) {
        let _ = tracer;
    }

    /// Short name for reports and benchmark labels.
    fn name(&self) -> &'static str;
}

/// Checks that an assignment respects candidate sets and capacities
/// (shared by tests and the engine's debug assertions).
pub fn assignment_is_valid(
    assignment: &[Option<BoxId>],
    capacities: &[u32],
    candidates: &[Vec<BoxId>],
) -> bool {
    if assignment.len() != candidates.len() {
        return false;
    }
    let mut loads = vec![0u32; capacities.len()];
    for (x, a) in assignment.iter().enumerate() {
        if let Some(b) = a {
            if !candidates[x].contains(b) {
                return false;
            }
            loads[b.index()] += 1;
        }
    }
    loads.iter().zip(capacities).all(|(l, c)| l <= c)
}

/// [`assignment_is_valid`] over a flat [`CandidateView`], with pooled load
/// scratch so the engine's per-round debug assertion stays allocation-free.
pub fn assignment_is_valid_view(
    assignment: &[Option<BoxId>],
    capacities: &[u32],
    candidates: CandidateView<'_>,
    loads: &mut Vec<u32>,
) -> bool {
    if assignment.len() != candidates.len() {
        return false;
    }
    loads.clear();
    loads.resize(capacities.len(), 0);
    for (x, a) in assignment.iter().enumerate() {
        if let Some(b) = a {
            if !candidates.row(x).contains(b) {
                return false;
            }
            loads[b.index()] += 1;
        }
    }
    loads.iter().zip(capacities).all(|(l, c)| l <= c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u32) -> BoxId {
        BoxId(i)
    }

    /// Shared scenario: 3 boxes (capacities 1, 1, 2), 4 requests.
    fn scenario() -> (Vec<u32>, Vec<Vec<BoxId>>) {
        (
            vec![1, 1, 2],
            vec![vec![b(0), b(1)], vec![b(0)], vec![b(1), b(2)], vec![b(2)]],
        )
    }

    #[test]
    fn all_schedulers_return_valid_assignments() {
        let (caps, cands) = scenario();
        let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(MaxFlowScheduler::new()),
            Box::new(GreedyScheduler::new()),
            Box::new(RandomScheduler::new(42)),
        ];
        for s in &mut schedulers {
            let a = s.schedule(&caps, &cands);
            assert!(
                assignment_is_valid(&a, &caps, &cands),
                "invalid assignment from {}",
                s.name()
            );
        }
    }

    #[test]
    fn maxflow_serves_at_least_as_many_as_greedy_and_random() {
        let (caps, cands) = scenario();
        let served = |a: &[Option<BoxId>]| a.iter().filter(|x| x.is_some()).count();
        let mf = served(&MaxFlowScheduler::new().schedule(&caps, &cands));
        let gr = served(&GreedyScheduler::new().schedule(&caps, &cands));
        let rd = served(&RandomScheduler::new(1).schedule(&caps, &cands));
        assert!(mf >= gr);
        assert!(mf >= rd);
        assert_eq!(mf, 4); // this instance is fully feasible
    }

    #[test]
    fn assignment_validator_rejects_violations() {
        let caps = vec![1u32];
        let cands = vec![vec![b(0)], vec![b(0)]];
        // Over capacity.
        assert!(!assignment_is_valid(
            &[Some(b(0)), Some(b(0))],
            &caps,
            &cands
        ));
        // Not a candidate.
        assert!(!assignment_is_valid(
            &[Some(b(0)), None],
            &caps,
            &[vec![], vec![]]
        ));
        // Wrong length.
        assert!(!assignment_is_valid(&[None], &caps, &cands));
        // Valid.
        assert!(assignment_is_valid(&[Some(b(0)), None], &caps, &cands));
    }
}
