//! Random-choice baseline scheduler.
//!
//! Each request, in arrival order, picks a uniformly random candidate that
//! still has capacity. This models a completely uncoordinated protocol
//! (every box picks a source on its own) and lower-bounds the matching
//! quality achievable without any load awareness.

use super::Scheduler;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use vod_core::BoxId;

/// Uncoordinated random scheduler.
#[derive(Clone, Debug)]
pub struct RandomScheduler {
    rng: StdRng,
}

impl Default for RandomScheduler {
    fn default() -> Self {
        RandomScheduler::new(0)
    }
}

impl RandomScheduler {
    /// Creates the scheduler with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        RandomScheduler {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for RandomScheduler {
    fn schedule(&mut self, capacities: &[u32], candidates: &[Vec<BoxId>]) -> Vec<Option<BoxId>> {
        let mut remaining: Vec<u32> = capacities.to_vec();
        let mut assignment = vec![None; candidates.len()];
        for (x, cands) in candidates.iter().enumerate() {
            let available: Vec<BoxId> = cands
                .iter()
                .copied()
                .filter(|b| remaining[b.index()] > 0)
                .collect();
            if let Some(&b) = available.choose(&mut self.rng) {
                remaining[b.index()] -= 1;
                assignment[x] = Some(b);
            }
        }
        assignment
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::assignment_is_valid;

    fn b(i: u32) -> BoxId {
        BoxId(i)
    }

    #[test]
    fn always_valid() {
        let caps = vec![1, 1, 2];
        let cands = vec![
            vec![b(0), b(1), b(2)],
            vec![b(0), b(2)],
            vec![b(1)],
            vec![b(2)],
            vec![b(0)],
        ];
        for seed in 0..20 {
            let a = RandomScheduler::new(seed).schedule(&caps, &cands);
            assert!(assignment_is_valid(&a, &caps, &cands), "seed {seed}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let caps = vec![2, 2];
        let cands = vec![vec![b(0), b(1)]; 4];
        let a = RandomScheduler::new(9).schedule(&caps, &cands);
        let c = RandomScheduler::new(9).schedule(&caps, &cands);
        assert_eq!(a, c);
    }

    #[test]
    fn serves_everything_when_capacity_abounds() {
        let caps = vec![10, 10];
        let cands = vec![vec![b(0), b(1)]; 6];
        let a = RandomScheduler::new(3).schedule(&caps, &cands);
        assert!(a.iter().all(Option::is_some));
    }

    #[test]
    fn no_candidates_means_unserved() {
        let caps = vec![5];
        let cands = vec![vec![]];
        let a = RandomScheduler::new(0).schedule(&caps, &cands);
        assert_eq!(a, vec![None]);
    }
}
