//! The relay broker: live management of `u*`-compensation reservations.
//!
//! Theorem 2's compensation plan was historically a static object: built
//! once, silently pre-deducted from upload budgets, and never looked at
//! again. The [`RelayBroker`] promotes it to a managed subsystem:
//!
//! * **build & validate** — owns the [`CompensationPlan`] (with the named
//!   bound-violation errors of `vod_core::compensation`);
//! * **re-plan under churn** — [`RelayBroker::apply`] handles box
//!   joins/leaves and upload changes, migrating reservations with
//!   deterministic tie-breaks (largest residual headroom first, lowest box
//!   id on ties) and emitting the [`CompensationDelta`]s it performed so a
//!   mirror plan can replay them;
//! * **observe** — [`RelayBroker::note_round`] folds each round's
//!   forwarding demand into per-relay utilization counters
//!   ([`RelayUtilization`]) and returns the round's [`RelayRoundStats`],
//!   which the engine threads into `RoundMetrics::relay` exactly like the
//!   sharded scheduler's `shard_stats`;
//! * **witness** — [`RelayBroker::diagnose`] builds the two-hop
//!   [`vod_flow::RelayNetwork`] over a round's instance and extracts the
//!   [`RelayObstruction`] naming any starved reservation.

use vod_core::json::{obj, Json, JsonCodec, JsonError};
use vod_core::{
    relay_reservation, Bandwidth, BoxId, BoxSet, CompensationDelta, CompensationPlan, CoreError,
    NodeBox,
};
use vod_flow::{CandidateBuf, CandidateView, Dinic, RelayNetwork, RelayObstruction, RelayView};

/// A churn event the broker re-plans reservations around.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RelayEvent {
    /// A new box joined the system.
    BoxJoined(NodeBox),
    /// A box left the system (relay or poor box alike).
    BoxLeft(BoxId),
    /// A box's upload capacity changed (e.g. a measured-bandwidth update).
    UploadChanged(BoxId, Bandwidth),
}

/// Cumulative per-relay utilization of the reserved forwarding capacity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RelayUtilization {
    /// The relay box.
    pub relay: BoxId,
    /// Its currently reserved forwarding slots (`⌊reserved·c⌋`).
    pub reserved_slots: u32,
    /// Poor boxes currently relayed through it.
    pub assigned_poor: usize,
    /// Forwarding units served over all observed rounds.
    pub forwards: u64,
    /// Largest single-round forwarding demand observed.
    pub peak_load: u32,
    /// Rounds in which the demand used every reserved slot.
    pub saturated_rounds: u64,
    /// Rounds in which the demand exceeded the reservation (the static
    /// bound was insufficient that round).
    pub oversubscribed_rounds: u64,
}

impl RelayUtilization {
    /// A zeroed counter slot for `relay`.
    fn zero(relay: BoxId) -> Self {
        RelayUtilization {
            relay,
            reserved_slots: 0,
            assigned_poor: 0,
            forwards: 0,
            peak_load: 0,
            saturated_rounds: 0,
            oversubscribed_rounds: 0,
        }
    }
}

impl JsonCodec for RelayUtilization {
    fn to_json(&self) -> Json {
        obj(vec![
            ("relay", self.relay.to_json()),
            ("reserved_slots", self.reserved_slots.to_json()),
            ("assigned_poor", self.assigned_poor.to_json()),
            ("forwards", self.forwards.to_json()),
            ("peak_load", self.peak_load.to_json()),
            ("saturated_rounds", self.saturated_rounds.to_json()),
            (
                "oversubscribed_rounds",
                self.oversubscribed_rounds.to_json(),
            ),
        ])
    }
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(RelayUtilization {
            relay: BoxId::from_json(json.field("relay")?)?,
            reserved_slots: u32::from_json(json.field("reserved_slots")?)?,
            assigned_poor: usize::from_json(json.field("assigned_poor")?)?,
            forwards: u64::from_json(json.field("forwards")?)?,
            peak_load: u32::from_json(json.field("peak_load")?)?,
            saturated_rounds: u64::from_json(json.field("saturated_rounds")?)?,
            oversubscribed_rounds: u64::from_json(json.field("oversubscribed_rounds")?)?,
        })
    }
}

/// Per-round relay observability, threaded into `RoundMetrics::relay`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RelayRoundStats {
    /// Boxes carrying a reservation this round.
    pub relays: usize,
    /// Active relayed (forwarding) requests this round.
    pub relayed_requests: usize,
    /// Total reserved forwarding slots across all relays.
    pub reserved_slots: usize,
    /// Forwarding units served (`Σ_a min(reserved_a, demand_a)` — a
    /// reservation is never oversubscribed).
    pub forwarded: usize,
    /// Forwarding demand no reservation could cover.
    pub starved: usize,
    /// Relays whose demand used every reserved slot.
    pub saturated_relays: usize,
    /// Relays demanded by more than one swarm shard (sharded scheduling
    /// only; 0 on the global path).
    pub contested_relays: usize,
    /// Reserved slots the sharded budget split lent across swarm shards
    /// (sharded scheduling only; 0 on the global path).
    pub lent: usize,
}

impl JsonCodec for RelayRoundStats {
    fn to_json(&self) -> Json {
        obj(vec![
            ("relays", self.relays.to_json()),
            ("relayed_requests", self.relayed_requests.to_json()),
            ("reserved_slots", self.reserved_slots.to_json()),
            ("forwarded", self.forwarded.to_json()),
            ("starved", self.starved.to_json()),
            ("saturated_relays", self.saturated_relays.to_json()),
            ("contested_relays", self.contested_relays.to_json()),
            ("lent", self.lent.to_json()),
        ])
    }
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(RelayRoundStats {
            relays: usize::from_json(json.field("relays")?)?,
            relayed_requests: usize::from_json(json.field("relayed_requests")?)?,
            reserved_slots: usize::from_json(json.field("reserved_slots")?)?,
            forwarded: usize::from_json(json.field("forwarded")?)?,
            starved: usize::from_json(json.field("starved")?)?,
            saturated_relays: usize::from_json(json.field("saturated_relays")?)?,
            contested_relays: usize::from_json(json.field("contested_relays")?)?,
            lent: usize::from_json(json.field("lent")?)?,
        })
    }
}

/// State of opt-in dynamic reservation sizing: per-relay effective-slot
/// overrides retuned from observed saturation instead of holding every
/// relay at the static worst-case `u* + 1 − 2·u_b` bound forever.
///
/// An override of `None` means "use the plan's worst case". A shrink only
/// ever *reduces* a reservation, so [`CompensationPlan::validate`] over
/// the plan stays the authoritative feasibility check; the override never
/// admits more forwarding than Theorem 2 budgeted for.
#[derive(Clone, Debug)]
struct DynSizing {
    /// Consecutive calm (non-saturated) rounds required before a
    /// reservation shrinks by one slot.
    window: u64,
    /// Consecutive calm rounds observed per box.
    calm: Vec<u64>,
    /// Effective-slot override per box; `None` = the plan's worst case.
    slots: Vec<Option<u32>>,
}

/// Live manager of the `u*`-compensation reservations.
///
/// ```
/// use vod_core::{Bandwidth, BoxSet, NodeBox, BoxId, StorageSlots};
/// use vod_sim::{RelayBroker, RelayEvent};
///
/// // One rich box (u = 3) relaying one poor box (u = 0.5) at u* = 1.2.
/// let boxes = BoxSet::new(vec![
///     NodeBox::new(BoxId(0), Bandwidth::from_streams(3.0), StorageSlots::from_slots(48)),
///     NodeBox::new(BoxId(1), Bandwidth::from_streams(0.5), StorageSlots::from_slots(8)),
/// ]);
/// let mut broker = RelayBroker::from_boxes(&boxes, Bandwidth::from_streams(1.2), 4).unwrap();
/// assert_eq!(broker.plan().relay(BoxId(1)), Some(BoxId(0)));
///
/// // A second rich box joins, then the original relay leaves: the poor
/// // box's reservation migrates, and the deltas record the move.
/// broker.apply(RelayEvent::BoxJoined(
///     NodeBox::new(BoxId(2), Bandwidth::from_streams(3.0), StorageSlots::from_slots(48)),
/// )).unwrap();
/// let deltas = broker.apply(RelayEvent::BoxLeft(BoxId(0))).unwrap();
/// assert_eq!(deltas.len(), 1);
/// assert_eq!(broker.plan().relay(BoxId(1)), Some(BoxId(2)));
/// ```
#[derive(Debug)]
pub struct RelayBroker {
    u_star: Bandwidth,
    c: u16,
    /// Box snapshot by id; `None` after the box left.
    boxes: Vec<Option<NodeBox>>,
    plan: CompensationPlan,
    /// Reserved forwarding slots per box (`⌊reserved·c⌋`), kept in sync
    /// with the plan; indexed by box id, sized to the box universe.
    reserved_slots: Vec<u32>,
    /// Cumulative utilization per box (meaningful where reservations are).
    util: Vec<RelayUtilization>,
    /// Deltas of the most recent churn event (kept even when the re-plan
    /// failed, so mirrors can replay the mutations that did happen).
    last_deltas: Vec<CompensationDelta>,
    rounds: u64,
    migrations: u64,
    /// Opt-in dynamic reservation sizing; `None` = static plan sizing.
    dynamic: Option<DynSizing>,
    /// Pooled witness machinery for [`RelayBroker::diagnose`].
    net: RelayNetwork,
    solver: Dinic,
    /// Pooled CSR bridge for the slice-of-vecs [`RelayBroker::diagnose`]
    /// entry point ([`RelayBroker::diagnose_view`] is the native path).
    csr_bridge: CandidateBuf,
}

impl RelayBroker {
    /// Builds a broker by compensating `boxes` at threshold `u_star`
    /// (stripes per video `c` converts reservations to forwarding slots).
    pub fn from_boxes(boxes: &BoxSet, u_star: Bandwidth, c: u16) -> Result<Self, CoreError> {
        let plan = vod_core::compensate(boxes, u_star)?;
        Ok(RelayBroker::from_plan(plan, boxes, c))
    }

    /// Wraps an existing (already validated) plan.
    pub fn from_plan(plan: CompensationPlan, boxes: &BoxSet, c: u16) -> Self {
        let mut broker = RelayBroker {
            u_star: plan.u_star(),
            c,
            boxes: boxes.iter().map(|b| Some(*b)).collect(),
            plan,
            reserved_slots: Vec::new(),
            util: (0..boxes.len())
                .map(|i| RelayUtilization::zero(BoxId(i as u32)))
                .collect(),
            last_deltas: Vec::new(),
            rounds: 0,
            migrations: 0,
            dynamic: None,
            net: RelayNetwork::new(),
            solver: Dinic::new(),
            csr_bridge: CandidateBuf::new(),
        };
        broker.sync_reserved_slots();
        broker
    }

    /// Clones the broker's live state (plan, box snapshots, reservation
    /// table, utilization counters) into an independent broker with fresh
    /// pooled witness machinery. Used by [`crate::Simulator::fork_with`] to
    /// branch a simulation: both brokers evolve independently from here.
    pub fn fork(&self) -> RelayBroker {
        RelayBroker {
            u_star: self.u_star,
            c: self.c,
            boxes: self.boxes.clone(),
            plan: self.plan.clone(),
            reserved_slots: self.reserved_slots.clone(),
            util: self.util.clone(),
            last_deltas: self.last_deltas.clone(),
            rounds: self.rounds,
            migrations: self.migrations,
            dynamic: self.dynamic.clone(),
            net: RelayNetwork::new(),
            solver: Dinic::new(),
            csr_bridge: CandidateBuf::new(),
        }
    }

    /// The managed compensation plan.
    pub fn plan(&self) -> &CompensationPlan {
        &self.plan
    }

    /// The live snapshot of box `b` (`None` when absent or departed).
    pub fn node(&self, b: BoxId) -> Option<&NodeBox> {
        self.boxes.get(b.index()).and_then(|n| n.as_ref())
    }

    /// Open (non-reserved) upload slots of box `b` under the *live* plan:
    /// `⌊(u_b − reserved(b))·c⌋`, or 0 when the box is absent. The churned
    /// twin of [`vod_core::VideoSystem::upload_slots`], which reads the
    /// static plan.
    ///
    /// When dynamic sizing holds an override for `b`, the computation
    /// switches to slot arithmetic — `⌊u_b·c⌋ − effective_slots` — so the
    /// slots a shrink released become open upload capacity.
    pub fn open_upload_slots(&self, b: BoxId) -> u32 {
        let Some(node) = self.node(b) else {
            return 0;
        };
        if let Some(dynamic) = &self.dynamic {
            if let Some(&Some(effective)) = dynamic.slots.get(b.index()) {
                return node.upload.stripe_slots(self.c).saturating_sub(effective);
            }
        }
        node.upload
            .saturating_sub(self.plan.reserved(b))
            .stripe_slots(self.c)
    }

    /// Opts into dynamic reservation sizing: after `window` consecutive
    /// calm (non-saturated) rounds a relay's effective reservation shrinks
    /// by one forwarding slot (never below one); a saturated round grows
    /// it back toward the plan's worst case. The plan itself is untouched
    /// — overrides only narrow it — so [`RelayBroker::validate`] keeps
    /// checking Theorem 2's bound. The engine re-reads
    /// [`RelayBroker::open_upload_slots`] each round while this is
    /// enabled, turning released slots into serving capacity live.
    pub fn enable_dynamic_reservations(&mut self, window: u64) {
        assert!(window > 0, "calm window must be positive");
        self.dynamic = Some(DynSizing {
            window,
            calm: vec![0; self.boxes.len()],
            slots: vec![None; self.boxes.len()],
        });
    }

    /// Whether dynamic reservation sizing is enabled.
    pub fn dynamic_reservations_enabled(&self) -> bool {
        self.dynamic.is_some()
    }

    /// The threshold `u*` the plan is built for.
    pub fn u_star(&self) -> Bandwidth {
        self.u_star
    }

    /// Reserved forwarding slots per box, indexed by box id — the
    /// `reserved` half of the [`RelayView`] handed to relay-aware
    /// schedulers.
    pub fn reserved_slots(&self) -> &[u32] {
        &self.reserved_slots
    }

    /// Reservation migrations performed by churn re-planning so far.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Rounds folded into the utilization counters so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Re-derives the per-box slot table from the plan, then re-applies
    /// any dynamic-sizing overrides clamped to the fresh plan values —
    /// churn re-planning can shrink a relay's worst case below a stale
    /// override, and a box that lost all reservations drops its override
    /// (and calm counter) entirely.
    fn sync_reserved_slots(&mut self) {
        self.reserved_slots.clear();
        self.reserved_slots.resize(self.boxes.len(), 0);
        for (b, slot) in self.reserved_slots.iter_mut().enumerate() {
            *slot = self.plan.reserved(BoxId(b as u32)).stripe_slots(self.c);
        }
        if let Some(dynamic) = &mut self.dynamic {
            dynamic.calm.resize(self.boxes.len(), 0);
            dynamic.slots.resize(self.boxes.len(), None);
            for (b, slot) in self.reserved_slots.iter_mut().enumerate() {
                match dynamic.slots[b] {
                    Some(over) if *slot > 0 => {
                        let effective = over.min(*slot);
                        dynamic.slots[b] = Some(effective);
                        *slot = effective;
                    }
                    _ => {
                        dynamic.slots[b] = None;
                        dynamic.calm[b] = 0;
                    }
                }
            }
        }
        for (b, util) in self.util.iter_mut().enumerate() {
            util.reserved_slots = self.reserved_slots[b];
            util.assigned_poor = self.plan.assigned_to(BoxId(b as u32)).len();
        }
    }

    /// Dynamic-sizing retune step, run once per observed round: saturated
    /// relays grow one slot back toward the plan's worst case (reaching it
    /// drops the override), relays calm for `window` consecutive rounds
    /// shrink one slot (never below one). Returns whether any effective
    /// size changed.
    fn retune_reservations(&mut self, loads: &[u32]) -> bool {
        let Some(dynamic) = &mut self.dynamic else {
            return false;
        };
        let mut changed = false;
        for b in 0..self.reserved_slots.len() {
            let plan_slots = self.plan.reserved(BoxId(b as u32)).stripe_slots(self.c);
            if plan_slots == 0 {
                continue;
            }
            let effective = self.reserved_slots[b];
            let load = loads.get(b).copied().unwrap_or(0);
            if load >= effective {
                dynamic.calm[b] = 0;
                if effective < plan_slots {
                    dynamic.slots[b] = if effective + 1 == plan_slots {
                        None
                    } else {
                        Some(effective + 1)
                    };
                    changed = true;
                }
            } else {
                dynamic.calm[b] += 1;
                if dynamic.calm[b] >= dynamic.window && effective > 1 {
                    dynamic.slots[b] = Some(effective - 1);
                    dynamic.calm[b] = 0;
                    changed = true;
                }
            }
        }
        changed
    }

    /// Residual relay headroom of box `a`: `u_a − u* − reserved(a)`, or
    /// `None` when `a` is absent or not rich.
    fn headroom(&self, a: BoxId) -> Option<Bandwidth> {
        let node = self.boxes.get(a.index()).copied().flatten()?;
        if node.is_poor(self.u_star) {
            return None;
        }
        Some(
            node.upload
                .saturating_sub(self.u_star + self.plan.reserved(a)),
        )
    }

    /// The rich box with the largest residual headroom that can hold
    /// `need` (lowest id on ties), excluding `exclude`.
    fn best_relay(&self, need: Bandwidth, exclude: Option<BoxId>) -> Option<BoxId> {
        let mut best: Option<(Bandwidth, BoxId)> = None;
        for idx in 0..self.boxes.len() {
            let a = BoxId(idx as u32);
            if Some(a) == exclude {
                continue;
            }
            let Some(headroom) = self.headroom(a) else {
                continue;
            };
            if headroom >= need && best.is_none_or(|(top, _)| headroom > top) {
                best = Some((headroom, a));
            }
        }
        best.map(|(_, a)| a)
    }

    /// Assigns (or migrates) `poor` to the best-fit relay, recording the
    /// delta. Fails with a named error when no relay has the headroom.
    fn place(
        &mut self,
        poor: BoxId,
        exclude: Option<BoxId>,
        deltas: &mut Vec<CompensationDelta>,
    ) -> Result<(), CoreError> {
        let upload = self.boxes[poor.index()]
            .expect("poor box is present")
            .upload;
        let need = relay_reservation(self.u_star, upload);
        match self.best_relay(need, exclude) {
            Some(relay) => {
                let delta = self.plan.assign(poor, relay, need);
                if delta.from.is_some() {
                    self.migrations += 1;
                }
                deltas.push(delta);
                Ok(())
            }
            None => Err(CoreError::PoorUncovered { poor, need }),
        }
    }

    /// Applies one churn event, migrating reservations as needed. Returns
    /// the deltas performed (replayable via
    /// [`CompensationPlan::apply_delta`] on a mirror plan), or a named
    /// error when the population is no longer `u*`-compensable — the boxes
    /// the broker could not place stay uncovered in the plan, exactly what
    /// [`CoreError::PoorUncovered`] reports.
    ///
    /// A failed re-plan still mutates the plan (the departed relay's
    /// reservations must be released either way); the deltas performed
    /// before and around the failure remain available through
    /// [`RelayBroker::last_deltas`], so mirror plans can replay them even
    /// on the error path, and the slot table is re-synced regardless of
    /// the outcome.
    ///
    /// Deterministic: affected poor boxes are re-placed in descending
    /// reservation need (lowest id on ties), each onto the rich box with
    /// the largest residual headroom (lowest id on ties).
    pub fn apply(&mut self, event: RelayEvent) -> Result<Vec<CompensationDelta>, CoreError> {
        self.last_deltas.clear();
        let mut deltas = std::mem::take(&mut self.last_deltas);
        let result = self.apply_event(event, &mut deltas);
        self.last_deltas = deltas;
        self.sync_reserved_slots();
        result.map(|()| self.last_deltas.clone())
    }

    /// Deltas performed by the most recent [`RelayBroker::apply`] call —
    /// including those of a failed re-plan, whose plan mutations already
    /// happened and must still be replayed onto any mirror.
    pub fn last_deltas(&self) -> &[CompensationDelta] {
        &self.last_deltas
    }

    /// Event dispatch behind [`RelayBroker::apply`]: best-effort — every
    /// affected reservation is re-planned even after a placement failure,
    /// and the first named error is reported.
    fn apply_event(
        &mut self,
        event: RelayEvent,
        deltas: &mut Vec<CompensationDelta>,
    ) -> Result<(), CoreError> {
        match event {
            RelayEvent::BoxJoined(node) => {
                let idx = node.id.index();
                if idx >= self.boxes.len() {
                    self.boxes.resize(idx + 1, None);
                    while self.util.len() <= idx {
                        let b = BoxId(self.util.len() as u32);
                        self.util.push(RelayUtilization::zero(b));
                    }
                }
                assert!(self.boxes[idx].is_none(), "box {} joined twice", node.id);
                self.boxes[idx] = Some(node);
                if node.is_poor(self.u_star) {
                    self.place(node.id, None, deltas)?;
                }
            }
            RelayEvent::BoxLeft(id) => {
                let node = self.boxes[id.index()].take().unwrap_or_else(|| {
                    panic!("box {id} left but was not present");
                });
                if node.is_poor(self.u_star) {
                    if let Some(delta) = self.plan.unassign(id) {
                        deltas.push(delta);
                    }
                } else {
                    self.evacuate(id, deltas)?;
                }
            }
            RelayEvent::UploadChanged(id, upload) => {
                let node = self.boxes[id.index()]
                    .as_mut()
                    .unwrap_or_else(|| panic!("box {id} changed upload but was not present"));
                let was_poor = node.is_poor(self.u_star);
                node.upload = upload;
                let now_poor = upload < self.u_star;
                match (was_poor, now_poor) {
                    (true, false) => {
                        // Promoted to rich: release its reservation; it may
                        // now host others (future placements will find it).
                        if let Some(delta) = self.plan.unassign(id) {
                            deltas.push(delta);
                        }
                    }
                    (false, true) => {
                        // Demoted to poor: its hosted reservations must
                        // migrate, and it needs a relay itself — both
                        // attempted even when the other fails.
                        let evacuated = self.evacuate(id, deltas);
                        let placed = self.place(id, Some(id), deltas);
                        evacuated.and(placed)?;
                    }
                    (true, true) => {
                        // Still poor, but the reservation size changed:
                        // keep the current relay when it still fits,
                        // migrate otherwise.
                        let need = relay_reservation(self.u_star, upload);
                        let current = self.plan.relay(id);
                        let old_need = self.plan.reservation_of(id).unwrap_or(Bandwidth::ZERO);
                        if let Some(relay) = current {
                            let fits = self.headroom(relay).is_some_and(|h| h + old_need >= need);
                            if fits {
                                deltas.push(self.plan.assign(id, relay, need));
                            } else {
                                deltas.push(self.plan.unassign(id).expect("assigned"));
                                self.place(id, None, deltas)?;
                            }
                        } else {
                            self.place(id, None, deltas)?;
                        }
                    }
                    (false, false) => {
                        // Still rich, but shrunk uploads may violate the
                        // bound: shed reservations until it holds again.
                        self.shed_overload(id, deltas)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Migrates every reservation hosted on `relay` elsewhere (descending
    /// need, lowest poor id on ties).
    fn evacuate(
        &mut self,
        relay: BoxId,
        deltas: &mut Vec<CompensationDelta>,
    ) -> Result<(), CoreError> {
        let mut hosted: Vec<(Bandwidth, BoxId)> = self
            .plan
            .assigned_to(relay)
            .into_iter()
            .map(|p| (self.plan.reservation_of(p).unwrap_or(Bandwidth::ZERO), p))
            .collect();
        hosted.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut result = Ok(());
        for (_, poor) in hosted {
            // `place` migrates in one step (its delta records from → to);
            // when no relay fits, the reservation must still be released —
            // the host is gone either way — and the first uncovered box is
            // reported.
            if let Err(err) = self.place(poor, Some(relay), deltas) {
                deltas.push(self.plan.unassign(poor).expect("hosted on the relay"));
                if result.is_ok() {
                    result = Err(err);
                }
            }
        }
        result
    }

    /// Sheds reservations off `relay` (descending need, lowest poor id on
    /// ties) until `u_a ≥ u* + reserved(a)` holds again.
    fn shed_overload(
        &mut self,
        relay: BoxId,
        deltas: &mut Vec<CompensationDelta>,
    ) -> Result<(), CoreError> {
        let upload = self.boxes[relay.index()].expect("relay is present").upload;
        let mut hosted: Vec<(Bandwidth, BoxId)> = self
            .plan
            .assigned_to(relay)
            .into_iter()
            .map(|p| (self.plan.reservation_of(p).unwrap_or(Bandwidth::ZERO), p))
            .collect();
        hosted.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut result = Ok(());
        for (_, poor) in hosted {
            if upload >= self.u_star + self.plan.reserved(relay) {
                break;
            }
            if let Err(err) = self.place(poor, Some(relay), deltas) {
                deltas.push(self.plan.unassign(poor).expect("hosted on the relay"));
                if result.is_ok() {
                    result = Err(err);
                }
            }
        }
        result
    }

    /// Validates the upload-compensation bound over the current (churned)
    /// population, with the named errors of [`CompensationPlan::validate`]
    /// — the same shared checks ([`CompensationPlan::validate_over`]), so
    /// the static and churned validation paths cannot drift. Departed
    /// boxes are simply absent from the population (a departed relay still
    /// carrying an assignment reports as [`CoreError::RelayNotRich`]).
    pub fn validate(&self) -> Result<(), CoreError> {
        self.plan
            .validate_over(self.boxes.iter().flatten().copied())
    }

    /// Folds one round's forwarding demand into the utilization counters
    /// and returns the round's stats. `loads[b]` is the number of active
    /// relayed requests forwarding through box `b` this round (the engine
    /// counts them off the request attributions).
    ///
    /// Sharded-scheduling lending observability
    /// ([`RelayRoundStats::contested_relays`], [`RelayRoundStats::lent`])
    /// is merged in by the caller from the scheduler's `relay_stats` hook.
    pub fn note_round(&mut self, loads: &[u32]) -> RelayRoundStats {
        self.rounds += 1;
        let mut stats = RelayRoundStats::default();
        for (b, util) in self.util.iter_mut().enumerate() {
            let reserved = self.reserved_slots.get(b).copied().unwrap_or(0);
            let load = loads.get(b).copied().unwrap_or(0);
            if reserved > 0 {
                stats.relays += 1;
                stats.reserved_slots += reserved as usize;
            }
            if load == 0 {
                continue;
            }
            let forwarded = load.min(reserved);
            stats.relayed_requests += load as usize;
            stats.forwarded += forwarded as usize;
            stats.starved += (load - forwarded) as usize;
            if load >= reserved && reserved > 0 {
                stats.saturated_relays += 1;
                util.saturated_rounds += 1;
            }
            if load > reserved {
                util.oversubscribed_rounds += 1;
            }
            util.forwards += forwarded as u64;
            util.peak_load = util.peak_load.max(load);
        }
        if self.retune_reservations(loads) {
            self.sync_reserved_slots();
        }
        stats
    }

    /// Cumulative utilization of every box that currently holds (or at
    /// some observed round held) forwarding work, ascending box id.
    pub fn utilization(&self) -> Vec<RelayUtilization> {
        self.util
            .iter()
            .copied()
            .filter(|u| u.reserved_slots > 0 || u.peak_load > 0 || u.assigned_poor > 0)
            .collect()
    }

    /// Builds and solves the two-hop [`RelayNetwork`] over one round's
    /// instance and extracts the witness, or `None` when the round is
    /// fully served on both legs. Pools the network and solver across
    /// calls (failure-path diagnostics, not a hot path).
    pub fn diagnose(
        &mut self,
        capacities: &[u32],
        candidates: &[Vec<BoxId>],
        relay_of: &[Option<BoxId>],
    ) -> Option<RelayObstruction> {
        let mut bridge = std::mem::take(&mut self.csr_bridge);
        bridge.fill_from_slices(candidates);
        let witness = self.diagnose_view(capacities, bridge.view(), relay_of);
        self.csr_bridge = bridge;
        witness
    }

    /// View-based core of [`RelayBroker::diagnose`]: identical semantics
    /// over a borrowed flat [`vod_flow::CandidateView`] (the engine's
    /// native representation of a round's candidate structure).
    pub fn diagnose_view(
        &mut self,
        capacities: &[u32],
        candidates: CandidateView<'_>,
        relay_of: &[Option<BoxId>],
    ) -> Option<RelayObstruction> {
        self.net.build_view(
            capacities,
            candidates,
            &RelayView {
                relay_of,
                reserved: &self.reserved_slots,
            },
        );
        let matching = self.net.solve_in(&mut self.solver);
        self.net.obstruction(&matching)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vod_core::StorageSlots;

    fn node(id: u32, upload: f64) -> NodeBox {
        NodeBox::new(
            BoxId(id),
            Bandwidth::from_streams(upload),
            StorageSlots::from_slots(8),
        )
    }

    fn u_star() -> Bandwidth {
        Bandwidth::from_streams(1.2)
    }

    /// 2 rich relays (u = 6, headroom 4.8) and 2 poor boxes (u = 0.5,
    /// need 1.2 each).
    fn tests_broker() -> RelayBroker {
        let boxes = BoxSet::new(vec![node(0, 6.0), node(1, 6.0), node(2, 0.5), node(3, 0.5)]);
        RelayBroker::from_boxes(&boxes, u_star(), 4).unwrap()
    }

    #[test]
    fn builds_and_exposes_slot_table() {
        let broker = tests_broker();
        broker.validate().unwrap();
        // Reservation 1.2 streams × c = 4 → 4 forwarding slots per relay.
        let reserved = broker.reserved_slots();
        assert_eq!(reserved.len(), 4);
        assert_eq!(reserved.iter().sum::<u32>(), 2 * 4);
        assert_eq!(reserved[2], 0);
        assert_eq!(reserved[3], 0);
    }

    #[test]
    fn join_of_poor_box_places_on_largest_headroom() {
        let mut broker = tests_broker();
        let deltas = broker.apply(RelayEvent::BoxJoined(node(4, 0.5))).unwrap();
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].poor, BoxId(4));
        assert_eq!(deltas[0].from, None);
        // Both relays carry one reservation (headroom tie 0.6) — the tie
        // breaks to the lowest id.
        let relay = deltas[0].to.unwrap();
        broker.validate().unwrap();
        // Deterministic: replaying the same history gives the same relay.
        let mut replay = tests_broker();
        let deltas2 = replay.apply(RelayEvent::BoxJoined(node(4, 0.5))).unwrap();
        assert_eq!(deltas2[0].to, Some(relay));
    }

    #[test]
    fn relay_departure_migrates_reservations() {
        let mut broker = tests_broker();
        let hosted = broker.plan().assigned_to(BoxId(0));
        let deltas = broker.apply(RelayEvent::BoxLeft(BoxId(0))).unwrap();
        broker.validate().unwrap();
        assert_eq!(deltas.len(), hosted.len(), "one migration delta each");
        for (&poor, delta) in hosted.iter().zip(&deltas) {
            assert_eq!(delta.from, Some(BoxId(0)));
            assert_eq!(delta.to, Some(BoxId(1)));
            assert_eq!(broker.plan().relay(poor), Some(BoxId(1)));
        }
        assert_eq!(broker.migrations(), hosted.len() as u64);
    }

    #[test]
    fn upload_demotion_evacuates_and_replans() {
        let mut broker = tests_broker();
        // Relay 0 drops below u*: its reservations move to relay 1 and it
        // becomes poor itself.
        let deltas = broker
            .apply(RelayEvent::UploadChanged(
                BoxId(0),
                Bandwidth::from_streams(0.5),
            ))
            .unwrap();
        broker.validate().unwrap();
        assert!(deltas
            .iter()
            .any(|d| d.poor == BoxId(0) && d.to == Some(BoxId(1))));
        assert_eq!(broker.plan().relay(BoxId(0)), Some(BoxId(1)));
        assert_eq!(broker.reserved_slots()[0], 0);
    }

    #[test]
    fn promotion_releases_the_reservation() {
        let mut broker = tests_broker();
        let relay = broker.plan().relay(BoxId(2)).unwrap();
        let before = broker.plan().reserved(relay);
        let deltas = broker
            .apply(RelayEvent::UploadChanged(
                BoxId(2),
                Bandwidth::from_streams(2.0),
            ))
            .unwrap();
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].to, None);
        assert!(broker.plan().reserved(relay) < before);
        broker.validate().unwrap();
    }

    #[test]
    fn infeasible_churn_yields_named_error() {
        let mut broker = tests_broker();
        broker.apply(RelayEvent::BoxLeft(BoxId(0))).unwrap();
        // The last relay leaves: both poor boxes are uncovered, and the
        // error names the first of them and its needed reservation.
        let err = broker.apply(RelayEvent::BoxLeft(BoxId(1))).unwrap_err();
        assert_eq!(
            err,
            CoreError::PoorUncovered {
                poor: BoxId(2),
                need: Bandwidth::from_streams(1.2),
            }
        );
        assert!(broker.validate().is_err());
    }

    #[test]
    fn failed_replan_keeps_broker_and_mirror_consistent() {
        let mut broker = tests_broker();
        let mut mirror = broker.plan().clone();
        for delta in broker.apply(RelayEvent::BoxLeft(BoxId(0))).unwrap() {
            mirror.apply_delta(&delta);
        }
        // The last relay leaves: the re-plan fails, but the released
        // reservations (the mutations that did happen) are still exposed
        // through last_deltas, the slot table is re-synced (no forwarding
        // slots credited to the departed box), and diagnostics stay
        // usable.
        assert!(broker.apply(RelayEvent::BoxLeft(BoxId(1))).is_err());
        for delta in broker.last_deltas() {
            mirror.apply_delta(delta);
        }
        assert_eq!(&mirror, broker.plan(), "mirror diverged on the error path");
        assert_eq!(broker.reserved_slots()[1], 0, "departed relay kept slots");
        assert!(broker
            .diagnose(&[1, 1, 1, 1], &[vec![BoxId(2)]], &[None])
            .is_none());

        // A poor box joining an uncompensable system grows the slot table
        // with the universe even though placement fails.
        assert!(broker.apply(RelayEvent::BoxJoined(node(4, 0.5))).is_err());
        assert_eq!(broker.reserved_slots().len(), 5);
        assert!(broker
            .diagnose(&[1; 5], &[vec![BoxId(2)]], &[None])
            .is_none());
    }

    #[test]
    fn round_accounting_tracks_saturation_and_starvation() {
        let mut broker = tests_broker();
        let relay = broker.plan().relay(BoxId(2)).unwrap();
        let mut loads = vec![0u32; 4];
        loads[relay.index()] = 6; // reservation is 4 slots
        let stats = broker.note_round(&loads);
        assert_eq!(stats.relayed_requests, 6);
        assert_eq!(stats.forwarded, 4);
        assert_eq!(stats.starved, 2);
        assert_eq!(stats.saturated_relays, 1);
        let util = broker.utilization();
        let relay_util = util.iter().find(|u| u.relay == relay).unwrap();
        assert_eq!(relay_util.peak_load, 6);
        assert_eq!(relay_util.forwards, 4);
        assert_eq!(relay_util.saturated_rounds, 1);
        assert_eq!(relay_util.oversubscribed_rounds, 1);
        // A calm round saturates nothing further.
        loads[relay.index()] = 1;
        let stats = broker.note_round(&loads);
        assert_eq!(stats.starved, 0);
        assert_eq!(stats.saturated_relays, 0);
    }

    #[test]
    fn diagnose_names_starved_reservations() {
        let mut broker = tests_broker();
        let relay = broker.plan().relay(BoxId(2)).unwrap();
        // 5 relayed requests through one relay with 4 reserved slots; the
        // suppliers themselves are plentiful.
        let caps = vec![8u32; 4];
        let supplier = BoxId(if relay.0 == 0 { 1 } else { 0 });
        let candidates = vec![vec![supplier]; 5];
        let relay_of = vec![Some(relay); 5];
        let witness = broker.diagnose(&caps, &candidates, &relay_of).unwrap();
        assert!(witness.requests.is_empty());
        assert_eq!(witness.starved.len(), 1);
        assert_eq!(witness.starved[0].relay, relay);
        assert_eq!(witness.starved[0].deficiency(), 1);
        // A covered round diagnoses clean.
        let relay_of = vec![Some(relay); 4];
        let candidates = vec![vec![supplier]; 4];
        assert!(broker.diagnose(&caps, &candidates, &relay_of).is_none());
    }

    #[test]
    fn dynamic_sizing_shrinks_on_calm_and_grows_on_saturation() {
        let mut broker = tests_broker();
        broker.enable_dynamic_reservations(2);
        assert!(broker.dynamic_reservations_enabled());
        let relay = broker.plan().relay(BoxId(2)).unwrap();
        assert_eq!(broker.reserved_slots()[relay.index()], 4);
        // Enabling alone changes nothing: the plan path still answers.
        let static_open = broker.open_upload_slots(relay);

        // Two calm rounds shrink the reservation by one slot; the freed
        // slot shows up as open upload capacity (slot arithmetic: the
        // relay's ⌊6.0·4⌋ = 24 total minus 3 effective).
        broker.note_round(&[0; 4]);
        assert_eq!(broker.reserved_slots()[relay.index()], 4, "mid-window");
        broker.note_round(&[0; 4]);
        assert_eq!(broker.reserved_slots()[relay.index()], 3);
        assert!(broker.open_upload_slots(relay) > static_open);
        assert_eq!(broker.open_upload_slots(relay), 24 - 3);

        // Shrinks floor at one slot, no matter how long the calm.
        for _ in 0..20 {
            broker.note_round(&[0; 4]);
        }
        assert_eq!(broker.reserved_slots()[relay.index()], 1);

        // Saturated rounds grow it back toward the plan's worst case, one
        // slot per round, and never beyond it.
        let mut loads = vec![0u32; 4];
        loads[relay.index()] = 4;
        for expect in [2, 3, 4, 4] {
            broker.note_round(&loads);
            assert_eq!(broker.reserved_slots()[relay.index()], expect);
        }
        // Back at the worst case the override is gone: the plan path
        // (fractional arithmetic) answers again.
        assert_eq!(broker.open_upload_slots(relay), static_open);
        broker.validate().unwrap();
    }

    #[test]
    fn dynamic_overrides_clamp_after_churn() {
        let mut broker = tests_broker();
        broker.enable_dynamic_reservations(1);
        let relay = broker.plan().relay(BoxId(2)).unwrap();
        // One calm round: both relays shrink to 3 effective slots.
        broker.note_round(&[0; 4]);
        assert_eq!(broker.reserved_slots()[relay.index()], 3);

        // The hosted poor box is promoted to rich: the relay's plan-level
        // reservation drops to zero, so the stale override must drop too.
        broker
            .apply(RelayEvent::UploadChanged(
                BoxId(2),
                Bandwidth::from_streams(2.0),
            ))
            .unwrap();
        assert_eq!(broker.plan().reserved(relay), Bandwidth::ZERO);
        assert_eq!(broker.reserved_slots()[relay.index()], 0);
        // With no override left, open slots follow the plan again.
        assert_eq!(
            broker.open_upload_slots(relay),
            Bandwidth::from_streams(6.0).stripe_slots(4)
        );
        broker.validate().unwrap();

        // A join grows the dynamic tables alongside the universe.
        broker.apply(RelayEvent::BoxJoined(node(4, 0.5))).unwrap();
        assert_eq!(broker.reserved_slots().len(), 5);
        broker.note_round(&[0; 5]);
        broker.validate().unwrap();
    }

    #[test]
    fn stats_roundtrip_json() {
        let stats = RelayRoundStats {
            relays: 2,
            relayed_requests: 9,
            reserved_slots: 8,
            forwarded: 7,
            starved: 2,
            saturated_relays: 1,
            contested_relays: 1,
            lent: 3,
        };
        assert_eq!(RelayRoundStats::from_json(&stats.to_json()).unwrap(), stats);
        let util = RelayUtilization {
            relay: BoxId(3),
            reserved_slots: 4,
            assigned_poor: 2,
            forwards: 100,
            peak_load: 6,
            saturated_rounds: 5,
            oversubscribed_rounds: 1,
        };
        assert_eq!(RelayUtilization::from_json(&util.to_json()).unwrap(), util);
    }
}
