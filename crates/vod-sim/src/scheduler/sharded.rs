//! Per-swarm sharded scheduling with parallel shard solves.
//!
//! Requests for different videos only interact through the shared per-box
//! upload budgets, so a round's Lemma-1 instance is block-structured: one
//! block per swarm, coupled by the capacities. The [`ShardedMatcher`]
//! exploits this in four deterministic stages:
//!
//! 1. **Partition** — requests are grouped by the video of their stripe
//!    ([`vod_flow::ShardedArena::partition`], pooled flat storage);
//! 2. **Budget split** — each box's `⌊u_b·c⌋` upload slots are divided
//!    across the swarms demanding it. The default [`SplitPolicy::WaterFill`]
//!    grants slots first to the swarms with the largest *observed deficit*
//!    (a per-shard decayed count of requests the split starved in recent
//!    rounds), then splits the remainder proportionally to demand
//!    ([`vod_flow::ShardedArena::split_budgets_waterfill`]); with no deficit
//!    history — or under [`SplitPolicy::DemandProportional`] — the split is
//!    purely demand-proportional. Either way the per-shard subproblems are
//!    capacity-disjoint;
//! 3. **Parallel shard solves** — each shard is solved by its own
//!    *persistent* [`IncrementalMatcher`] (warm-started: a swarm's requests
//!    mostly carry over between rounds) on a compact shard-local box
//!    universe. Shards are pulled from a shared work queue by
//!    `std::thread::scope` workers; since every shard's state is owned and
//!    its solve is independent, the result is identical for any thread
//!    count, including 1;
//! 4. **Reconciliation** — a single-threaded repair pass serves every
//!    request the budget split starved, rerouting shard flow where
//!    necessary, so the final matching is globally maximum and sharding
//!    never changes a round's feasibility. The default
//!    [`ReconcilePolicy::Persistent`] keeps the global Lemma-1 network (and
//!    its flow) alive across rounds inside the sharded arena and patches
//!    per-round deltas ([`vod_flow::ShardedArena::reconcile_keyed`], O(Δ));
//!    [`ReconcilePolicy::Rebuild`] is the PR 2 baseline that rebuilds the
//!    network on every reconciled round (O(E) serial). Rounds the shard
//!    phase fully serves skip reconciliation outright.
//!
//! The scheduler is deterministic: for a fixed round sequence the schedule
//! is a pure function of the inputs and the configured policies,
//! independent of the thread count and of OS scheduling.

use crate::scheduler::incremental::KeyHasher;
use crate::scheduler::{IncrementalMatcher, RequestKey, Scheduler};
use std::collections::HashMap;
use std::hash::BuildHasherDefault;
use std::sync::Mutex;
use std::time::Instant;
use vod_core::json::{obj, Json, JsonCodec, JsonError};
use vod_core::BoxId;
use vod_flow::{
    CandidateBuf, CandidateView, ReconcileStats, RelayLendStats, RelayView, ShardedArena,
    SplitStats,
};
use vod_obs::{Stage, TraceHandle};

/// How each box's upload budget is divided across the swarms demanding it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SplitPolicy {
    /// Purely proportional to per-shard demand (the PR 2 baseline).
    DemandProportional,
    /// Water-filling on decayed per-shard deficits, demand-proportional
    /// remainder (default: starved swarms are topped up first, cutting the
    /// fraction of rounds that need reconciliation at all).
    #[default]
    WaterFill,
}

/// How rounds the budget split starved are repaired to a global maximum.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReconcilePolicy {
    /// Rebuild the global network from scratch on every reconciled round
    /// (the PR 2 baseline; O(E) serial).
    Rebuild,
    /// Keep a persistent global network alive across rounds and patch
    /// per-round deltas, warm-starting the repair from the previous round's
    /// residual state (default; O(Δ) per reconciled round).
    #[default]
    Persistent,
}

/// Per-round observability of the sharded scheduler.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardRoundStats {
    /// Shards (distinct videos with active requests) this round.
    pub shards: usize,
    /// Requests in the largest shard.
    pub largest_shard: usize,
    /// Requests served before the reconciliation augmentation ran: shard
    /// assignments kept plus flow carried by the persistent arena (equals
    /// the full request count on rounds that skip reconciliation).
    pub preloaded: usize,
    /// Subset of `preloaded` carried over by the persistent reconciliation
    /// arena from earlier rounds (0 under [`ReconcilePolicy::Rebuild`]).
    pub carried: usize,
    /// Shard-phase assignments reconciliation could not use (always 0 with
    /// a correct budget split and an empty carried flow; tracked
    /// defensively).
    pub dropped: usize,
    /// Requests the budget split starved that reconciliation repaired.
    pub repaired: usize,
    /// Requests unmatched even after reconciliation (the round is infeasible
    /// iff non-zero).
    pub unmatched: usize,
    /// Requests the shard phase left unmatched before reconciliation — the
    /// round's raw budget-split deficit.
    pub shard_unserved: usize,
    /// Sum of the decayed per-shard deficit scores that drove this round's
    /// budget split.
    pub deficit_total: u64,
    /// Largest decayed per-shard deficit score this round.
    pub deficit_max: u64,
    /// Water-filling grant steps performed by this round's budget split
    /// (0 under [`SplitPolicy::DemandProportional`] or with no backlog).
    pub split_iterations: usize,
    /// Whether reconciliation ran (false when the shard phase served every
    /// request).
    pub reconciled: bool,
    /// Whether reconciliation rebuilt the global network from scratch
    /// (always true for reconciled rounds under
    /// [`ReconcilePolicy::Rebuild`]; first call / compaction only under
    /// [`ReconcilePolicy::Persistent`]).
    pub rebuilt: bool,
}

impl JsonCodec for ShardRoundStats {
    fn to_json(&self) -> Json {
        obj(vec![
            ("shards", self.shards.to_json()),
            ("largest_shard", self.largest_shard.to_json()),
            ("preloaded", self.preloaded.to_json()),
            ("carried", self.carried.to_json()),
            ("dropped", self.dropped.to_json()),
            ("repaired", self.repaired.to_json()),
            ("unmatched", self.unmatched.to_json()),
            ("shard_unserved", self.shard_unserved.to_json()),
            ("deficit_total", self.deficit_total.to_json()),
            ("deficit_max", self.deficit_max.to_json()),
            ("split_iterations", self.split_iterations.to_json()),
            ("reconciled", self.reconciled.to_json()),
            ("rebuilt", self.rebuilt.to_json()),
        ])
    }
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(ShardRoundStats {
            shards: usize::from_json(json.field("shards")?)?,
            largest_shard: usize::from_json(json.field("largest_shard")?)?,
            preloaded: usize::from_json(json.field("preloaded")?)?,
            carried: usize::from_json(json.field("carried")?)?,
            dropped: usize::from_json(json.field("dropped")?)?,
            repaired: usize::from_json(json.field("repaired")?)?,
            unmatched: usize::from_json(json.field("unmatched")?)?,
            shard_unserved: usize::from_json(json.field("shard_unserved")?)?,
            deficit_total: u64::from_json(json.field("deficit_total")?)?,
            deficit_max: u64::from_json(json.field("deficit_max")?)?,
            split_iterations: usize::from_json(json.field("split_iterations")?)?,
            reconciled: bool::from_json(json.field("reconciled")?)?,
            rebuilt: bool::from_json(json.field("rebuilt")?)?,
        })
    }
}

/// Persistent state of one shard (one swarm), pooled across rounds.
///
/// Boxes are remapped to a compact shard-local universe so the shard's
/// incremental matcher does not carry source edges for the whole system.
/// Local ids are allocated on first appearance and never reused, which keeps
/// the mapping — and therefore the shard's warm arena — stable across
/// rounds.
struct ShardState {
    matcher: IncrementalMatcher,
    /// Local box id → global box id.
    global_of: Vec<BoxId>,
    /// Global box id → local box id.
    local_of: HashMap<u32, u32, BuildHasherDefault<KeyHasher>>,
    /// Shard-local capacities (budget split), padded to a power of two so
    /// the matcher's length-change rebuild only triggers on universe
    /// doublings, not on every new box a growing swarm touches.
    caps: Vec<u32>,
    keys: Vec<RequestKey>,
    /// Shard-local candidate rows (remapped to the local box universe), as
    /// one pooled flat CSR buffer — the shard copy is a contiguous append,
    /// not one heap row per request.
    csr: CandidateBuf,
    /// Per-row change stamps carried over from the global view (the local
    /// remap is stable, so an unchanged global row is an unchanged local
    /// row).
    stamps: Vec<u64>,
    out: Vec<Option<BoxId>>,
    /// Round stamp of the last round that scheduled this shard.
    last_used: u64,
    /// Decayed unserved backlog aggregate: halves every scheduled round,
    /// plus the requests the budget split starved this round
    /// (observability; the split itself is driven by `box_deficit`).
    deficit: u64,
    /// Decayed per-box starvation history, indexed by shard-local box id
    /// (stable across rounds): halves every scheduled round, plus one per
    /// starved request per candidate box — recording *where* the split
    /// came up short. Drives the targeted water-filling split of the
    /// *next* round.
    box_deficit: Vec<u64>,
}

impl ShardState {
    fn new() -> Self {
        ShardState {
            matcher: IncrementalMatcher::default(),
            global_of: Vec::new(),
            local_of: HashMap::default(),
            caps: Vec::new(),
            keys: Vec::new(),
            csr: CandidateBuf::new(),
            stamps: Vec::new(),
            out: Vec::new(),
            last_used: 0,
            deficit: 0,
            box_deficit: Vec::new(),
        }
    }
}

/// One round's work item: the shard ordinal plus its owned state, moved
/// through the parallel phase and returned to the pool afterwards.
struct ShardWork {
    shard_idx: usize,
    state: ShardState,
}

/// Per-swarm sharded scheduler with parallel shard solves.
///
/// Produces the same matching sizes (and feasibility verdicts) as a global
/// maximum-flow solve, with identical schedules for any `threads` value.
///
/// ```
/// use vod_core::{BoxId, StripeId, VideoId};
/// use vod_sim::{RequestKey, Scheduler, ShardedMatcher};
///
/// // Two single-request swarms contending for box 0 (and box 1 as the
/// // fallback of swarm 0): the sharded schedule serves both, exactly like
/// // a global max-flow solve, for any thread count.
/// let caps = vec![1, 1];
/// let keys = vec![
///     RequestKey { viewer: BoxId(0), stripe: StripeId::new(VideoId(0), 0) },
///     RequestKey { viewer: BoxId(1), stripe: StripeId::new(VideoId(1), 0) },
/// ];
/// let cands = vec![vec![BoxId(0), BoxId(1)], vec![BoxId(0)]];
/// let mut matcher = ShardedMatcher::new(4);
/// let mut out = Vec::new();
/// matcher.schedule_keyed(&caps, &keys, &cands, &mut out);
/// assert_eq!(out.iter().flatten().count(), 2);
/// assert_eq!(matcher.last_round_stats().unmatched, 0);
/// ```
pub struct ShardedMatcher {
    threads: usize,
    split_policy: SplitPolicy,
    reconcile_policy: ReconcilePolicy,
    arena: ShardedArena,
    states: HashMap<u64, ShardState, BuildHasherDefault<KeyHasher>>,
    /// Round scratch (reused): shard keys per request, per-shard deficit
    /// snapshot, per-(shard, box) split targets, packed reconcile keys,
    /// work items.
    shard_keys: Vec<u64>,
    deficits: Vec<u64>,
    slot_targets: Vec<u64>,
    packed_keys: Vec<u128>,
    work: Vec<ShardWork>,
    /// Pooled CSR bridge for the slice-of-vecs trait entry points (the
    /// view-based ones are the engine's native path).
    csr_bridge: CandidateBuf,
    /// Pooled scratch for the debug-only assignment validity check.
    dbg_loads: Vec<u32>,
    round: u64,
    last_stats: ShardRoundStats,
    last_relay: Option<RelayLendStats>,
    rounds: u64,
    reconcile_rounds: u64,
    reconcile_nanos: u64,
    reconcile_full_rebuilds: u64,
    /// Span sink for the partition/split/solve/reconcile stages (off by
    /// default). Shard-local matchers stay untraced: the per-shard solve is
    /// spanned as a whole, from the worker that runs it.
    tracer: TraceHandle,
}

impl Default for ShardedMatcher {
    fn default() -> Self {
        ShardedMatcher::new(1)
    }
}

/// Packs a [`RequestKey`] into the opaque 128-bit key the persistent
/// reconciliation arena tracks (viewer ‖ video ‖ stripe index — injective,
/// so distinct requests never collide).
fn pack_key(key: &RequestKey) -> u128 {
    ((key.viewer.0 as u128) << 48) | ((key.stripe.video.0 as u128) << 16) | key.stripe.index as u128
}

impl ShardedMatcher {
    /// Creates a sharded matcher solving shards on `threads` worker threads
    /// (1 solves them inline on the caller's thread; the schedule is
    /// identical either way), with the default policies
    /// ([`SplitPolicy::WaterFill`] + [`ReconcilePolicy::Persistent`]).
    pub fn new(threads: usize) -> Self {
        ShardedMatcher {
            threads: threads.max(1),
            split_policy: SplitPolicy::default(),
            reconcile_policy: ReconcilePolicy::default(),
            arena: ShardedArena::new(),
            states: HashMap::default(),
            shard_keys: Vec::new(),
            deficits: Vec::new(),
            slot_targets: Vec::new(),
            packed_keys: Vec::new(),
            work: Vec::new(),
            csr_bridge: CandidateBuf::new(),
            dbg_loads: Vec::new(),
            round: 0,
            last_stats: ShardRoundStats::default(),
            last_relay: None,
            rounds: 0,
            reconcile_rounds: 0,
            reconcile_nanos: 0,
            reconcile_full_rebuilds: 0,
            tracer: TraceHandle::off(),
        }
    }

    /// Creates a matcher sized to the machine's available parallelism.
    pub fn with_available_parallelism() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        ShardedMatcher::new(threads)
    }

    /// Creates a matcher with the PR 2 baseline policies
    /// ([`SplitPolicy::DemandProportional`] + [`ReconcilePolicy::Rebuild`]),
    /// for A/B comparisons in benches and experiments.
    pub fn baseline(threads: usize) -> Self {
        ShardedMatcher::new(threads)
            .with_split_policy(SplitPolicy::DemandProportional)
            .with_reconcile_policy(ReconcilePolicy::Rebuild)
    }

    /// Overrides the budget-split policy.
    pub fn with_split_policy(mut self, policy: SplitPolicy) -> Self {
        self.split_policy = policy;
        self
    }

    /// Overrides the reconciliation policy.
    pub fn with_reconcile_policy(mut self, policy: ReconcilePolicy) -> Self {
        self.reconcile_policy = policy;
        self
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configured budget-split policy.
    pub fn split_policy(&self) -> SplitPolicy {
        self.split_policy
    }

    /// The configured reconciliation policy.
    pub fn reconcile_policy(&self) -> ReconcilePolicy {
        self.reconcile_policy
    }

    /// Stats of the most recent round.
    pub fn last_round_stats(&self) -> ShardRoundStats {
        self.last_stats
    }

    /// Rounds scheduled so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Rounds that needed a reconciliation pass (the shard phase came up
    /// short) so far.
    pub fn reconcile_rounds(&self) -> u64 {
        self.reconcile_rounds
    }

    /// Total wall-clock nanoseconds spent inside reconciliation so far
    /// (observability only; never feeds back into scheduling).
    pub fn reconcile_nanos(&self) -> u64 {
        self.reconcile_nanos
    }

    /// Reconciled rounds that rebuilt the global network from scratch so far
    /// (every reconciled round under [`ReconcilePolicy::Rebuild`]; first
    /// call and dead-edge compactions only under
    /// [`ReconcilePolicy::Persistent`]).
    pub fn reconcile_rebuilds(&self) -> u64 {
        self.reconcile_full_rebuilds
    }

    /// Tracked shard states currently pooled (observability for the
    /// eviction heuristic).
    pub fn pooled_shards(&self) -> usize {
        self.states.len()
    }

    /// Solves one shard: remaps its candidates into the shard-local box
    /// universe, applies the budget split, and runs the shard's warm
    /// incremental matcher.
    fn solve_shard(
        work: &mut ShardWork,
        arena: &ShardedArena,
        capacities: &[u32],
        keys: &[RequestKey],
        candidates: CandidateView<'_>,
        round: u64,
        tracer: &TraceHandle,
    ) {
        let clock = tracer.begin();
        let view = arena.shard(work.shard_idx);
        let state = &mut work.state;
        state.last_used = round;

        // Split borrows: the local-id allocator mutates `local_of`,
        // `global_of`, and `caps` while the candidate buffers are filled.
        let ShardState {
            local_of,
            global_of,
            caps,
            keys: shard_keys,
            csr,
            stamps,
            out,
            matcher,
            ..
        } = state;

        let mut local = |global: BoxId| -> u32 {
            *local_of.entry(global.0).or_insert_with(|| {
                let id = global_of.len() as u32;
                global_of.push(global);
                id
            })
        };

        // Budgets: zero everything, then set this round's shares.
        caps.iter_mut().for_each(|c| *c = 0);
        for (&b, &budget) in view.boxes.iter().zip(view.budget) {
            let id = local(BoxId(b)) as usize;
            if id >= caps.len() {
                // Pad to the next power of two so the matcher's
                // length-change rebuild is amortized.
                let len = (id + 1).next_power_of_two();
                caps.resize(len, 0);
            }
            caps[id] = budget;
        }

        // Remap this shard's candidate rows into the local universe: one
        // contiguous CSR append per round. The global change stamps stay
        // valid locally because local ids are allocated on first appearance
        // and never reused — an unchanged global row remaps to an unchanged
        // local row.
        shard_keys.clear();
        csr.clear();
        stamps.clear();
        for &x in view.requests {
            let x = x as usize;
            shard_keys.push(keys[x]);
            stamps.push(candidates.row_stamp(x));
            for &cand in candidates.row(x) {
                if cand.index() < capacities.len() {
                    csr.push_box(BoxId(local(cand)));
                }
            }
            csr.finish_row();
        }
        matcher.schedule_keyed_view(caps, shard_keys, csr.view_with_stamps(stamps), out);
        tracer.end(clock, Stage::ShardSolve, shard_keys.len() as u64);
    }

    /// Evicts shard states idle for more than 256 rounds (checked every 64
    /// rounds). Purely a memory bound: eviction only ever costs a future
    /// cold shard rebuild (and forgets that shard's deficit history), never
    /// changes the matching sizes.
    fn evict_idle_shards(&mut self) {
        if self.round.is_multiple_of(64) {
            let horizon = self.round.saturating_sub(256);
            self.states.retain(|_, s| s.last_used >= horizon);
        }
    }
}

impl Scheduler for ShardedMatcher {
    fn schedule(&mut self, capacities: &[u32], candidates: &[Vec<BoxId>]) -> Vec<Option<BoxId>> {
        // Without stable keys there is no shard identity to warm: solve the
        // whole round as a single cold reconciliation (still a global
        // maximum matching).
        let mut out = vec![None; candidates.len()];
        self.last_relay = None;
        let start = Instant::now();
        let stats = self.arena.reconcile(capacities, candidates, &mut out);
        self.reconcile_rounds += 1;
        self.reconcile_nanos += start.elapsed().as_nanos() as u64;
        self.reconcile_full_rebuilds += stats.rebuilt as u64;
        self.last_stats = ShardRoundStats {
            shards: 1,
            largest_shard: candidates.len(),
            preloaded: stats.preloaded,
            carried: stats.carried,
            dropped: stats.dropped,
            repaired: stats.repaired,
            unmatched: stats.unmatched,
            shard_unserved: candidates.len(),
            reconciled: true,
            rebuilt: stats.rebuilt,
            ..ShardRoundStats::default()
        };
        self.rounds += 1;
        out
    }

    fn schedule_keyed(
        &mut self,
        capacities: &[u32],
        keys: &[RequestKey],
        candidates: &[Vec<BoxId>],
        out: &mut Vec<Option<BoxId>>,
    ) {
        let mut bridge = std::mem::take(&mut self.csr_bridge);
        bridge.fill_from_slices(candidates);
        self.schedule_inner(capacities, keys, bridge.view(), None, out);
        self.csr_bridge = bridge;
    }

    fn schedule_keyed_view(
        &mut self,
        capacities: &[u32],
        keys: &[RequestKey],
        candidates: CandidateView<'_>,
        out: &mut Vec<Option<BoxId>>,
    ) {
        self.schedule_inner(capacities, keys, candidates, None, out);
    }

    fn schedule_relayed(
        &mut self,
        capacities: &[u32],
        keys: &[RequestKey],
        candidates: &[Vec<BoxId>],
        relays: &RelayView,
        out: &mut Vec<Option<BoxId>>,
    ) {
        let mut bridge = std::mem::take(&mut self.csr_bridge);
        bridge.fill_from_slices(candidates);
        self.schedule_inner(capacities, keys, bridge.view(), Some(relays), out);
        self.csr_bridge = bridge;
    }

    fn schedule_relayed_view(
        &mut self,
        capacities: &[u32],
        keys: &[RequestKey],
        candidates: CandidateView<'_>,
        relays: &RelayView,
        out: &mut Vec<Option<BoxId>>,
    ) {
        self.schedule_inner(capacities, keys, candidates, Some(relays), out);
    }

    fn shard_stats(&self) -> Option<ShardRoundStats> {
        Some(self.last_stats)
    }

    fn relay_stats(&self) -> Option<RelayLendStats> {
        self.last_relay
    }

    fn attach_tracer(&mut self, tracer: &TraceHandle) {
        self.tracer = tracer.clone();
    }

    fn name(&self) -> &'static str {
        "sharded"
    }
}

impl ShardedMatcher {
    /// The shared scheduling pipeline behind [`Scheduler::schedule_keyed`]
    /// and [`Scheduler::schedule_relayed`]: the relay view only adds the
    /// reserved-capacity lending pass (pure accounting over the partition),
    /// so the produced schedule is identical with and without it — and
    /// therefore identical to the global incremental matcher's.
    fn schedule_inner(
        &mut self,
        capacities: &[u32],
        keys: &[RequestKey],
        candidates: CandidateView<'_>,
        relays: Option<&RelayView>,
        out: &mut Vec<Option<BoxId>>,
    ) {
        debug_assert_eq!(keys.len(), candidates.len());
        self.round += 1;
        self.rounds += 1;

        // 1. Partition by swarm (video id), then split each relay's
        // reserved forwarding capacity across the shards drawing on it
        // (relay edges cross swarms; see `ShardedArena::split_relay_reserved`).
        let clock = self.tracer.begin();
        self.shard_keys.clear();
        self.shard_keys
            .extend(keys.iter().map(|k| k.stripe.video.0 as u64));
        let shard_count = self
            .arena
            .partition_view(&self.shard_keys, candidates, capacities.len());
        self.last_relay = relays.map(|view| {
            self.arena
                .split_relay_reserved(view.reserved, view.relay_of)
        });
        self.tracer
            .end(clock, Stage::ShardPartition, shard_count as u64);

        // 2. Snapshot each shard's decayed deficits (ordinal order) and
        // split the upload budgets. WaterFill feeds the direct per-(shard,
        // box) starvation history into the targeted split — the per-shard
        // scalar stays as an observability aggregate; DemandProportional
        // is the targeted split with an empty history, bit-identical to
        // the PR 2 split.
        let clock = self.tracer.begin();
        self.deficits.clear();
        self.slot_targets.clear();
        let mut deficit_total = 0u64;
        let mut deficit_max = 0u64;
        for shard_idx in 0..shard_count {
            let view = self.arena.shard(shard_idx);
            let state = self.states.get(&view.key);
            let deficit = state.map_or(0, |s| s.deficit);
            deficit_total += deficit;
            deficit_max = deficit_max.max(deficit);
            self.deficits.push(deficit);
            if self.split_policy == SplitPolicy::WaterFill {
                for b in view.boxes {
                    let target = state.map_or(0, |s| {
                        s.local_of
                            .get(b)
                            .and_then(|&local| s.box_deficit.get(local as usize))
                            .copied()
                            .unwrap_or(0)
                    });
                    self.slot_targets.push(target);
                }
            }
        }
        let split_stats: SplitStats = match self.split_policy {
            SplitPolicy::WaterFill => self
                .arena
                .split_budgets_targeted(capacities, &self.slot_targets),
            SplitPolicy::DemandProportional => self.arena.split_budgets_targeted(capacities, &[]),
        };
        self.tracer
            .end(clock, Stage::ShardSplit, split_stats.iterations as u64);

        // 3. Check out each active shard's persistent state.
        self.work.clear();
        let mut largest = 0;
        for shard_idx in 0..shard_count {
            let view = self.arena.shard(shard_idx);
            largest = largest.max(view.requests.len());
            let state = self
                .states
                .remove(&view.key)
                .unwrap_or_else(ShardState::new);
            self.work.push(ShardWork { shard_idx, state });
        }

        // 4. Parallel shard solves. Workers pull items from a shared queue;
        // each item owns its state, so results are independent of which
        // worker runs it — the schedule is identical for any thread count.
        let arena = &self.arena;
        let round = self.round;
        let tracer = &self.tracer;
        let workers = self.threads.min(self.work.len()).max(1);
        if workers == 1 {
            for work in &mut self.work {
                ShardedMatcher::solve_shard(
                    work, arena, capacities, keys, candidates, round, tracer,
                );
            }
        } else {
            let queue = Mutex::new(self.work.iter_mut());
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let item = queue.lock().expect("shard queue poisoned").next();
                        match item {
                            Some(work) => ShardedMatcher::solve_shard(
                                work, arena, capacities, keys, candidates, round, tracer,
                            ),
                            None => break,
                        }
                    });
                }
            });
        }

        // 5. Gather the tentative assignment, update each shard's decayed
        // starvation history — the scalar aggregate and, per starved
        // request, one count on each candidate box (recording *where* the
        // split came up short) — and return states to the pool.
        out.clear();
        out.resize(keys.len(), None);
        let mut shard_unserved = 0usize;
        for work in self.work.drain(..) {
            let view = arena.shard(work.shard_idx);
            let mut state = work.state;
            state
                .box_deficit
                .resize(state.global_of.len().max(state.box_deficit.len()), 0);
            for slot in state.box_deficit.iter_mut() {
                *slot /= 2;
            }
            let mut unserved = 0u64;
            for (i, &x) in view.requests.iter().enumerate() {
                match state.out[i] {
                    Some(local) => out[x as usize] = Some(state.global_of[local.index()]),
                    None => {
                        unserved += 1;
                        // The starved request's candidates (already in the
                        // shard-local universe) are where more budget was
                        // needed.
                        for cand in state.csr.view().row(i) {
                            state.box_deficit[cand.index()] += 1;
                        }
                    }
                }
            }
            shard_unserved += unserved as usize;
            state.deficit = state.deficit / 2 + unserved;
            self.states.insert(view.key, state);
        }

        // 6. Reconcile to a global maximum matching. When the shard phase
        // matched every request the union already is one — the budget split
        // is capacity-disjoint, so the combined assignment is valid and
        // complete — and reconciliation is skipped outright. Only rounds
        // where some shard came up short pay for the repair pass, whose cost
        // the persistent policy further amortizes across rounds.
        let matched = out.iter().flatten().count();
        let reconciled = matched != keys.len();
        let stats = if !reconciled {
            ReconcileStats {
                preloaded: matched,
                ..ReconcileStats::default()
            }
        } else {
            // A small deficit is exactly where the persistent arena shines:
            // the carried flow serves almost everything and the patch is
            // O(Δ). A *large* deficit (chronically starved or infeasible
            // instance) means the previous round's flow is structurally
            // stale — every reroute away from it invalidates the failure
            // marks of the targeted search — while the rebuild path preloads
            // this round's fresh shard flows and repairs next to nothing.
            // Mirror the incremental matcher's unserved-set heuristic and
            // pick per round; the choice depends only on the (thread-count
            // invariant) shard outcome, so determinism is preserved.
            let stale_warm_start = shard_unserved * 8 > keys.len() + 64;
            let start = Instant::now();
            let stats = match self.reconcile_policy {
                ReconcilePolicy::Persistent if !stale_warm_start => {
                    self.packed_keys.clear();
                    self.packed_keys.extend(keys.iter().map(pack_key));
                    self.arena
                        .reconcile_keyed_view(capacities, &self.packed_keys, candidates, out)
                }
                _ => self.arena.reconcile_view(capacities, candidates, out),
            };
            let ns = start.elapsed().as_nanos() as u64;
            self.reconcile_rounds += 1;
            self.reconcile_nanos += ns;
            self.reconcile_full_rebuilds += stats.rebuilt as u64;
            self.tracer
                .emit_ns(Stage::ShardReconcile, ns, stats.repaired as u64);
            stats
        };
        self.last_stats = ShardRoundStats {
            shards: shard_count,
            largest_shard: largest,
            preloaded: stats.preloaded,
            carried: stats.carried,
            dropped: stats.dropped,
            repaired: stats.repaired,
            unmatched: stats.unmatched,
            shard_unserved,
            deficit_total,
            deficit_max,
            split_iterations: split_stats.iterations,
            reconciled,
            rebuilt: stats.rebuilt,
        };
        self.evict_idle_shards();
        debug_assert!(crate::scheduler::assignment_is_valid_view(
            out,
            capacities,
            candidates,
            &mut self.dbg_loads
        ));
    }
}

impl std::fmt::Debug for ShardedMatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedMatcher")
            .field("threads", &self.threads)
            .field("split_policy", &self.split_policy)
            .field("reconcile_policy", &self.reconcile_policy)
            .field("pooled_shards", &self.states.len())
            .field("rounds", &self.rounds)
            .field("reconcile_rounds", &self.reconcile_rounds)
            .field("last_stats", &self.last_stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::assignment_is_valid;
    use vod_core::{StripeId, VideoId};
    use vod_flow::ConnectionProblem;

    fn key(viewer: u32, video: u32, index: u16) -> RequestKey {
        RequestKey {
            viewer: BoxId(viewer),
            stripe: StripeId::new(VideoId(video), index),
        }
    }

    fn b(i: u32) -> BoxId {
        BoxId(i)
    }

    fn cold_served(caps: &[u32], cands: &[Vec<BoxId>]) -> usize {
        let mut p = ConnectionProblem::new(caps.to_vec());
        for c in cands {
            p.add_request(c.iter().copied());
        }
        p.solve().served()
    }

    /// Every split × reconcile policy combination, for policy-matrix tests.
    fn all_policies() -> [(SplitPolicy, ReconcilePolicy); 4] {
        [
            (SplitPolicy::DemandProportional, ReconcilePolicy::Rebuild),
            (SplitPolicy::DemandProportional, ReconcilePolicy::Persistent),
            (SplitPolicy::WaterFill, ReconcilePolicy::Rebuild),
            (SplitPolicy::WaterFill, ReconcilePolicy::Persistent),
        ]
    }

    #[test]
    fn single_round_matches_cold_solve() {
        let caps = vec![1, 1, 2];
        let keys = vec![key(0, 0, 0), key(1, 0, 1), key(2, 1, 0), key(3, 1, 1)];
        let cands = vec![vec![b(0), b(1)], vec![b(0)], vec![b(1), b(2)], vec![b(2)]];
        let mut matcher = ShardedMatcher::new(2);
        let mut out = Vec::new();
        matcher.schedule_keyed(&caps, &keys, &cands, &mut out);
        assert!(assignment_is_valid(&out, &caps, &cands));
        assert_eq!(out.iter().flatten().count(), cold_served(&caps, &cands));
        assert_eq!(matcher.last_round_stats().shards, 2);
    }

    #[test]
    fn budget_starved_requests_are_repaired() {
        // Both swarms can only use box 0 (capacity 2): the budget split gives
        // each shard one slot, but any imbalance must be repaired so the
        // round stays feasible.
        let caps = vec![2];
        let keys = vec![key(0, 0, 0), key(1, 1, 0)];
        let cands = vec![vec![b(0)], vec![b(0)]];
        let mut matcher = ShardedMatcher::new(4);
        let mut out = Vec::new();
        matcher.schedule_keyed(&caps, &keys, &cands, &mut out);
        assert_eq!(out.iter().flatten().count(), 2);
        assert_eq!(matcher.last_round_stats().unmatched, 0);
    }

    #[test]
    fn cross_shard_rerouting_keeps_rounds_feasible() {
        // Swarm 0's request could use box 0 or 1; swarm 1's request only box
        // 0. If the budget split hands box 0 to swarm 0, reconciliation must
        // reroute across shards.
        let caps = vec![1, 1];
        let keys = vec![key(0, 0, 0), key(1, 1, 0)];
        let cands = vec![vec![b(0), b(1)], vec![b(0)]];
        for threads in [1usize, 2, 8] {
            for (split, reconcile) in all_policies() {
                let mut matcher = ShardedMatcher::new(threads)
                    .with_split_policy(split)
                    .with_reconcile_policy(reconcile);
                let mut out = Vec::new();
                matcher.schedule_keyed(&caps, &keys, &cands, &mut out);
                assert_eq!(
                    out.iter().flatten().count(),
                    2,
                    "threads {threads} policies {split:?}/{reconcile:?}"
                );
            }
        }
    }

    #[test]
    fn schedules_identical_across_thread_counts() {
        let caps = vec![2, 1, 1, 2];
        let rounds: Vec<(Vec<RequestKey>, Vec<Vec<BoxId>>)> = (0..12u32)
            .map(|r| {
                let keys: Vec<RequestKey> = (0..6)
                    .map(|i| key(i, (i + r) % 3, (r % 4) as u16))
                    .collect();
                let cands: Vec<Vec<BoxId>> = (0..6u32)
                    .map(|i| vec![b((i + r) % 4), b((i + r + 2) % 4)])
                    .collect();
                (keys, cands)
            })
            .collect();
        let run = |threads: usize| -> (Vec<Vec<Option<BoxId>>>, Vec<ShardRoundStats>) {
            let mut matcher = ShardedMatcher::new(threads);
            let mut out = Vec::new();
            let mut all = Vec::new();
            let mut stats = Vec::new();
            for (keys, cands) in &rounds {
                matcher.schedule_keyed(&caps, keys, cands, &mut out);
                all.push(out.clone());
                stats.push(matcher.last_round_stats());
            }
            (all, stats)
        };
        let reference = run(1);
        for threads in [2usize, 4, 8] {
            let result = run(threads);
            assert_eq!(result.0, reference.0, "threads {threads}: schedules");
            // Per-round stats — including the split's water-filling
            // iterations and deficit snapshot — are thread-count-invariant.
            assert_eq!(result.1, reference.1, "threads {threads}: stats");
        }
    }

    #[test]
    fn warm_shards_track_cold_solves_under_churn() {
        let caps = vec![1, 1, 1, 1];
        for (split, reconcile) in all_policies() {
            let mut matcher = ShardedMatcher::new(2)
                .with_split_policy(split)
                .with_reconcile_policy(reconcile);
            let mut out = Vec::new();
            let mut window: Vec<(RequestKey, Vec<BoxId>)> = Vec::new();
            for round in 0u32..40 {
                if window.len() >= 6 {
                    window.remove(0);
                }
                let cands = vec![b(round % 4), b((round + 1) % 4)];
                window.push((key(round, round % 3, 0), cands));
                let keys: Vec<RequestKey> = window.iter().map(|(k, _)| *k).collect();
                let cands: Vec<Vec<BoxId>> = window.iter().map(|(_, c)| c.clone()).collect();
                matcher.schedule_keyed(&caps, &keys, &cands, &mut out);
                assert!(
                    assignment_is_valid(&out, &caps, &cands),
                    "round {round} policies {split:?}/{reconcile:?}"
                );
                assert_eq!(
                    out.iter().flatten().count(),
                    cold_served(&caps, &cands),
                    "round {round} policies {split:?}/{reconcile:?}"
                );
            }
        }
    }

    #[test]
    fn waterfill_reduces_reconciled_rounds_on_persistent_contention() {
        // Two swarms share box 0 (capacity 1); swarm 0 also has box 1 as a
        // fallback. The proportional split hands box 0's slot to swarm 0 on
        // every round (demand tie, lowest ordinal), starving swarm 1 and
        // forcing a reconcile *every* round. Water-filling observes swarm
        // 1's deficit and shifts the slot to it, after which the shard
        // phase serves everything and reconciliation is skipped — so the
        // reconciled-round counts must differ strictly, not just `<=`.
        let caps = vec![1u32, 1];
        let keys = vec![key(0, 0, 0), key(1, 1, 0)];
        let cands = vec![vec![b(0), b(1)], vec![b(0)]];
        let rounds = 30u64;
        let run = |split: SplitPolicy| -> u64 {
            let mut matcher = ShardedMatcher::new(1)
                .with_split_policy(split)
                .with_reconcile_policy(ReconcilePolicy::Persistent);
            let mut out = Vec::new();
            for _ in 0..rounds {
                matcher.schedule_keyed(&caps, &keys, &cands, &mut out);
                // Globally feasible either way: both requests served.
                assert_eq!(out.iter().flatten().count(), 2);
            }
            matcher.reconcile_rounds()
        };
        let proportional = run(SplitPolicy::DemandProportional);
        let waterfill = run(SplitPolicy::WaterFill);
        assert_eq!(
            proportional, rounds,
            "proportional split must starve swarm 1 every round"
        );
        assert!(
            waterfill < proportional,
            "waterfill reconciled {waterfill} rounds vs proportional {proportional}"
        );
    }

    #[test]
    fn persistent_reconcile_rebuilds_less_than_rebuild_policy() {
        // A workload the budget split chronically under-serves: every round
        // needs reconciliation. The rebuild policy pays a full rebuild per
        // round; the persistent policy only on the first.
        let caps = vec![1u32, 1];
        let keys = vec![key(0, 0, 0), key(1, 1, 0)];
        let cands = vec![vec![b(0), b(1)], vec![b(0)]];
        let run = |policy: ReconcilePolicy| -> (u64, u64) {
            // Pin the proportional split so the deficit learner cannot make
            // the contention go away: every round must reconcile.
            let mut matcher = ShardedMatcher::new(1)
                .with_split_policy(SplitPolicy::DemandProportional)
                .with_reconcile_policy(policy);
            let mut out = Vec::new();
            for _ in 0..20 {
                matcher.schedule_keyed(&caps, &keys, &cands, &mut out);
                assert_eq!(out.iter().flatten().count(), 2);
            }
            (matcher.reconcile_rounds(), matcher.reconcile_rebuilds())
        };
        let (rebuild_rounds, rebuilds) = run(ReconcilePolicy::Rebuild);
        let (persistent_rounds, persistent_rebuilds) = run(ReconcilePolicy::Persistent);
        assert_eq!(rebuild_rounds, persistent_rounds);
        if persistent_rounds > 1 {
            assert_eq!(persistent_rebuilds, 1, "persistent policy must patch");
            assert!(rebuilds >= rebuild_rounds.min(1));
        }
        // Carried flow shows up in the stats on steady reconciled rounds.
        let mut matcher = ShardedMatcher::new(1);
        let mut out = Vec::new();
        matcher.schedule_keyed(&caps, &keys, &cands, &mut out);
        matcher.schedule_keyed(&caps, &keys, &cands, &mut out);
        let stats = matcher.last_round_stats();
        if stats.reconciled {
            assert!(stats.carried > 0, "stats: {stats:?}");
        }
    }

    #[test]
    fn unkeyed_schedule_is_a_global_maximum() {
        let caps = vec![1, 1];
        let cands = vec![vec![b(0), b(1)], vec![b(0)], vec![b(1)]];
        let mut matcher = ShardedMatcher::new(4);
        let out = matcher.schedule(&caps, &cands);
        assert_eq!(out.iter().flatten().count(), 2);
        assert!(assignment_is_valid(&out, &caps, &cands));
        // An unkeyed cold solve invalidates the persistent instance, but a
        // following keyed round recovers transparently.
        let keys = vec![key(0, 0, 0)];
        let cands = vec![vec![b(1)]];
        let mut out = Vec::new();
        matcher.schedule_keyed(&caps, &keys, &cands, &mut out);
        assert_eq!(out, vec![Some(b(1))]);
    }

    #[test]
    fn shard_round_stats_roundtrip_json() {
        let stats = ShardRoundStats {
            shards: 3,
            largest_shard: 9,
            preloaded: 20,
            carried: 12,
            dropped: 0,
            repaired: 2,
            unmatched: 1,
            shard_unserved: 3,
            deficit_total: 7,
            deficit_max: 4,
            split_iterations: 5,
            reconciled: true,
            rebuilt: false,
        };
        let json = stats.to_json();
        assert_eq!(ShardRoundStats::from_json(&json).unwrap(), stats);
    }

    #[test]
    fn idle_shards_are_evicted() {
        let caps = vec![1u32; 4];
        let mut matcher = ShardedMatcher::new(1);
        let mut out = Vec::new();
        for round in 0u32..400 {
            // Each round uses a fresh video id: shards never repeat.
            let keys = vec![key(0, round, 0)];
            let cands = vec![vec![b(round % 4)]];
            matcher.schedule_keyed(&caps, &keys, &cands, &mut out);
        }
        assert!(
            matcher.pooled_shards() < 400,
            "pooled {}",
            matcher.pooled_shards()
        );
    }
}
