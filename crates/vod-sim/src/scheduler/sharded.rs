//! Per-swarm sharded scheduling with parallel shard solves.
//!
//! Requests for different videos only interact through the shared per-box
//! upload budgets, so a round's Lemma-1 instance is block-structured: one
//! block per swarm, coupled by the capacities. The [`ShardedMatcher`]
//! exploits this in four deterministic stages:
//!
//! 1. **Partition** — requests are grouped by the video of their stripe
//!    ([`vod_flow::ShardedArena::partition`], pooled flat storage);
//! 2. **Budget split** — each box's `⌊u_b·c⌋` upload slots are divided
//!    across the swarms demanding it
//!    ([`vod_flow::ShardedArena::split_budgets`]), making the per-shard
//!    subproblems capacity-disjoint;
//! 3. **Parallel shard solves** — each shard is solved by its own
//!    *persistent* [`IncrementalMatcher`] (warm-started: a swarm's requests
//!    mostly carry over between rounds) on a compact shard-local box
//!    universe. Shards are pulled from a shared work queue by
//!    `std::thread::scope` workers; since every shard's state is owned and
//!    its solve is independent, the result is identical for any thread
//!    count, including 1;
//! 4. **Reconciliation** — a single-threaded
//!    [`vod_flow::ShardedArena::reconcile`] pass preloads the shard flows
//!    into the global residual network and augments every request the budget
//!    split starved, rerouting shard flow where necessary. The final
//!    matching is globally maximum, so sharding never changes a round's
//!    feasibility — only how fast it is decided.
//!
//! The scheduler is deterministic: for a fixed round sequence the schedule
//! is a pure function of the inputs, independent of the thread count and of
//! OS scheduling.

use crate::scheduler::incremental::KeyHasher;
use crate::scheduler::{IncrementalMatcher, RequestKey, Scheduler};
use std::collections::HashMap;
use std::hash::BuildHasherDefault;
use std::sync::Mutex;
use vod_core::BoxId;
use vod_flow::{ReconcileStats, ShardedArena};

/// Per-round observability of the sharded scheduler.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardRoundStats {
    /// Shards (distinct videos with active requests) this round.
    pub shards: usize,
    /// Requests in the largest shard.
    pub largest_shard: usize,
    /// Requests matched by the parallel shard phase and kept by
    /// reconciliation.
    pub preloaded: usize,
    /// Shard-phase assignments reconciliation had to drop (always 0 with a
    /// correct budget split; tracked defensively).
    pub dropped: usize,
    /// Requests the budget split starved that reconciliation repaired.
    pub repaired: usize,
    /// Requests unmatched even after reconciliation (the round is infeasible
    /// iff non-zero).
    pub unmatched: usize,
}

impl ShardRoundStats {
    fn from_reconcile(stats: ReconcileStats, shards: usize, largest: usize) -> Self {
        ShardRoundStats {
            shards,
            largest_shard: largest,
            preloaded: stats.preloaded,
            dropped: stats.dropped,
            repaired: stats.repaired,
            unmatched: stats.unmatched,
        }
    }
}

/// Persistent state of one shard (one swarm), pooled across rounds.
///
/// Boxes are remapped to a compact shard-local universe so the shard's
/// incremental matcher does not carry source edges for the whole system.
/// Local ids are allocated on first appearance and never reused, which keeps
/// the mapping — and therefore the shard's warm arena — stable across
/// rounds.
struct ShardState {
    matcher: IncrementalMatcher,
    /// Local box id → global box id.
    global_of: Vec<BoxId>,
    /// Global box id → local box id.
    local_of: HashMap<u32, u32, BuildHasherDefault<KeyHasher>>,
    /// Shard-local capacities (budget split), padded to a power of two so
    /// the matcher's length-change rebuild only triggers on universe
    /// doublings, not on every new box a growing swarm touches.
    caps: Vec<u32>,
    keys: Vec<RequestKey>,
    cands: Vec<Vec<BoxId>>,
    out: Vec<Option<BoxId>>,
    /// Round stamp of the last round that scheduled this shard.
    last_used: u64,
}

impl ShardState {
    fn new() -> Self {
        ShardState {
            matcher: IncrementalMatcher::default(),
            global_of: Vec::new(),
            local_of: HashMap::default(),
            caps: Vec::new(),
            keys: Vec::new(),
            cands: Vec::new(),
            out: Vec::new(),
            last_used: 0,
        }
    }
}

/// One round's work item: the shard ordinal plus its owned state, moved
/// through the parallel phase and returned to the pool afterwards.
struct ShardWork {
    shard_idx: usize,
    state: ShardState,
}

/// Per-swarm sharded scheduler with parallel shard solves.
///
/// Produces the same matching sizes (and feasibility verdicts) as a global
/// maximum-flow solve, with identical schedules for any `threads` value.
pub struct ShardedMatcher {
    threads: usize,
    arena: ShardedArena,
    states: HashMap<u64, ShardState, BuildHasherDefault<KeyHasher>>,
    /// Round scratch (reused): shard keys per request, work items, the
    /// assignment buffer handed to reconciliation.
    shard_keys: Vec<u64>,
    work: Vec<ShardWork>,
    round: u64,
    last_stats: ShardRoundStats,
    rounds: u64,
}

impl Default for ShardedMatcher {
    fn default() -> Self {
        ShardedMatcher::new(1)
    }
}

impl ShardedMatcher {
    /// Creates a sharded matcher solving shards on `threads` worker threads
    /// (1 solves them inline on the caller's thread; the schedule is
    /// identical either way).
    pub fn new(threads: usize) -> Self {
        ShardedMatcher {
            threads: threads.max(1),
            arena: ShardedArena::new(),
            states: HashMap::default(),
            shard_keys: Vec::new(),
            work: Vec::new(),
            round: 0,
            last_stats: ShardRoundStats::default(),
            rounds: 0,
        }
    }

    /// Creates a matcher sized to the machine's available parallelism.
    pub fn with_available_parallelism() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        ShardedMatcher::new(threads)
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Stats of the most recent round.
    pub fn last_round_stats(&self) -> ShardRoundStats {
        self.last_stats
    }

    /// Rounds scheduled so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Tracked shard states currently pooled (observability for the
    /// eviction heuristic).
    pub fn pooled_shards(&self) -> usize {
        self.states.len()
    }

    /// Solves one shard: remaps its candidates into the shard-local box
    /// universe, applies the budget split, and runs the shard's warm
    /// incremental matcher.
    fn solve_shard(
        work: &mut ShardWork,
        arena: &ShardedArena,
        capacities: &[u32],
        keys: &[RequestKey],
        candidates: &[Vec<BoxId>],
        round: u64,
    ) {
        let view = arena.shard(work.shard_idx);
        let state = &mut work.state;
        state.last_used = round;

        // Split borrows: the local-id allocator mutates `local_of`,
        // `global_of`, and `caps` while the candidate buffers are filled.
        let ShardState {
            local_of,
            global_of,
            caps,
            keys: shard_keys,
            cands,
            out,
            matcher,
            ..
        } = state;

        let mut local = |global: BoxId| -> u32 {
            *local_of.entry(global.0).or_insert_with(|| {
                let id = global_of.len() as u32;
                global_of.push(global);
                id
            })
        };

        // Budgets: zero everything, then set this round's shares.
        caps.iter_mut().for_each(|c| *c = 0);
        for (&b, &budget) in view.boxes.iter().zip(view.budget) {
            let id = local(BoxId(b)) as usize;
            if id >= caps.len() {
                // Pad to the next power of two so the matcher's
                // length-change rebuild is amortized.
                let len = (id + 1).next_power_of_two();
                caps.resize(len, 0);
            }
            caps[id] = budget;
        }

        shard_keys.clear();
        let request_count = view.requests.len();
        while cands.len() < request_count {
            cands.push(Vec::new());
        }
        for (slot, &x) in cands.iter_mut().zip(view.requests) {
            let x = x as usize;
            shard_keys.push(keys[x]);
            slot.clear();
            for &cand in &candidates[x] {
                if cand.index() < capacities.len() {
                    slot.push(BoxId(local(cand)));
                }
            }
        }
        matcher.schedule_keyed(caps, shard_keys, &cands[..request_count], out);
    }

    /// Evicts shard states idle for more than 256 rounds (checked every 64
    /// rounds). Purely a memory bound: eviction only ever costs a future
    /// cold shard rebuild, never changes results.
    fn evict_idle_shards(&mut self) {
        if self.round.is_multiple_of(64) {
            let horizon = self.round.saturating_sub(256);
            self.states.retain(|_, s| s.last_used >= horizon);
        }
    }
}

impl Scheduler for ShardedMatcher {
    fn schedule(&mut self, capacities: &[u32], candidates: &[Vec<BoxId>]) -> Vec<Option<BoxId>> {
        // Without stable keys there is no shard identity to warm: solve the
        // whole round as a single cold reconciliation (still a global
        // maximum matching).
        let mut out = vec![None; candidates.len()];
        let stats = self.arena.reconcile(capacities, candidates, &mut out);
        self.last_stats = ShardRoundStats::from_reconcile(stats, 1, candidates.len());
        self.rounds += 1;
        out
    }

    fn schedule_keyed(
        &mut self,
        capacities: &[u32],
        keys: &[RequestKey],
        candidates: &[Vec<BoxId>],
        out: &mut Vec<Option<BoxId>>,
    ) {
        debug_assert_eq!(keys.len(), candidates.len());
        self.round += 1;
        self.rounds += 1;

        // 1. Partition by swarm (video id) and split the upload budgets.
        self.shard_keys.clear();
        self.shard_keys
            .extend(keys.iter().map(|k| k.stripe.video.0 as u64));
        let shard_count = self
            .arena
            .partition(&self.shard_keys, candidates, capacities.len());
        self.arena.split_budgets(capacities);

        // 2. Check out each active shard's persistent state.
        self.work.clear();
        let mut largest = 0;
        for shard_idx in 0..shard_count {
            let view = self.arena.shard(shard_idx);
            largest = largest.max(view.requests.len());
            let state = self
                .states
                .remove(&view.key)
                .unwrap_or_else(ShardState::new);
            self.work.push(ShardWork { shard_idx, state });
        }

        // 3. Parallel shard solves. Workers pull items from a shared queue;
        // each item owns its state, so results are independent of which
        // worker runs it — the schedule is identical for any thread count.
        let arena = &self.arena;
        let round = self.round;
        let workers = self.threads.min(self.work.len()).max(1);
        if workers == 1 {
            for work in &mut self.work {
                ShardedMatcher::solve_shard(work, arena, capacities, keys, candidates, round);
            }
        } else {
            let queue = Mutex::new(self.work.iter_mut());
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let item = queue.lock().expect("shard queue poisoned").next();
                        match item {
                            Some(work) => ShardedMatcher::solve_shard(
                                work, arena, capacities, keys, candidates, round,
                            ),
                            None => break,
                        }
                    });
                }
            });
        }

        // 4. Gather the tentative assignment and return states to the pool.
        out.clear();
        out.resize(keys.len(), None);
        for work in self.work.drain(..) {
            let view = arena.shard(work.shard_idx);
            for (&x, assigned) in view.requests.iter().zip(&work.state.out) {
                if let Some(local) = assigned {
                    out[x as usize] = Some(work.state.global_of[local.index()]);
                }
            }
            self.states.insert(view.key, work.state);
        }

        // 5. Reconcile to a global maximum matching. When the shard phase
        // matched every request the union already is one — the budget split
        // is capacity-disjoint, so the combined assignment is valid and
        // complete — and the (serial, O(E)) reconciliation rebuild can be
        // skipped outright. Only rounds where some shard came up short pay
        // for the global repair pass.
        let matched = out.iter().flatten().count();
        let stats = if matched == keys.len() {
            ReconcileStats {
                preloaded: matched,
                ..ReconcileStats::default()
            }
        } else {
            self.arena.reconcile(capacities, candidates, out)
        };
        self.last_stats = ShardRoundStats::from_reconcile(stats, shard_count, largest);
        self.evict_idle_shards();
        debug_assert!(crate::scheduler::assignment_is_valid(
            out, capacities, candidates
        ));
    }

    fn name(&self) -> &'static str {
        "sharded"
    }
}

impl std::fmt::Debug for ShardedMatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedMatcher")
            .field("threads", &self.threads)
            .field("pooled_shards", &self.states.len())
            .field("rounds", &self.rounds)
            .field("last_stats", &self.last_stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::assignment_is_valid;
    use vod_core::{StripeId, VideoId};
    use vod_flow::ConnectionProblem;

    fn key(viewer: u32, video: u32, index: u16) -> RequestKey {
        RequestKey {
            viewer: BoxId(viewer),
            stripe: StripeId::new(VideoId(video), index),
        }
    }

    fn b(i: u32) -> BoxId {
        BoxId(i)
    }

    fn cold_served(caps: &[u32], cands: &[Vec<BoxId>]) -> usize {
        let mut p = ConnectionProblem::new(caps.to_vec());
        for c in cands {
            p.add_request(c.iter().copied());
        }
        p.solve().served()
    }

    #[test]
    fn single_round_matches_cold_solve() {
        let caps = vec![1, 1, 2];
        let keys = vec![key(0, 0, 0), key(1, 0, 1), key(2, 1, 0), key(3, 1, 1)];
        let cands = vec![vec![b(0), b(1)], vec![b(0)], vec![b(1), b(2)], vec![b(2)]];
        let mut matcher = ShardedMatcher::new(2);
        let mut out = Vec::new();
        matcher.schedule_keyed(&caps, &keys, &cands, &mut out);
        assert!(assignment_is_valid(&out, &caps, &cands));
        assert_eq!(out.iter().flatten().count(), cold_served(&caps, &cands));
        assert_eq!(matcher.last_round_stats().shards, 2);
    }

    #[test]
    fn budget_starved_requests_are_repaired() {
        // Both swarms can only use box 0 (capacity 2): the budget split gives
        // each shard one slot, but any imbalance must be repaired so the
        // round stays feasible.
        let caps = vec![2];
        let keys = vec![key(0, 0, 0), key(1, 1, 0)];
        let cands = vec![vec![b(0)], vec![b(0)]];
        let mut matcher = ShardedMatcher::new(4);
        let mut out = Vec::new();
        matcher.schedule_keyed(&caps, &keys, &cands, &mut out);
        assert_eq!(out.iter().flatten().count(), 2);
        assert_eq!(matcher.last_round_stats().unmatched, 0);
    }

    #[test]
    fn cross_shard_rerouting_keeps_rounds_feasible() {
        // Swarm 0's request could use box 0 or 1; swarm 1's request only box
        // 0. If the budget split hands box 0 to swarm 0, reconciliation must
        // reroute across shards.
        let caps = vec![1, 1];
        let keys = vec![key(0, 0, 0), key(1, 1, 0)];
        let cands = vec![vec![b(0), b(1)], vec![b(0)]];
        for threads in [1usize, 2, 8] {
            let mut matcher = ShardedMatcher::new(threads);
            let mut out = Vec::new();
            matcher.schedule_keyed(&caps, &keys, &cands, &mut out);
            assert_eq!(out.iter().flatten().count(), 2, "threads {threads}");
        }
    }

    #[test]
    fn schedules_identical_across_thread_counts() {
        let caps = vec![2, 1, 1, 2];
        let rounds: Vec<(Vec<RequestKey>, Vec<Vec<BoxId>>)> = (0..12u32)
            .map(|r| {
                let keys: Vec<RequestKey> = (0..6)
                    .map(|i| key(i, (i + r) % 3, (r % 4) as u16))
                    .collect();
                let cands: Vec<Vec<BoxId>> = (0..6u32)
                    .map(|i| vec![b((i + r) % 4), b((i + r + 2) % 4)])
                    .collect();
                (keys, cands)
            })
            .collect();
        let run = |threads: usize| -> Vec<Vec<Option<BoxId>>> {
            let mut matcher = ShardedMatcher::new(threads);
            let mut out = Vec::new();
            let mut all = Vec::new();
            for (keys, cands) in &rounds {
                matcher.schedule_keyed(&caps, keys, cands, &mut out);
                all.push(out.clone());
            }
            all
        };
        let reference = run(1);
        for threads in [2usize, 4, 8] {
            assert_eq!(run(threads), reference, "threads {threads}");
        }
    }

    #[test]
    fn warm_shards_track_cold_solves_under_churn() {
        let caps = vec![1, 1, 1, 1];
        let mut matcher = ShardedMatcher::new(2);
        let mut out = Vec::new();
        let mut window: Vec<(RequestKey, Vec<BoxId>)> = Vec::new();
        for round in 0u32..40 {
            if window.len() >= 6 {
                window.remove(0);
            }
            let cands = vec![b(round % 4), b((round + 1) % 4)];
            window.push((key(round, round % 3, 0), cands));
            let keys: Vec<RequestKey> = window.iter().map(|(k, _)| *k).collect();
            let cands: Vec<Vec<BoxId>> = window.iter().map(|(_, c)| c.clone()).collect();
            matcher.schedule_keyed(&caps, &keys, &cands, &mut out);
            assert!(assignment_is_valid(&out, &caps, &cands), "round {round}");
            assert_eq!(
                out.iter().flatten().count(),
                cold_served(&caps, &cands),
                "round {round}"
            );
        }
    }

    #[test]
    fn unkeyed_schedule_is_a_global_maximum() {
        let caps = vec![1, 1];
        let cands = vec![vec![b(0), b(1)], vec![b(0)], vec![b(1)]];
        let mut matcher = ShardedMatcher::new(4);
        let out = matcher.schedule(&caps, &cands);
        assert_eq!(out.iter().flatten().count(), 2);
        assert!(assignment_is_valid(&out, &caps, &cands));
    }

    #[test]
    fn idle_shards_are_evicted() {
        let caps = vec![1u32; 4];
        let mut matcher = ShardedMatcher::new(1);
        let mut out = Vec::new();
        for round in 0u32..400 {
            // Each round uses a fresh video id: shards never repeat.
            let keys = vec![key(0, round, 0)];
            let cands = vec![vec![b(round % 4)]];
            matcher.schedule_keyed(&caps, &keys, &cands, &mut out);
        }
        assert!(
            matcher.pooled_shards() < 400,
            "pooled {}",
            matcher.pooled_shards()
        );
    }
}
