//! Per-video swarm tracking.
//!
//! A *swarm* is the population of boxes currently viewing the same video. The
//! tracker maintains, per video: the membership (with entry rounds), the
//! entry counter used by the preloading strategy ("the p-th box to enter the
//! swarm preloads stripe p mod c, so all stripes of a video are equally
//! preloaded"), and growth statistics used to verify the `µ` bound.

use std::collections::HashMap;
use vod_core::{BoxId, StripeIndex, VideoId};

/// One video's swarm.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Swarm {
    /// Members and their entry rounds, in entry order.
    members: Vec<(BoxId, u64)>,
    /// Total number of boxes that ever entered (the preload counter).
    entered_total: u64,
    /// Peak simultaneous size.
    peak_size: usize,
}

impl Swarm {
    /// Current number of members.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Peak simultaneous size observed.
    pub fn peak_size(&self) -> usize {
        self.peak_size
    }

    /// Total number of boxes that ever joined.
    pub fn entered_total(&self) -> u64 {
        self.entered_total
    }

    /// Members and entry rounds, in entry order.
    pub fn members(&self) -> &[(BoxId, u64)] {
        &self.members
    }
}

/// Tracks all swarms of the system.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SwarmTracker {
    swarms: HashMap<VideoId, Swarm>,
    stripes_per_video: u16,
}

impl SwarmTracker {
    /// Creates a tracker for videos cut into `c` stripes.
    pub fn new(c: u16) -> Self {
        assert!(c > 0, "stripe count must be positive");
        SwarmTracker {
            swarms: HashMap::new(),
            stripes_per_video: c,
        }
    }

    /// Registers that `box_id` enters the swarm of `video` at `round` and
    /// returns the stripe index it must preload (`entry_counter mod c`).
    pub fn join(&mut self, video: VideoId, box_id: BoxId, round: u64) -> StripeIndex {
        let swarm = self.swarms.entry(video).or_default();
        let stripe = (swarm.entered_total % self.stripes_per_video as u64) as StripeIndex;
        swarm.entered_total += 1;
        swarm.members.push((box_id, round));
        swarm.peak_size = swarm.peak_size.max(swarm.members.len());
        stripe
    }

    /// Removes `box_id` from the swarm of `video` (its playback ended).
    pub fn leave(&mut self, video: VideoId, box_id: BoxId) {
        if let Some(swarm) = self.swarms.get_mut(&video) {
            if let Some(pos) = swarm.members.iter().position(|(b, _)| *b == box_id) {
                swarm.members.remove(pos);
            }
        }
    }

    /// The swarm of `video`, if any box ever joined it.
    pub fn swarm(&self, video: VideoId) -> Option<&Swarm> {
        self.swarms.get(&video)
    }

    /// Current size of `video`'s swarm.
    pub fn size(&self, video: VideoId) -> usize {
        self.swarms.get(&video).map(Swarm::size).unwrap_or(0)
    }

    /// Number of videos with a non-empty swarm.
    pub fn active_swarms(&self) -> usize {
        self.swarms.values().filter(|s| s.size() > 0).count()
    }

    /// Total number of boxes currently viewing something.
    pub fn total_viewers(&self) -> usize {
        self.swarms.values().map(Swarm::size).sum()
    }

    /// Largest current swarm size across all videos.
    pub fn max_swarm_size(&self) -> usize {
        self.swarms.values().map(Swarm::size).max().unwrap_or(0)
    }

    /// Iterator over `(video, swarm)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (VideoId, &Swarm)> {
        self.swarms.iter().map(|(&v, s)| (v, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preload_stripes_rotate_modulo_c() {
        let mut t = SwarmTracker::new(3);
        let v = VideoId(0);
        let stripes: Vec<StripeIndex> = (0..7).map(|i| t.join(v, BoxId(i), i as u64)).collect();
        assert_eq!(stripes, vec![0, 1, 2, 0, 1, 2, 0]);
        assert_eq!(t.size(v), 7);
        assert_eq!(t.swarm(v).unwrap().entered_total(), 7);
    }

    #[test]
    fn rotation_continues_across_departures() {
        let mut t = SwarmTracker::new(4);
        let v = VideoId(1);
        assert_eq!(t.join(v, BoxId(0), 0), 0);
        assert_eq!(t.join(v, BoxId(1), 0), 1);
        t.leave(v, BoxId(0));
        // Counter keeps going: the next joiner preloads stripe 2, not 0.
        assert_eq!(t.join(v, BoxId(2), 5), 2);
        assert_eq!(t.size(v), 2);
    }

    #[test]
    fn peak_size_tracks_maximum() {
        let mut t = SwarmTracker::new(2);
        let v = VideoId(0);
        t.join(v, BoxId(0), 0);
        t.join(v, BoxId(1), 0);
        t.join(v, BoxId(2), 1);
        t.leave(v, BoxId(0));
        t.leave(v, BoxId(1));
        assert_eq!(t.size(v), 1);
        assert_eq!(t.swarm(v).unwrap().peak_size(), 3);
    }

    #[test]
    fn global_statistics() {
        let mut t = SwarmTracker::new(2);
        t.join(VideoId(0), BoxId(0), 0);
        t.join(VideoId(0), BoxId(1), 0);
        t.join(VideoId(1), BoxId(2), 0);
        assert_eq!(t.active_swarms(), 2);
        assert_eq!(t.total_viewers(), 3);
        assert_eq!(t.max_swarm_size(), 2);
        t.leave(VideoId(1), BoxId(2));
        assert_eq!(t.active_swarms(), 1);
    }

    #[test]
    fn leaving_an_unknown_swarm_is_a_noop() {
        let mut t = SwarmTracker::new(2);
        t.leave(VideoId(9), BoxId(0));
        assert_eq!(t.size(VideoId(9)), 0);
    }

    #[test]
    fn members_keep_entry_rounds() {
        let mut t = SwarmTracker::new(2);
        let v = VideoId(0);
        t.join(v, BoxId(4), 10);
        t.join(v, BoxId(5), 12);
        let members = t.swarm(v).unwrap().members();
        assert_eq!(members, &[(BoxId(4), 10), (BoxId(5), 12)]);
    }
}
