//! Adversarial demand generators.
//!
//! The paper's impossibility results are driven by explicit worst-case demand
//! sequences; this module implements the two the text describes:
//!
//! * [`NeverOwnedAttack`] — Section 1.3: every box always requests a video it
//!   stores *no data of*, which defeats any system with `u < 1` as soon as
//!   the catalog exceeds `d_max/ℓ` videos (aggregate demand `n` exceeds
//!   aggregate upload `u·n`).
//! * [`PoorBoxesSameVideo`] — Section 4: all poor boxes pile onto the same
//!   video at maximal swarm growth while the rich boxes are kept busy on
//!   videos they do not possess, exhibiting the `u ≥ 1 + Δ(1)/n` necessary
//!   condition for heterogeneous systems.

use crate::demand::{DemandGenerator, OccupancyView, SwarmGrowthLimiter, VideoDemand};
use vod_core::{BoxId, Catalog, Placement, VideoId};

/// Section 1.3's adversary: each free box demands a video it holds no data
/// of (falling back to the globally least-replicated video if it holds data
/// of everything).
#[derive(Clone, Debug)]
pub struct NeverOwnedAttack {
    /// For each box, the videos it stores no stripe of, precomputed from the
    /// static placement.
    unowned: Vec<Vec<VideoId>>,
    /// Round-robin cursor per box so successive demands rotate through the
    /// box's unowned videos.
    cursor: Vec<usize>,
    limiter: SwarmGrowthLimiter,
}

impl NeverOwnedAttack {
    /// Builds the attack against a specific placement.
    pub fn new(placement: &Placement, catalog: &Catalog, mu: f64) -> Self {
        let c = catalog.stripes_per_video();
        let n = placement.box_count();
        let mut unowned = Vec::with_capacity(n);
        for b in 0..n {
            let id = BoxId(b as u32);
            let list: Vec<VideoId> = catalog
                .video_ids()
                .filter(|&v| !placement.stores_any_of(id, v, c))
                .collect();
            unowned.push(list);
        }
        NeverOwnedAttack {
            unowned,
            cursor: vec![0; n],
            limiter: SwarmGrowthLimiter::new(catalog.len(), mu),
        }
    }

    /// Number of boxes for which the attack found at least one unowned video.
    pub fn vulnerable_boxes(&self) -> usize {
        self.unowned.iter().filter(|l| !l.is_empty()).count()
    }

    /// True when every box owns data of every video (the attack has no
    /// leverage — the full-replication regime).
    pub fn is_toothless(&self) -> bool {
        self.vulnerable_boxes() == 0
    }
}

impl DemandGenerator for NeverOwnedAttack {
    fn demands_at(&mut self, round: u64, occupancy: &dyn OccupancyView) -> Vec<VideoDemand> {
        self.limiter.advance_to(round);
        let mut demands = Vec::new();
        for b in occupancy.free_boxes() {
            let list = &self.unowned[b.index()];
            if list.is_empty() {
                continue;
            }
            // Rotate through the unowned videos, skipping those whose swarm
            // cannot accept a new viewer this round.
            let len = list.len();
            let start = self.cursor[b.index()];
            for offset in 0..len {
                let video = list[(start + offset) % len];
                if self.limiter.admit(video, 1) == 1 {
                    demands.push(VideoDemand::new(b, video, round));
                    self.cursor[b.index()] = (start + offset + 1) % len;
                    break;
                }
            }
        }
        demands
    }

    fn name(&self) -> &'static str {
        "never-owned-attack"
    }
}

/// Section 4's adversary against heterogeneous systems: the poor boxes all
/// demand one target video (joining as fast as the growth bound allows) while
/// every rich box is sent to a video it does not possess.
#[derive(Clone, Debug)]
pub struct PoorBoxesSameVideo {
    /// Poor boxes, in the order they will join the target swarm.
    poor: Vec<BoxId>,
    /// The video all poor boxes converge on.
    target: VideoId,
    /// For each rich box, a video it holds no data of (if any).
    rich_unowned: Vec<(BoxId, Option<VideoId>)>,
    limiter: SwarmGrowthLimiter,
    next_poor: usize,
}

impl PoorBoxesSameVideo {
    /// Builds the attack: `poor` boxes converge on `target`; rich boxes are
    /// occupied with videos they do not store (looked up in `placement`).
    pub fn new(
        poor: Vec<BoxId>,
        rich: Vec<BoxId>,
        target: VideoId,
        placement: &Placement,
        catalog: &Catalog,
        mu: f64,
    ) -> Self {
        let c = catalog.stripes_per_video();
        let rich_unowned = rich
            .into_iter()
            .map(|b| {
                let video = catalog
                    .video_ids()
                    .find(|&v| v != target && !placement.stores_any_of(b, v, c));
                (b, video)
            })
            .collect();
        PoorBoxesSameVideo {
            poor,
            target,
            rich_unowned,
            limiter: SwarmGrowthLimiter::new(catalog.len(), mu),
            next_poor: 0,
        }
    }

    /// The video targeted by the poor boxes.
    pub fn target(&self) -> VideoId {
        self.target
    }

    /// How many poor boxes have joined the target swarm so far.
    pub fn joined(&self) -> usize {
        self.next_poor
    }
}

impl DemandGenerator for PoorBoxesSameVideo {
    fn demands_at(&mut self, round: u64, occupancy: &dyn OccupancyView) -> Vec<VideoDemand> {
        self.limiter.advance_to(round);
        let mut demands = Vec::new();

        // Rich boxes start (once) on a video they do not own.
        if round == 0 {
            for (b, video) in &self.rich_unowned {
                if let Some(v) = video {
                    if occupancy.is_free(*b) && self.limiter.admit(*v, 1) == 1 {
                        demands.push(VideoDemand::new(*b, *v, round));
                    }
                }
            }
        }

        // Poor boxes join the target swarm at the maximal admissible rate.
        while self.next_poor < self.poor.len() {
            let b = self.poor[self.next_poor];
            if !occupancy.is_free(b) {
                self.next_poor += 1;
                continue;
            }
            if self.limiter.admit(self.target, 1) == 0 {
                break; // growth bound exhausted for this round
            }
            demands.push(VideoDemand::new(b, self.target, round));
            self.next_poor += 1;
        }
        demands
    }

    fn name(&self) -> &'static str {
        "poor-boxes-same-video"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vod_core::{
        Allocator, Bandwidth, BoxSet, FullReplicationAllocator, RandomPermutationAllocator,
        StorageSlots,
    };

    fn small_system(m: usize) -> (BoxSet, Catalog, Placement) {
        let boxes =
            BoxSet::homogeneous(8, Bandwidth::from_streams(1.5), StorageSlots::from_slots(8));
        let catalog = Catalog::uniform(m, 60, 4);
        let mut rng = StdRng::seed_from_u64(1);
        let placement = RandomPermutationAllocator::new(1)
            .allocate(&boxes, &catalog, &mut rng)
            .unwrap();
        (boxes, catalog, placement)
    }

    #[test]
    fn never_owned_attack_targets_unowned_videos() {
        let (_, catalog, placement) = small_system(16);
        let mut attack = NeverOwnedAttack::new(&placement, &catalog, 2.0);
        assert!(attack.vulnerable_boxes() > 0);
        let free = vec![true; 8];
        let demands = attack.demands_at(0, &free);
        assert!(!demands.is_empty());
        for d in &demands {
            assert!(
                !placement.stores_any_of(d.box_id, d.video, 4),
                "box {} was sent to a video it owns",
                d.box_id
            );
        }
    }

    #[test]
    fn never_owned_attack_is_toothless_under_full_replication() {
        let boxes =
            BoxSet::homogeneous(4, Bandwidth::from_streams(0.8), StorageSlots::from_slots(8));
        let catalog = Catalog::uniform(8, 60, 4);
        let mut rng = StdRng::seed_from_u64(2);
        let placement = FullReplicationAllocator::new()
            .allocate(&boxes, &catalog, &mut rng)
            .unwrap();
        let mut attack = NeverOwnedAttack::new(&placement, &catalog, 2.0);
        assert!(attack.is_toothless());
        let free = vec![true; 4];
        assert!(attack.demands_at(0, &free).is_empty());
    }

    #[test]
    fn never_owned_attack_respects_occupancy() {
        let (_, catalog, placement) = small_system(16);
        let mut attack = NeverOwnedAttack::new(&placement, &catalog, 2.0);
        let free = vec![false; 8];
        assert!(attack.demands_at(0, &free).is_empty());
    }

    #[test]
    fn never_owned_attack_emits_at_most_one_demand_per_box() {
        let (_, catalog, placement) = small_system(16);
        let mut attack = NeverOwnedAttack::new(&placement, &catalog, 2.0);
        let free = vec![true; 8];
        let demands = attack.demands_at(0, &free);
        let mut boxes: Vec<BoxId> = demands.iter().map(|d| d.box_id).collect();
        boxes.sort();
        boxes.dedup();
        assert_eq!(boxes.len(), demands.len());
    }

    #[test]
    fn poor_boxes_attack_grows_with_mu() {
        let (_, catalog, placement) = small_system(16);
        let poor: Vec<BoxId> = (0..6).map(BoxId).collect();
        let rich: Vec<BoxId> = (6..8).map(BoxId).collect();
        let mut attack = PoorBoxesSameVideo::new(poor, rich, VideoId(0), &placement, &catalog, 2.0);
        let free = vec![true; 8];
        // Round 0: at most ⌈1·2⌉ = 2 poor boxes join (plus the rich decoys).
        let d0 = attack.demands_at(0, &free);
        let poor_joins_0 = d0.iter().filter(|d| d.video == VideoId(0)).count();
        assert_eq!(poor_joins_0, 2);
        // Round 1: swarm is 2, ceiling 4 -> 2 more join.
        let d1 = attack.demands_at(1, &free);
        assert_eq!(d1.iter().filter(|d| d.video == VideoId(0)).count(), 2);
        // Round 2: swarm is 4, ceiling 8 -> the remaining 2 join.
        let d2 = attack.demands_at(2, &free);
        assert_eq!(d2.iter().filter(|d| d.video == VideoId(0)).count(), 2);
        assert_eq!(attack.joined(), 6);
    }

    #[test]
    fn poor_boxes_attack_growth_respects_verifier() {
        let (_, catalog, placement) = small_system(16);
        let poor: Vec<BoxId> = (0..8).map(BoxId).collect();
        let mut attack =
            PoorBoxesSameVideo::new(poor, vec![], VideoId(3), &placement, &catalog, 1.5);
        let free = vec![true; 8];
        let mut joins = Vec::new();
        for round in 0..6 {
            let d = attack.demands_at(round, &free);
            joins.push(d.iter().filter(|x| x.video == VideoId(3)).count());
        }
        assert!(SwarmGrowthLimiter::verify(1.5, &joins).is_ok());
        assert_eq!(joins.iter().sum::<usize>(), 8);
    }
}
