//! Seeded box-churn processes: joins, leaves, crashes, and upload changes.
//!
//! The paper's Theorem 1 is proved against a *fixed* population; production
//! systems are not. This module models a live population over a fixed
//! universe of `n` box identities: every box starts up, sessions end
//! (graceful [`ChurnEvent::Left`]) according to a configurable
//! [`SessionLength`] distribution, boxes crash ([`ChurnEvent::Crashed`])
//! with a per-box per-round hazard, departed boxes come back
//! ([`ChurnEvent::Joined`]) after a uniform down-time, and up boxes rescale
//! their upload ([`ChurnEvent::UploadChanged`]) with a per-round hazard.
//!
//! The model is a pure function of `(config, seed)`: it tracks its own
//! up/down state, consumes randomness in ascending box-id order each round,
//! and therefore emits the exact same event sequence for the same seed —
//! the property the engine's bit-equality gates (and
//! `workload_determinism.rs`) rely on. The simulator applies the events
//! through its relay-event path so membership changes interleave with
//! admissions inside the round loop.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vod_core::{Bandwidth, BoxId, BoxSet, NodeBox};

/// Distribution of a box's session length (rounds from join to graceful
/// leave).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SessionLength {
    /// Sessions never end on their own (only crashes remove boxes).
    Unbounded,
    /// Memoryless sessions: each round an up box leaves with probability
    /// `leave_rate` (geometric session length with mean `1/leave_rate`).
    Geometric {
        /// Per-box per-round leave hazard in `[0, 1]`.
        leave_rate: f64,
    },
    /// Session length drawn uniformly from `[min, max]` rounds at join.
    Uniform {
        /// Shortest session, in rounds (clamped to ≥ 1).
        min: u64,
        /// Longest session, in rounds.
        max: u64,
    },
}

/// One membership or capacity event emitted by the [`ChurnModel`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ChurnEvent {
    /// A departed box came back online with the given description (its
    /// storage is intact in hardware but its catalog replicas are stale —
    /// the engine decides what survives).
    Joined(NodeBox),
    /// A box left gracefully at the end of its session.
    Left(BoxId),
    /// A box failed abruptly mid-session. The engine treats crashes like
    /// leaves (the round granularity hides the difference); the distinction
    /// is kept for rate accounting and reports.
    Crashed(BoxId),
    /// An up box's upload capacity changed to the given value.
    UploadChanged(BoxId, Bandwidth),
}

impl ChurnEvent {
    /// The box the event concerns.
    pub fn box_id(&self) -> BoxId {
        match *self {
            ChurnEvent::Joined(node) => node.id,
            ChurnEvent::Left(b) | ChurnEvent::Crashed(b) => b,
            ChurnEvent::UploadChanged(b, _) => b,
        }
    }

    /// True for [`ChurnEvent::Left`] and [`ChurnEvent::Crashed`].
    pub fn is_departure(&self) -> bool {
        matches!(self, ChurnEvent::Left(_) | ChurnEvent::Crashed(_))
    }
}

/// Cumulative event counts and exposure, for observed-rate checks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChurnCounts {
    /// Rejoins emitted.
    pub joins: u64,
    /// Graceful leaves emitted.
    pub leaves: u64,
    /// Crashes emitted.
    pub crashes: u64,
    /// Upload changes emitted.
    pub upload_changes: u64,
    /// Sum over rounds of boxes that were up at the start of the round
    /// (the exposure denominator for per-box per-round rates).
    pub up_box_rounds: u64,
}

impl ChurnCounts {
    /// Observed per-box per-round crash rate.
    pub fn crash_rate(&self) -> f64 {
        self.crashes as f64 / (self.up_box_rounds.max(1)) as f64
    }

    /// Observed per-box per-round graceful-leave rate.
    pub fn leave_rate(&self) -> f64 {
        self.leaves as f64 / (self.up_box_rounds.max(1)) as f64
    }

    /// Observed per-box per-round upload-change rate.
    pub fn upload_change_rate(&self) -> f64 {
        self.upload_changes as f64 / (self.up_box_rounds.max(1)) as f64
    }
}

#[derive(Clone, Copy, Debug)]
enum BoxState {
    /// Up since `joined_at`; `leave_at` is the scheduled graceful-leave
    /// round for draw-at-join session distributions (`None` = hazard-based
    /// or unbounded).
    Up { leave_at: Option<u64> },
    /// Down until `rejoin_at`.
    Down { rejoin_at: u64 },
}

/// Seeded churn process over a fixed universe of box identities.
///
/// ```
/// use vod_core::{Bandwidth, BoxSet, StorageSlots};
/// use vod_workloads::{ChurnModel, SessionLength};
///
/// let boxes = BoxSet::homogeneous(8, Bandwidth::from_streams(1.5), StorageSlots::from_slots(16));
/// let mut churn = ChurnModel::new(&boxes, 42)
///     .with_session(SessionLength::Geometric { leave_rate: 0.1 })
///     .with_crash_rate(0.02)
///     .with_rejoin_delay(2, 5);
/// let mut events = Vec::new();
/// for round in 0..20 {
///     churn.events_into(round, &mut events);
///     // feed `events` to the simulator …
/// }
/// assert!(churn.counts().leaves + churn.counts().crashes > 0);
/// ```
#[derive(Clone, Debug)]
pub struct ChurnModel {
    session: SessionLength,
    crash_rate: f64,
    rejoin_min: u64,
    rejoin_max: u64,
    upload_change_rate: f64,
    /// Multipliers applied to a box's *base* upload when its capacity
    /// changes (so a heterogeneous fleet keeps its shape).
    upload_scales: Vec<f64>,
    /// Departures are suppressed while the up population is at this floor.
    min_up: usize,
    rng: StdRng,
    /// Base (construction-time) description per box; upload changes rescale
    /// from these, never compound.
    base: Vec<NodeBox>,
    /// Current description per box (tracks upload changes across rejoins).
    current: Vec<NodeBox>,
    state: Vec<BoxState>,
    up: usize,
    next_round: u64,
    counts: ChurnCounts,
}

impl ChurnModel {
    /// Creates a quiescent model (no churn until rates are configured) over
    /// the given population, all boxes up.
    pub fn new(boxes: &BoxSet, seed: u64) -> Self {
        let base: Vec<NodeBox> = boxes.iter().copied().collect();
        ChurnModel {
            session: SessionLength::Unbounded,
            crash_rate: 0.0,
            rejoin_min: 1,
            rejoin_max: 1,
            upload_change_rate: 0.0,
            upload_scales: vec![1.0],
            min_up: 1,
            rng: StdRng::seed_from_u64(seed),
            current: base.clone(),
            state: vec![BoxState::Up { leave_at: None }; base.len()],
            up: base.len(),
            base,
            next_round: 0,
            counts: ChurnCounts::default(),
        }
    }

    /// Sets the session-length distribution governing graceful leaves.
    pub fn with_session(mut self, session: SessionLength) -> Self {
        if let SessionLength::Geometric { leave_rate } = session {
            assert!((0.0..=1.0).contains(&leave_rate), "leave rate in [0,1]");
        }
        if let SessionLength::Uniform { min, max } = session {
            assert!(min <= max, "session range must be non-empty");
        }
        self.session = session;
        self
    }

    /// Sets the per-box per-round crash hazard.
    pub fn with_crash_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "crash rate in [0,1]");
        self.crash_rate = rate;
        self
    }

    /// Down boxes rejoin after a uniform `[min, max]` rounds (min ≥ 1).
    pub fn with_rejoin_delay(mut self, min: u64, max: u64) -> Self {
        assert!(min <= max, "rejoin range must be non-empty");
        self.rejoin_min = min.max(1);
        self.rejoin_max = max.max(1);
        self
    }

    /// Up boxes rescale their upload with the given per-round hazard; the
    /// new upload is `base · scale` for a uniformly drawn scale.
    pub fn with_upload_churn(mut self, rate: f64, scales: Vec<f64>) -> Self {
        assert!((0.0..=1.0).contains(&rate), "upload-change rate in [0,1]");
        assert!(!scales.is_empty(), "at least one upload scale");
        self.upload_change_rate = rate;
        self.upload_scales = scales;
        self
    }

    /// Departures (leaves and crashes) are suppressed while at most `min`
    /// boxes are up, so the system never empties. Defaults to 1.
    pub fn with_min_up(mut self, min: usize) -> Self {
        self.min_up = min;
        self
    }

    /// Number of box identities in the universe.
    pub fn box_count(&self) -> usize {
        self.base.len()
    }

    /// True when `box_id` is currently up.
    pub fn is_up(&self, box_id: BoxId) -> bool {
        matches!(self.state[box_id.index()], BoxState::Up { .. })
    }

    /// Number of boxes currently up.
    pub fn up_count(&self) -> usize {
        self.up
    }

    /// The current description of a box (upload changes included).
    pub fn node(&self, box_id: BoxId) -> NodeBox {
        self.current[box_id.index()]
    }

    /// Cumulative event counts and exposure.
    pub fn counts(&self) -> &ChurnCounts {
        &self.counts
    }

    fn draw_session_end(&mut self, round: u64) -> Option<u64> {
        match self.session {
            SessionLength::Unbounded | SessionLength::Geometric { .. } => None,
            SessionLength::Uniform { min, max } => {
                Some(round + self.rng.gen_range(min.max(1)..=max.max(1)))
            }
        }
    }

    /// The events of round `round`, in ascending box-id order (one pass:
    /// rejoins first per box, then crash, then leave, then upload change).
    /// Rounds must be visited in strictly increasing order.
    pub fn events_at(&mut self, round: u64) -> Vec<ChurnEvent> {
        let mut out = Vec::new();
        self.events_into(round, &mut out);
        out
    }

    /// Buffer-reusing variant of [`ChurnModel::events_at`] (`out` is
    /// cleared first).
    pub fn events_into(&mut self, round: u64, out: &mut Vec<ChurnEvent>) {
        out.clear();
        assert!(
            round >= self.next_round,
            "churn rounds must be non-decreasing"
        );
        // Skipped rounds still elapse for scheduled rejoins/leaves but draw
        // no hazards (the engine drives every round, so this only matters
        // for tests that sample sparsely).
        self.next_round = round + 1;
        // Draw-at-join session ends for the initial population are drawn on
        // the first round the model runs, in id order.
        if round == 0 {
            if let SessionLength::Uniform { .. } = self.session {
                for i in 0..self.state.len() {
                    if let BoxState::Up { leave_at: None } = self.state[i] {
                        let end = self.draw_session_end(0);
                        self.state[i] = BoxState::Up { leave_at: end };
                    }
                }
            }
        }
        self.counts.up_box_rounds += self.up as u64;
        for i in 0..self.state.len() {
            let id = BoxId(i as u32);
            match self.state[i] {
                BoxState::Down { rejoin_at } => {
                    if rejoin_at <= round {
                        let end = self.draw_session_end(round);
                        self.state[i] = BoxState::Up { leave_at: end };
                        self.up += 1;
                        self.counts.joins += 1;
                        out.push(ChurnEvent::Joined(self.current[i]));
                    }
                }
                BoxState::Up { leave_at } => {
                    let may_depart = self.up > self.min_up;
                    if may_depart && self.crash_rate > 0.0 && self.rng.gen_bool(self.crash_rate) {
                        self.depart(i, round);
                        self.counts.crashes += 1;
                        out.push(ChurnEvent::Crashed(id));
                        continue;
                    }
                    let leaves = match self.session {
                        SessionLength::Unbounded => false,
                        SessionLength::Geometric { leave_rate } => {
                            may_depart && leave_rate > 0.0 && self.rng.gen_bool(leave_rate)
                        }
                        SessionLength::Uniform { .. } => {
                            may_depart && leave_at.is_some_and(|end| end <= round)
                        }
                    };
                    if leaves {
                        self.depart(i, round);
                        self.counts.leaves += 1;
                        out.push(ChurnEvent::Left(id));
                        continue;
                    }
                    if self.upload_change_rate > 0.0 && self.rng.gen_bool(self.upload_change_rate) {
                        let scale =
                            self.upload_scales[self.rng.gen_range(0..self.upload_scales.len())];
                        let upload =
                            Bandwidth::from_streams(self.base[i].upload.as_streams() * scale);
                        if upload != self.current[i].upload {
                            self.current[i].upload = upload;
                            self.counts.upload_changes += 1;
                            out.push(ChurnEvent::UploadChanged(id, upload));
                        }
                    }
                }
            }
        }
    }

    fn depart(&mut self, i: usize, round: u64) {
        let delay = self.rng.gen_range(self.rejoin_min..=self.rejoin_max);
        self.state[i] = BoxState::Down {
            rejoin_at: round + delay,
        };
        self.up -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vod_core::StorageSlots;

    fn fleet(n: usize) -> BoxSet {
        BoxSet::homogeneous(n, Bandwidth::from_streams(1.5), StorageSlots::from_slots(8))
    }

    fn run(model: &mut ChurnModel, rounds: u64) -> Vec<(u64, Vec<ChurnEvent>)> {
        (0..rounds).map(|r| (r, model.events_at(r))).collect()
    }

    #[test]
    fn quiescent_model_emits_nothing() {
        let mut model = ChurnModel::new(&fleet(6), 1);
        for (_, events) in run(&mut model, 30) {
            assert!(events.is_empty());
        }
        assert_eq!(model.up_count(), 6);
        assert_eq!(model.counts().up_box_rounds, 180);
    }

    #[test]
    fn same_seed_same_event_sequence() {
        let make = |seed| {
            let mut m = ChurnModel::new(&fleet(12), seed)
                .with_session(SessionLength::Geometric { leave_rate: 0.15 })
                .with_crash_rate(0.05)
                .with_rejoin_delay(1, 4)
                .with_upload_churn(0.1, vec![0.5, 1.0, 2.0]);
            run(&mut m, 60)
        };
        assert_eq!(make(7), make(7));
        assert_ne!(make(7), make(8));
    }

    #[test]
    fn departed_boxes_rejoin_within_the_configured_delay() {
        let mut model = ChurnModel::new(&fleet(4), 3)
            .with_session(SessionLength::Uniform { min: 2, max: 3 })
            .with_rejoin_delay(2, 2);
        let mut down_since: Vec<Option<u64>> = vec![None; 4];
        for round in 0..40 {
            for event in model.events_at(round) {
                match event {
                    ChurnEvent::Left(b) | ChurnEvent::Crashed(b) => {
                        down_since[b.index()] = Some(round);
                    }
                    ChurnEvent::Joined(node) => {
                        let since = down_since[node.id.index()].expect("was down");
                        assert_eq!(round - since, 2, "rejoin after exactly 2 rounds");
                        down_since[node.id.index()] = None;
                    }
                    ChurnEvent::UploadChanged(..) => {}
                }
            }
        }
        assert!(model.counts().leaves > 0);
        assert!(model.counts().joins > 0);
    }

    #[test]
    fn min_up_floor_suppresses_departures() {
        let mut model = ChurnModel::new(&fleet(5), 9)
            .with_session(SessionLength::Geometric { leave_rate: 0.9 })
            .with_rejoin_delay(10, 10)
            .with_min_up(3);
        for round in 0..50 {
            model.events_at(round);
            assert!(model.up_count() >= 3, "round {round}");
        }
    }

    #[test]
    fn upload_changes_rescale_from_base_and_report_current_node() {
        let mut model = ChurnModel::new(&fleet(3), 5).with_upload_churn(1.0, vec![2.0]);
        let events = model.events_at(0);
        // Every box doubles exactly once; the second round changes nothing
        // (2.0 × base is already current).
        assert_eq!(events.len(), 3);
        for event in &events {
            match *event {
                ChurnEvent::UploadChanged(b, upload) => {
                    assert_eq!(upload, Bandwidth::from_streams(3.0));
                    assert_eq!(model.node(b).upload, upload);
                }
                _ => panic!("unexpected event {event:?}"),
            }
        }
        assert!(model.events_at(1).is_empty());
        assert_eq!(model.counts().upload_changes, 3);
    }

    #[test]
    fn observed_rates_track_configured_hazards() {
        let mut model = ChurnModel::new(&fleet(200), 17)
            .with_session(SessionLength::Geometric { leave_rate: 0.05 })
            .with_crash_rate(0.02)
            .with_rejoin_delay(1, 2)
            .with_upload_churn(0.04, vec![0.5, 1.0, 1.5]);
        for round in 0..400 {
            model.events_at(round);
        }
        let counts = model.counts();
        assert!(
            (counts.crash_rate() - 0.02).abs() < 0.005,
            "crash rate {}",
            counts.crash_rate()
        );
        assert!(
            (counts.leave_rate() - 0.05).abs() < 0.01,
            "leave rate {}",
            counts.leave_rate()
        );
        // An upload-change draw that lands on the current scale emits no
        // event, so the observed rate is below the hazard but not by much
        // with three distinct scales.
        assert!(
            counts.upload_change_rate() > 0.02 && counts.upload_change_rate() <= 0.04,
            "upload-change rate {}",
            counts.upload_change_rate()
        );
    }

    #[test]
    fn joined_event_carries_intact_storage() {
        let mut model = ChurnModel::new(&fleet(3), 21)
            .with_session(SessionLength::Uniform { min: 1, max: 1 })
            .with_rejoin_delay(1, 1)
            .with_min_up(0);
        let mut saw_join = false;
        for round in 0..10 {
            for event in model.events_at(round) {
                if let ChurnEvent::Joined(node) = event {
                    assert_eq!(node.storage, StorageSlots::from_slots(8));
                    saw_join = true;
                }
            }
        }
        assert!(saw_join);
    }
}
