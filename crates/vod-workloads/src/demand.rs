//! Video demands and the demand-generator interface.
//!
//! A *demand* is a user asking their box to play a video at a given round.
//! The paper's admissibility constraints are: at most one video per box at a
//! time, and the per-video swarm growth is bounded by `µ` per round. The
//! generators in this crate produce demand streams under those constraints;
//! the simulator (`vod-sim`) turns demands into stripe requests according to
//! the preloading strategy.

use vod_core::json::{obj, Json, JsonCodec, JsonError};
use vod_core::{BoxId, VideoId};

/// One user demand: `box_id` starts watching `video` during round `round`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct VideoDemand {
    /// The box on which the video is to be played.
    pub box_id: BoxId,
    /// The demanded video.
    pub video: VideoId,
    /// Arrival round of the demand.
    pub round: u64,
}

impl JsonCodec for VideoDemand {
    fn to_json(&self) -> Json {
        obj(vec![
            ("box_id", self.box_id.to_json()),
            ("video", self.video.to_json()),
            ("round", self.round.to_json()),
        ])
    }
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(VideoDemand {
            box_id: BoxId::from_json(json.field("box_id")?)?,
            video: VideoId::from_json(json.field("video")?)?,
            round: u64::from_json(json.field("round")?)?,
        })
    }
}

impl VideoDemand {
    /// Creates a demand.
    pub const fn new(box_id: BoxId, video: VideoId, round: u64) -> Self {
        VideoDemand {
            box_id,
            video,
            round,
        }
    }
}

/// Read-only view of which boxes are currently free (not playing a video),
/// supplied by the simulator to the demand generators each round so that they
/// respect the "at most one video per box" constraint.
pub trait OccupancyView {
    /// True when `box_id` is free to start a new video this round.
    fn is_free(&self, box_id: BoxId) -> bool;
    /// Total number of boxes in the system.
    fn box_count(&self) -> usize;

    /// Identifiers of all currently free boxes, in increasing order.
    fn free_boxes(&self) -> Vec<BoxId> {
        (0..self.box_count() as u32)
            .map(BoxId)
            .filter(|&b| self.is_free(b))
            .collect()
    }
}

/// A plain boolean-vector occupancy view (`true` = free).
impl OccupancyView for Vec<bool> {
    fn is_free(&self, box_id: BoxId) -> bool {
        self.get(box_id.index()).copied().unwrap_or(false)
    }
    fn box_count(&self) -> usize {
        self.len()
    }
}

/// A borrowed boolean-slice occupancy view (`true` = free).
impl OccupancyView for &[bool] {
    fn is_free(&self, box_id: BoxId) -> bool {
        self.get(box_id.index()).copied().unwrap_or(false)
    }
    fn box_count(&self) -> usize {
        self.len()
    }
}

/// A source of video demands, driven round by round.
pub trait DemandGenerator {
    /// Demands arriving during round `round`, restricted to boxes reported
    /// free by `occupancy`. Implementations must not emit two demands for the
    /// same box in the same round.
    fn demands_at(&mut self, round: u64, occupancy: &dyn OccupancyView) -> Vec<VideoDemand>;

    /// Buffer-reusing variant of [`DemandGenerator::demands_at`]: writes the
    /// round's demands into `out` (cleared first). The default delegates to
    /// `demands_at`; generators with a cheap internal path may override it
    /// to avoid the per-round allocation. The simulator calls this form with
    /// a pooled buffer.
    fn demands_into(
        &mut self,
        round: u64,
        occupancy: &dyn OccupancyView,
        out: &mut Vec<VideoDemand>,
    ) {
        out.clear();
        out.extend(self.demands_at(round, occupancy));
    }

    /// A short human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Tracks per-video swarm sizes and enforces the paper's growth bound
/// `f(t+1) ≤ ⌈max{f(t), 1}·µ⌉`.
///
/// Generators use [`SwarmGrowthLimiter::admit`] to cap how many new viewers
/// may join a video's swarm in the current round; the simulator uses
/// [`SwarmGrowthLimiter::verify`] to assert that a demand trace respects the
/// bound.
#[derive(Clone, Debug)]
pub struct SwarmGrowthLimiter {
    mu: f64,
    /// Swarm size per video at the end of the previous round.
    previous: Vec<usize>,
    /// New joins recorded for the current round.
    current_joins: Vec<usize>,
    current_round: u64,
}

impl SwarmGrowthLimiter {
    /// Creates a limiter for `videos` videos with growth bound `mu`.
    pub fn new(videos: usize, mu: f64) -> Self {
        assert!(mu >= 1.0, "µ must be at least 1");
        SwarmGrowthLimiter {
            mu,
            previous: vec![0; videos],
            current_joins: vec![0; videos],
            current_round: 0,
        }
    }

    /// The growth bound `µ`.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Moves the limiter to `round`, folding the joins recorded so far into
    /// the per-video swarm sizes. Rounds must be visited in non-decreasing
    /// order; skipped rounds count as rounds with no join (the swarm ceiling
    /// still grows accordingly because growth is per elapsed round).
    pub fn advance_to(&mut self, round: u64) {
        if round <= self.current_round {
            return;
        }
        for v in 0..self.previous.len() {
            self.previous[v] += self.current_joins[v];
            self.current_joins[v] = 0;
        }
        self.current_round = round;
    }

    /// Records that `leaving` viewers left the swarm of `video` (their
    /// playback ended). Departures never violate the growth bound.
    pub fn record_departures(&mut self, video: VideoId, leaving: usize) {
        let p = &mut self.previous[video.index()];
        *p = p.saturating_sub(leaving);
    }

    /// Maximum number of *new* viewers that may still join `video` in the
    /// current round without violating `f(t+1) ≤ ⌈max{f(t),1}·µ⌉`.
    pub fn headroom(&self, video: VideoId) -> usize {
        let f = self.previous[video.index()];
        let ceiling = ((f.max(1)) as f64 * self.mu).ceil() as usize;
        ceiling
            .saturating_sub(f)
            .saturating_sub(self.current_joins[video.index()])
    }

    /// Tries to admit `wanted` new viewers to `video` in the current round;
    /// returns how many were admitted (≤ `wanted`, capped by the headroom).
    pub fn admit(&mut self, video: VideoId, wanted: usize) -> usize {
        let admitted = wanted.min(self.headroom(video));
        self.current_joins[video.index()] += admitted;
        admitted
    }

    /// Current swarm size of `video` (including joins of the current round).
    pub fn swarm_size(&self, video: VideoId) -> usize {
        self.previous[video.index()] + self.current_joins[video.index()]
    }

    /// Verifies that a batch of per-round join counts for one video respects
    /// the growth bound, starting from an empty swarm. Returns the offending
    /// round index on failure.
    pub fn verify(mu: f64, joins_per_round: &[usize]) -> Result<(), usize> {
        let mut f = 0usize;
        for (i, &j) in joins_per_round.iter().enumerate() {
            let ceiling = ((f.max(1)) as f64 * mu).ceil() as usize;
            if f + j > ceiling {
                return Err(i);
            }
            f += j;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_view_on_slice() {
        let free = [true, false, true];
        let view: &[bool] = &free;
        assert!(view.is_free(BoxId(0)));
        assert!(!view.is_free(BoxId(1)));
        assert!(!view.is_free(BoxId(7))); // out of range counts as busy
        assert_eq!(view.free_boxes(), vec![BoxId(0), BoxId(2)]);
    }

    #[test]
    fn limiter_allows_first_viewer_and_bounds_growth() {
        let mut lim = SwarmGrowthLimiter::new(2, 2.0);
        let v = VideoId(0);
        // Empty swarm: ceiling = ⌈1·2⌉ = 2 joins allowed.
        assert_eq!(lim.headroom(v), 2);
        assert_eq!(lim.admit(v, 5), 2);
        assert_eq!(lim.swarm_size(v), 2);
        lim.advance_to(1);
        // f = 2: ceiling 4, headroom 2.
        assert_eq!(lim.headroom(v), 2);
        assert_eq!(lim.admit(v, 1), 1);
        lim.advance_to(2);
        // f = 3: ceiling 6, headroom 3.
        assert_eq!(lim.admit(v, 10), 3);
    }

    #[test]
    fn limiter_handles_departures() {
        let mut lim = SwarmGrowthLimiter::new(1, 1.5);
        let v = VideoId(0);
        lim.admit(v, 1);
        lim.advance_to(1);
        lim.record_departures(v, 1);
        assert_eq!(lim.swarm_size(v), 0);
        // Back to the empty-swarm ceiling ⌈1·1.5⌉ = 2.
        assert_eq!(lim.headroom(v), 2);
    }

    #[test]
    fn advance_is_idempotent_for_same_round() {
        let mut lim = SwarmGrowthLimiter::new(1, 2.0);
        let v = VideoId(0);
        lim.admit(v, 2);
        lim.advance_to(1);
        lim.advance_to(1);
        assert_eq!(lim.swarm_size(v), 2);
    }

    #[test]
    fn verify_accepts_exponential_and_rejects_jump() {
        // Growth exactly doubling each round is fine for µ = 2.
        assert!(SwarmGrowthLimiter::verify(2.0, &[2, 2, 4, 8]).is_ok());
        // A jump beyond the ceiling is flagged at the right index.
        assert_eq!(SwarmGrowthLimiter::verify(2.0, &[2, 5]), Err(1));
        // The very first round allows up to ⌈µ⌉ joins.
        assert_eq!(SwarmGrowthLimiter::verify(1.5, &[3]), Err(0));
        assert!(SwarmGrowthLimiter::verify(1.5, &[2, 1]).is_ok());
    }

    #[test]
    fn demand_construction() {
        let d = VideoDemand::new(BoxId(3), VideoId(7), 12);
        assert_eq!(d.box_id, BoxId(3));
        assert_eq!(d.video, VideoId(7));
        assert_eq!(d.round, 12);
    }
}
