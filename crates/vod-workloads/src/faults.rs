//! Seeded fault-injection processes: flaky uploads, flapping boxes,
//! correlated regional outages, and delivery-drop surges.
//!
//! The paper's matching argument assumes every scheduled connection
//! delivers perfectly; production upload paths do not. This module models
//! the data-path hazards *orthogonally to churn*: a faulted box stays in
//! the population (its replicas, playback, and swarm membership are
//! intact) but its effective upload budget `⌊u_b·c⌋` drops for a window —
//! partially ([`FaultEvent::Degraded`]) or completely
//! ([`FaultEvent::Stalled`], the flapping-box case). Outages can be
//! correlated: a regional outage stalls every box of one group
//! (`box_id mod regions`) at once. On top of the box-level hazards the
//! model carries per-connection delivery hazards — a base drop/timeout
//! rate plus transient [`FaultEvent::DropSurge`] windows — which the
//! engine samples per scheduled connection with a deterministic hash
//! keyed by [`FaultModel::salt`], so outcomes are identical for every
//! scheduler pipeline.
//!
//! Like [`ChurnModel`](crate::ChurnModel), the model is a pure function
//! of `(universe, seed, config)`: it consumes randomness in ascending
//! box-id order each round and emits the exact same event sequence for
//! the same seed — the property the engine's bit-equality gates (and
//! `workload_determinism.rs`) rely on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vod_core::{BoxId, BoxSet};

/// One fault event emitted by the [`FaultModel`] (or scripted by the
/// explorer). Windows carry an absolute expiry round `until`; the engine
/// restores the box when the window closes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// A box's effective upload budget drops to `pct`% of its live
    /// capacity until round `until` (exclusive).
    Degraded {
        /// The degraded box.
        box_id: BoxId,
        /// Remaining capacity in percent (0 = fully stalled).
        pct: u8,
        /// First round the box is back at full capacity.
        until: u64,
    },
    /// A flapping box: it stays in the population (unlike churn) but its
    /// uploads stall completely until round `until`.
    Stalled {
        /// The stalled box.
        box_id: BoxId,
        /// First round the box uploads again.
        until: u64,
    },
    /// A box's fault window is cancelled early (back to full capacity).
    Restored {
        /// The restored box.
        box_id: BoxId,
    },
    /// A transient surge of the per-connection delivery hazards: `add`
    /// parts-per-million are added to both the drop and timeout rates
    /// until round `until`.
    DropSurge {
        /// Additional drop/timeout probability in parts per million.
        add_ppm: u32,
        /// First round the surge is over.
        until: u64,
    },
}

impl FaultEvent {
    /// The box the event concerns, when it is box-level.
    pub fn box_id(&self) -> Option<BoxId> {
        match *self {
            FaultEvent::Degraded { box_id, .. }
            | FaultEvent::Stalled { box_id, .. }
            | FaultEvent::Restored { box_id } => Some(box_id),
            FaultEvent::DropSurge { .. } => None,
        }
    }
}

/// Cumulative event counts and exposure, for observed-rate checks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Independent (non-regional) degradation windows opened.
    pub degradations: u64,
    /// Independent (non-regional) stall windows opened.
    pub stalls: u64,
    /// Regional outages triggered (each stalls a whole box group).
    pub region_outages: u64,
    /// Boxes stalled by regional outages (≥ `region_outages`).
    pub region_stalled_boxes: u64,
    /// Delivery-drop surge windows opened.
    pub drop_surges: u64,
    /// Sum over rounds of boxes that were healthy at the start of the
    /// round (the exposure denominator for per-box per-round rates).
    pub healthy_box_rounds: u64,
    /// Rounds the model has been asked for events.
    pub rounds: u64,
}

impl FaultCounts {
    /// Observed per-box per-round degradation rate.
    pub fn degradation_rate(&self) -> f64 {
        self.degradations as f64 / self.healthy_box_rounds.max(1) as f64
    }

    /// Observed per-box per-round flapping (stall) rate.
    pub fn stall_rate(&self) -> f64 {
        self.stalls as f64 / self.healthy_box_rounds.max(1) as f64
    }

    /// Observed per-round regional-outage rate.
    pub fn region_outage_rate(&self) -> f64 {
        self.region_outages as f64 / self.rounds.max(1) as f64
    }
}

/// Seeded fault process over a fixed universe of box identities.
///
/// ```
/// use vod_core::{Bandwidth, BoxSet, StorageSlots};
/// use vod_workloads::FaultModel;
///
/// let boxes = BoxSet::homogeneous(8, Bandwidth::from_streams(1.5), StorageSlots::from_slots(16));
/// let mut faults = FaultModel::new(&boxes, 42)
///     .with_degradation(0.05, vec![25, 50], 2, 4)
///     .with_flapping(0.02, 1, 3)
///     .with_drop_rate(20_000, 5_000);
/// let mut events = Vec::new();
/// for round in 0..50 {
///     faults.events_into(round, &mut events);
///     // feed `events` to the simulator …
/// }
/// assert!(faults.counts().degradations + faults.counts().stalls > 0);
/// ```
#[derive(Clone, Debug)]
pub struct FaultModel {
    degradation_rate: f64,
    degradation_pcts: Vec<u8>,
    degradation_min: u64,
    degradation_max: u64,
    flap_rate: f64,
    flap_min: u64,
    flap_max: u64,
    region_rate: f64,
    regions: u32,
    region_min: u64,
    region_max: u64,
    drop_ppm: u32,
    timeout_ppm: u32,
    surge_rate: f64,
    surge_ppm: u32,
    surge_min: u64,
    surge_max: u64,
    seed: u64,
    rng: StdRng,
    /// Per-box fault-window expiry (`0` = healthy). Mirrors the engine's
    /// view so hazards only fire on healthy boxes.
    until: Vec<u64>,
    surge_until: u64,
    next_round: u64,
    counts: FaultCounts,
}

impl FaultModel {
    /// Creates a quiescent model (no faults until rates are configured)
    /// over the given population, all boxes healthy.
    pub fn new(boxes: &BoxSet, seed: u64) -> Self {
        FaultModel {
            degradation_rate: 0.0,
            degradation_pcts: vec![50],
            degradation_min: 1,
            degradation_max: 1,
            flap_rate: 0.0,
            flap_min: 1,
            flap_max: 1,
            region_rate: 0.0,
            regions: 1,
            region_min: 1,
            region_max: 1,
            drop_ppm: 0,
            timeout_ppm: 0,
            surge_rate: 0.0,
            surge_ppm: 0,
            surge_min: 1,
            surge_max: 1,
            seed,
            rng: StdRng::seed_from_u64(seed),
            until: vec![0; boxes.len()],
            surge_until: 0,
            next_round: 0,
            counts: FaultCounts::default(),
        }
    }

    /// Healthy boxes degrade with the given per-round hazard: the
    /// remaining capacity percentage is drawn uniformly from `pcts` and
    /// the window length uniformly from `[min, max]` rounds.
    pub fn with_degradation(mut self, rate: f64, pcts: Vec<u8>, min: u64, max: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "degradation rate in [0,1]");
        assert!(!pcts.is_empty(), "at least one degradation level");
        assert!(pcts.iter().all(|&p| p < 100), "degraded pct below 100");
        assert!(min <= max && min >= 1, "window range must be ≥ 1");
        self.degradation_rate = rate;
        self.degradation_pcts = pcts;
        self.degradation_min = min;
        self.degradation_max = max;
        self
    }

    /// Healthy boxes flap (stall completely while staying in the
    /// population) with the given per-round hazard, for a uniform
    /// `[min, max]`-round window.
    pub fn with_flapping(mut self, rate: f64, min: u64, max: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "flap rate in [0,1]");
        assert!(min <= max && min >= 1, "window range must be ≥ 1");
        self.flap_rate = rate;
        self.flap_min = min;
        self.flap_max = max;
        self
    }

    /// Correlated regional outages: each round, with probability `rate`,
    /// one of `regions` box groups (`box_id mod regions`) stalls entirely
    /// for a uniform `[min, max]`-round window.
    pub fn with_region_outages(mut self, rate: f64, regions: u32, min: u64, max: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "outage rate in [0,1]");
        assert!(regions >= 1, "at least one region");
        assert!(min <= max && min >= 1, "window range must be ≥ 1");
        self.region_rate = rate;
        self.regions = regions;
        self.region_min = min;
        self.region_max = max;
        self
    }

    /// Base per-connection delivery hazards in parts per million: a
    /// scheduled connection is dropped with `drop_ppm` and times out with
    /// `timeout_ppm` probability (sampled by the engine with a
    /// deterministic hash keyed by [`FaultModel::salt`]).
    pub fn with_drop_rate(mut self, drop_ppm: u32, timeout_ppm: u32) -> Self {
        assert!(drop_ppm <= 1_000_000, "drop rate in ppm");
        assert!(timeout_ppm <= 1_000_000, "timeout rate in ppm");
        self.drop_ppm = drop_ppm;
        self.timeout_ppm = timeout_ppm;
        self
    }

    /// Transient delivery-hazard surges: each round, with probability
    /// `rate`, both connection hazards gain `add_ppm` for a uniform
    /// `[min, max]`-round window (surges do not stack; a new draw extends
    /// the window).
    pub fn with_drop_surges(mut self, rate: f64, add_ppm: u32, min: u64, max: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "surge rate in [0,1]");
        assert!(add_ppm <= 1_000_000, "surge rate in ppm");
        assert!(min <= max && min >= 1, "window range must be ≥ 1");
        self.surge_rate = rate;
        self.surge_ppm = add_ppm;
        self.surge_min = min;
        self.surge_max = max;
        self
    }

    /// Number of box identities in the universe.
    pub fn box_count(&self) -> usize {
        self.until.len()
    }

    /// Base per-connection drop hazard in parts per million.
    pub fn drop_ppm(&self) -> u32 {
        self.drop_ppm
    }

    /// Base per-connection timeout hazard in parts per million.
    pub fn timeout_ppm(&self) -> u32 {
        self.timeout_ppm
    }

    /// Deterministic salt for the engine's per-connection outcome hash:
    /// derived from the seed alone (splitmix64 finalizer), so the same
    /// seed gives the same delivery outcomes under every scheduler.
    pub fn salt(&self) -> u64 {
        let mut z = self.seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Cumulative event counts and exposure.
    pub fn counts(&self) -> &FaultCounts {
        &self.counts
    }

    /// The events of round `round`, in a fixed draw order (regional
    /// outage first, then per-box hazards in ascending box-id order, then
    /// the surge hazard). Rounds must be visited in non-decreasing order.
    pub fn events_at(&mut self, round: u64) -> Vec<FaultEvent> {
        let mut out = Vec::new();
        self.events_into(round, &mut out);
        out
    }

    /// Buffer-reusing variant of [`FaultModel::events_at`] (`out` is
    /// cleared first).
    pub fn events_into(&mut self, round: u64, out: &mut Vec<FaultEvent>) {
        out.clear();
        assert!(
            round >= self.next_round,
            "fault rounds must be non-decreasing"
        );
        self.next_round = round + 1;
        self.counts.rounds += 1;
        // Expire windows before drawing, so a box whose window just
        // closed is exposed to this round's hazards again.
        for u in &mut self.until {
            if *u != 0 && *u <= round {
                *u = 0;
            }
        }
        if self.surge_until != 0 && self.surge_until <= round {
            self.surge_until = 0;
        }
        self.counts.healthy_box_rounds += self.until.iter().filter(|&&u| u == 0).count() as u64;
        // Correlated outage first: it claims whole groups, and the per-box
        // hazards below skip boxes it just stalled.
        if self.region_rate > 0.0 && self.rng.gen_bool(self.region_rate) {
            let region = self.rng.gen_range(0..self.regions);
            let window = self.rng.gen_range(self.region_min..=self.region_max);
            self.counts.region_outages += 1;
            for i in 0..self.until.len() {
                if i as u32 % self.regions == region && self.until[i] == 0 {
                    self.until[i] = round + window;
                    self.counts.region_stalled_boxes += 1;
                    out.push(FaultEvent::Stalled {
                        box_id: BoxId(i as u32),
                        until: round + window,
                    });
                }
            }
        }
        for i in 0..self.until.len() {
            if self.until[i] != 0 {
                continue;
            }
            let id = BoxId(i as u32);
            if self.flap_rate > 0.0 && self.rng.gen_bool(self.flap_rate) {
                let window = self.rng.gen_range(self.flap_min..=self.flap_max);
                self.until[i] = round + window;
                self.counts.stalls += 1;
                out.push(FaultEvent::Stalled {
                    box_id: id,
                    until: round + window,
                });
                continue;
            }
            if self.degradation_rate > 0.0 && self.rng.gen_bool(self.degradation_rate) {
                let pct = self.degradation_pcts[self.rng.gen_range(0..self.degradation_pcts.len())];
                let window = self
                    .rng
                    .gen_range(self.degradation_min..=self.degradation_max);
                self.until[i] = round + window;
                self.counts.degradations += 1;
                out.push(FaultEvent::Degraded {
                    box_id: id,
                    pct,
                    until: round + window,
                });
            }
        }
        if self.surge_rate > 0.0 && self.rng.gen_bool(self.surge_rate) {
            let window = self.rng.gen_range(self.surge_min..=self.surge_max);
            self.surge_until = round + window;
            self.counts.drop_surges += 1;
            out.push(FaultEvent::DropSurge {
                add_ppm: self.surge_ppm,
                until: round + window,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vod_core::{Bandwidth, StorageSlots};

    fn fleet(n: usize) -> BoxSet {
        BoxSet::homogeneous(n, Bandwidth::from_streams(1.5), StorageSlots::from_slots(8))
    }

    fn run(model: &mut FaultModel, rounds: u64) -> Vec<(u64, Vec<FaultEvent>)> {
        (0..rounds).map(|r| (r, model.events_at(r))).collect()
    }

    #[test]
    fn quiescent_model_emits_nothing() {
        let mut model = FaultModel::new(&fleet(6), 1);
        for (_, events) in run(&mut model, 30) {
            assert!(events.is_empty());
        }
        assert_eq!(model.counts().healthy_box_rounds, 180);
        assert_eq!(model.drop_ppm(), 0);
    }

    #[test]
    fn same_seed_same_event_sequence() {
        let make = |seed| {
            let mut m = FaultModel::new(&fleet(12), seed)
                .with_degradation(0.08, vec![25, 50, 75], 1, 4)
                .with_flapping(0.04, 1, 3)
                .with_region_outages(0.02, 3, 2, 4)
                .with_drop_surges(0.05, 100_000, 1, 3);
            run(&mut m, 60)
        };
        assert_eq!(make(7), make(7));
        assert_ne!(make(7), make(8));
    }

    #[test]
    fn windows_do_not_overlap_per_box() {
        let mut model = FaultModel::new(&fleet(8), 5)
            .with_degradation(0.5, vec![50], 2, 5)
            .with_flapping(0.3, 2, 5);
        let mut busy_until = [0u64; 8];
        for round in 0..80 {
            for event in model.events_at(round) {
                let (id, until) = match event {
                    FaultEvent::Degraded { box_id, until, .. }
                    | FaultEvent::Stalled { box_id, until } => (box_id, until),
                    _ => continue,
                };
                assert!(
                    busy_until[id.index()] <= round,
                    "box {id} got a new window at {round} while faulted until {}",
                    busy_until[id.index()]
                );
                assert!(until > round, "window must extend past its open round");
                busy_until[id.index()] = until;
            }
        }
    }

    #[test]
    fn region_outage_stalls_exactly_one_group() {
        let mut model = FaultModel::new(&fleet(12), 11).with_region_outages(1.0, 4, 3, 3);
        let events = model.events_at(0);
        assert_eq!(model.counts().region_outages, 1);
        assert_eq!(events.len(), 3, "12 boxes / 4 regions = 3 stalled");
        let region = events[0].box_id().unwrap().0 % 4;
        for event in &events {
            match *event {
                FaultEvent::Stalled { box_id, until } => {
                    assert_eq!(box_id.0 % 4, region);
                    assert_eq!(until, 3);
                }
                _ => panic!("unexpected event {event:?}"),
            }
        }
    }

    #[test]
    fn observed_rates_track_configured_hazards() {
        let mut model = FaultModel::new(&fleet(200), 17)
            .with_degradation(0.03, vec![50], 1, 2)
            .with_flapping(0.015, 1, 2);
        for round in 0..400 {
            model.events_at(round);
        }
        let counts = model.counts();
        assert!(
            (counts.degradation_rate() - 0.03).abs() < 0.008,
            "degradation rate {}",
            counts.degradation_rate()
        );
        assert!(
            (counts.stall_rate() - 0.015).abs() < 0.005,
            "stall rate {}",
            counts.stall_rate()
        );
    }

    #[test]
    fn salt_is_a_pure_function_of_the_seed() {
        let a = FaultModel::new(&fleet(4), 9);
        let mut b = FaultModel::new(&fleet(32), 9).with_flapping(0.5, 1, 2);
        b.events_at(0);
        assert_eq!(a.salt(), b.salt());
        assert_ne!(a.salt(), FaultModel::new(&fleet(4), 10).salt());
    }
}
