//! Flash-crowd workload: one video's swarm grows at the maximal rate `µ`.
//!
//! This is the stress pattern Theorem 1's preloading analysis is built
//! around: a popular release attracts viewers whose number multiplies by `µ`
//! every round, so early joiners must carry most of the upload for late
//! joiners. The generator can also run several staggered crowds to model a
//! sequence of releases.

use crate::demand::{DemandGenerator, OccupancyView, SwarmGrowthLimiter, VideoDemand};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use vod_core::VideoId;

/// Description of one flash crowd.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CrowdSpec {
    /// The video everyone rushes to.
    pub video: VideoId,
    /// Round at which the crowd starts forming.
    pub start_round: u64,
    /// Upper bound on how many boxes eventually join (saturating at the
    /// number of free boxes).
    pub max_viewers: usize,
}

/// Generator producing one or more maximal-growth flash crowds.
#[derive(Clone, Debug)]
pub struct FlashCrowd {
    crowds: Vec<CrowdSpec>,
    joined: Vec<usize>,
    limiter: SwarmGrowthLimiter,
    rng: StdRng,
}

impl FlashCrowd {
    /// A single crowd on `video` starting at round 0 and absorbing up to
    /// `max_viewers` boxes, with growth bound `mu` over a catalog of
    /// `catalog_size` videos.
    pub fn single(
        video: VideoId,
        max_viewers: usize,
        catalog_size: usize,
        mu: f64,
        seed: u64,
    ) -> Self {
        FlashCrowd::staggered(
            vec![CrowdSpec {
                video,
                start_round: 0,
                max_viewers,
            }],
            catalog_size,
            mu,
            seed,
        )
    }

    /// Several crowds with their own start rounds and targets.
    pub fn staggered(crowds: Vec<CrowdSpec>, catalog_size: usize, mu: f64, seed: u64) -> Self {
        let joined = vec![0; crowds.len()];
        FlashCrowd {
            crowds,
            joined,
            limiter: SwarmGrowthLimiter::new(catalog_size, mu),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Number of viewers that have joined crowd `i` so far.
    pub fn joined(&self, i: usize) -> usize {
        self.joined[i]
    }
}

impl DemandGenerator for FlashCrowd {
    fn demands_at(&mut self, round: u64, occupancy: &dyn OccupancyView) -> Vec<VideoDemand> {
        self.limiter.advance_to(round);
        let mut demands = Vec::new();
        let mut free = occupancy.free_boxes();
        free.shuffle(&mut self.rng);
        let mut free_iter = free.into_iter();

        for (i, crowd) in self.crowds.iter().enumerate() {
            if round < crowd.start_round || self.joined[i] >= crowd.max_viewers {
                continue;
            }
            let remaining_target = crowd.max_viewers - self.joined[i];
            let admissible = self.limiter.headroom(crowd.video).min(remaining_target);
            let mut taken = 0;
            while taken < admissible {
                match free_iter.next() {
                    Some(b) => {
                        demands.push(VideoDemand::new(b, crowd.video, round));
                        taken += 1;
                    }
                    None => break,
                }
            }
            let admitted = self.limiter.admit(crowd.video, taken);
            debug_assert_eq!(admitted, taken);
            self.joined[i] += taken;
        }
        demands
    }

    fn name(&self) -> &'static str {
        "flash-crowd"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::SwarmGrowthLimiter;
    use vod_core::BoxId;

    #[test]
    fn single_crowd_grows_geometrically() {
        let mut gen = FlashCrowd::single(VideoId(0), 100, 10, 2.0, 1);
        let free = vec![true; 200];
        let mut joins = Vec::new();
        for round in 0..7 {
            let d = gen.demands_at(round, &free);
            assert!(d.iter().all(|x| x.video == VideoId(0)));
            joins.push(d.len());
        }
        // 2, 2, 4, 8, 16, 32, 36 → total 100.
        assert_eq!(joins.iter().sum::<usize>(), 100);
        assert!(SwarmGrowthLimiter::verify(2.0, &joins).is_ok());
        assert_eq!(joins[0], 2);
        assert!(joins[4] > joins[1]);
    }

    #[test]
    fn crowd_saturates_at_max_viewers() {
        let mut gen = FlashCrowd::single(VideoId(1), 5, 10, 3.0, 2);
        let free = vec![true; 100];
        let mut total = 0;
        for round in 0..10 {
            total += gen.demands_at(round, &free).len();
        }
        assert_eq!(total, 5);
        assert_eq!(gen.joined(0), 5);
    }

    #[test]
    fn crowd_limited_by_free_boxes() {
        let mut gen = FlashCrowd::single(VideoId(0), 100, 10, 4.0, 3);
        // Only 3 boxes free.
        let free = vec![true, true, true, false, false];
        let d = gen.demands_at(0, &free);
        assert!(d.len() <= 3);
        let mut ids: Vec<BoxId> = d.iter().map(|x| x.box_id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), d.len());
    }

    #[test]
    fn staggered_crowds_start_at_their_round() {
        let specs = vec![
            CrowdSpec {
                video: VideoId(0),
                start_round: 0,
                max_viewers: 4,
            },
            CrowdSpec {
                video: VideoId(1),
                start_round: 3,
                max_viewers: 4,
            },
        ];
        let mut gen = FlashCrowd::staggered(specs, 10, 2.0, 4);
        let free = vec![true; 50];
        for round in 0..3 {
            let d = gen.demands_at(round, &free);
            assert!(d.iter().all(|x| x.video == VideoId(0)), "round {round}");
        }
        let d3 = gen.demands_at(3, &free);
        assert!(d3.iter().any(|x| x.video == VideoId(1)));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = |seed| {
            let mut gen = FlashCrowd::single(VideoId(0), 20, 5, 2.0, seed);
            let free = vec![true; 40];
            let mut all = Vec::new();
            for round in 0..6 {
                all.extend(gen.demands_at(round, &free));
            }
            all
        };
        assert_eq!(run(7), run(7));
    }
}
