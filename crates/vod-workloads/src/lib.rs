//! # vod-workloads
//!
//! Demand-sequence generators for the P2P Video-on-Demand threshold model.
//! The paper's guarantees are adversarial (any admissible demand sequence),
//! so the experiment suite needs both the explicit worst-case sequences used
//! in the proofs and stochastic traffic for typical-case behaviour:
//!
//! * [`demand`] — demand/occupancy abstractions and the swarm-growth limiter
//!   enforcing `f(t+1) ≤ ⌈max{f(t),1}·µ⌉`;
//! * [`adversarial`] — the never-owned-video attack (Section 1.3 lower bound)
//!   and the poor-boxes-pile-on attack (Section 4 necessary condition);
//! * [`churn`] — seeded box-churn processes (joins, leaves, crashes, upload
//!   changes) the engine drives through its relay-event path;
//! * [`faults`] — seeded fault injection (flaky uploads, flapping boxes,
//!   regional outages, delivery-drop surges) the engine overlays on its
//!   live capacity table each round;
//! * [`flashcrowd`] — maximal-growth flash crowds (Theorem 1's stress case);
//! * [`multiswarm`] — many concurrently hot swarms with a sliding window
//!   (the sharded scheduler's stress shape);
//! * [`zipf`] / [`poisson`] — long-tailed and steady-state stochastic traffic;
//! * [`sequential`] — back-to-back viewing keeping all `n` boxes busy;
//! * [`trace`] — recordable, serializable, replayable demand traces.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adversarial;
pub mod churn;
pub mod demand;
pub mod faults;
pub mod flashcrowd;
pub mod multiswarm;
pub mod poisson;
pub mod sequential;
pub mod trace;
pub mod zipf;

pub use adversarial::{NeverOwnedAttack, PoorBoxesSameVideo};
pub use churn::{ChurnCounts, ChurnEvent, ChurnModel, SessionLength};
pub use demand::{DemandGenerator, OccupancyView, SwarmGrowthLimiter, VideoDemand};
pub use faults::{FaultCounts, FaultEvent, FaultModel};
pub use flashcrowd::{CrowdSpec, FlashCrowd};
pub use multiswarm::MultiSwarmChurn;
pub use poisson::{PoissonDemand, Popularity};
pub use sequential::{NextVideoPolicy, SequentialViewing};
pub use trace::{DemandTrace, TraceReplay};
pub use zipf::{ZipfDemand, ZipfSampler};
