//! Multi-swarm churn workload: many concurrently active swarms with a
//! sliding hot set.
//!
//! The per-swarm sharded scheduler's stress case is a round whose requests
//! spread over many videos at once — many medium-sized shards coupled
//! through shared box capacities — with the set of active swarms itself
//! churning over time (new releases displacing old ones). This generator
//! produces exactly that shape, with three knobs:
//!
//! * `swarms` — how many videos are simultaneously hot (≈ shard count);
//! * `arrivals_per_round` — total new viewers spread round-robin across the
//!   hot set each round (each admission still honours the `µ` growth bound);
//! * `rotation_period` — every that-many rounds the hot window slides by one
//!   video, so shards are born and die continuously (`0` keeps the hot set
//!   static);
//! * `priority_boxes` — boxes admitted ahead of the shuffled remainder
//!   each round. Pointing this at a heterogeneous fleet's *poor* boxes
//!   keeps them watching across the whole hot window, so their relayed
//!   requests spread over many swarms at once — the stress shape for
//!   relay reservations crossing swarm shards.
//!
//! All randomness comes from the seed, so the demand sequence is a pure
//! function of `(knobs, seed, occupancy history)`.

use crate::demand::{DemandGenerator, OccupancyView, SwarmGrowthLimiter, VideoDemand};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use vod_core::{BoxId, VideoId};

/// Demand generator spreading arrivals over a sliding window of hot swarms.
#[derive(Clone, Debug)]
pub struct MultiSwarmChurn {
    catalog_size: usize,
    swarms: usize,
    arrivals_per_round: usize,
    rotation_period: u64,
    limiter: SwarmGrowthLimiter,
    rng: StdRng,
    /// Boxes admitted first each round (sorted; empty = no priority).
    priority: Vec<BoxId>,
    /// Pooled free-box scratch, reused across rounds.
    free_buf: Vec<BoxId>,
    prio_buf: Vec<BoxId>,
}

impl MultiSwarmChurn {
    /// Creates a generator over a catalog of `catalog_size` videos with
    /// `swarms` simultaneously hot videos, `arrivals_per_round` target
    /// arrivals, growth bound `mu`, and a static hot set.
    ///
    /// # Panics
    /// Panics when the catalog is empty or `swarms` is zero.
    pub fn new(
        catalog_size: usize,
        swarms: usize,
        arrivals_per_round: usize,
        mu: f64,
        seed: u64,
    ) -> Self {
        assert!(catalog_size > 0, "catalog must be non-empty");
        assert!(swarms > 0, "at least one hot swarm");
        MultiSwarmChurn {
            catalog_size,
            swarms: swarms.min(catalog_size),
            arrivals_per_round,
            rotation_period: 0,
            limiter: SwarmGrowthLimiter::new(catalog_size, mu),
            rng: StdRng::seed_from_u64(seed),
            priority: Vec::new(),
            free_buf: Vec::new(),
            prio_buf: Vec::new(),
        }
    }

    /// Slides the hot window by one video every `period` rounds (`0`
    /// disables rotation), churning shard membership.
    pub fn with_rotation(mut self, period: u64) -> Self {
        self.rotation_period = period;
        self
    }

    /// Admits the given boxes ahead of the shuffled remainder each round
    /// (in ascending box id). With a heterogeneous fleet's poor boxes here,
    /// every hot swarm carries relayed requests — the relay-subsystem
    /// stress shape. An empty list leaves the demand sequence bit-identical
    /// to the un-prioritized generator.
    pub fn with_priority_boxes(mut self, mut boxes: Vec<BoxId>) -> Self {
        boxes.sort();
        boxes.dedup();
        self.priority = boxes;
        self
    }

    /// Number of simultaneously hot swarms.
    pub fn swarms(&self) -> usize {
        self.swarms
    }

    /// First video of the hot window at `round`.
    fn window_start(&self, round: u64) -> usize {
        match round.checked_div(self.rotation_period) {
            None => 0, // rotation disabled
            Some(slides) => (slides % self.catalog_size as u64) as usize,
        }
    }
}

impl DemandGenerator for MultiSwarmChurn {
    fn demands_at(&mut self, round: u64, occupancy: &dyn OccupancyView) -> Vec<VideoDemand> {
        let mut out = Vec::new();
        self.demands_into(round, occupancy, &mut out);
        out
    }

    /// Allocation-free override: the free-box scratch and the output buffer
    /// are both reused, so a steady-state round allocates nothing (this is
    /// the generator the sharding benches drive hardest).
    fn demands_into(
        &mut self,
        round: u64,
        occupancy: &dyn OccupancyView,
        out: &mut Vec<VideoDemand>,
    ) {
        out.clear();
        self.limiter.advance_to(round);
        let start = self.window_start(round);
        self.free_buf.clear();
        self.free_buf.extend(
            (0..occupancy.box_count() as u32)
                .map(BoxId)
                .filter(|&b| occupancy.is_free(b)),
        );
        self.free_buf.shuffle(&mut self.rng);
        if !self.priority.is_empty() {
            // Stable partition: free priority boxes first (ascending id —
            // they were collected in id order), the shuffled rest after.
            self.prio_buf.clear();
            self.prio_buf.extend(
                self.priority
                    .iter()
                    .copied()
                    .filter(|&b| occupancy.is_free(b)),
            );
            self.free_buf
                .retain(|b| self.priority.binary_search(b).is_err());
            std::mem::swap(&mut self.free_buf, &mut self.prio_buf);
            let rest = std::mem::take(&mut self.prio_buf);
            self.free_buf.extend_from_slice(&rest);
            self.prio_buf = rest;
        }

        let mut slot = 0usize;
        let take = self.arrivals_per_round.min(self.free_buf.len());
        for i in 0..take {
            let b = self.free_buf[i];
            // Round-robin across the hot window, skipping swarms that have
            // exhausted their µ-headroom this round (bounded probe so a
            // fully saturated window terminates).
            let mut admitted = false;
            for probe in 0..self.swarms {
                let video =
                    VideoId(((start + (slot + probe) % self.swarms) % self.catalog_size) as u32);
                if self.limiter.admit(video, 1) == 1 {
                    out.push(VideoDemand::new(b, video, round));
                    slot = (slot + probe + 1) % self.swarms;
                    admitted = true;
                    break;
                }
            }
            if !admitted {
                break; // every hot swarm is at its growth ceiling
            }
        }
    }

    fn name(&self) -> &'static str {
        "multi-swarm-churn"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vod_core::BoxId;

    fn collect(gen: &mut MultiSwarmChurn, rounds: u64, boxes: usize) -> Vec<Vec<VideoDemand>> {
        let free = vec![true; boxes];
        (0..rounds).map(|r| gen.demands_at(r, &free)).collect()
    }

    #[test]
    fn spreads_arrivals_over_the_hot_window() {
        let mut gen = MultiSwarmChurn::new(20, 4, 8, 4.0, 1);
        let per_round = collect(&mut gen, 6, 64);
        let mut seen: Vec<u32> = per_round.iter().flatten().map(|d| d.video.0).collect();
        seen.sort();
        seen.dedup();
        assert_eq!(seen, vec![0, 1, 2, 3], "only hot-window videos demanded");
        // More than one swarm is populated from the very first rounds.
        let first_round_videos: std::collections::BTreeSet<u32> =
            per_round[0].iter().map(|d| d.video.0).collect();
        assert!(first_round_videos.len() > 1);
    }

    #[test]
    fn respects_growth_bound_per_video() {
        let mu = 1.5;
        let mut gen = MultiSwarmChurn::new(10, 3, 100, mu, 2);
        let per_round = collect(&mut gen, 8, 500);
        for video in 0..3u32 {
            let joins: Vec<usize> = per_round
                .iter()
                .map(|ds| ds.iter().filter(|d| d.video.0 == video).count())
                .collect();
            assert!(
                SwarmGrowthLimiter::verify(mu, &joins).is_ok(),
                "video {video}: {joins:?}"
            );
        }
    }

    #[test]
    fn rotation_slides_the_hot_window() {
        let mut gen = MultiSwarmChurn::new(12, 2, 6, 8.0, 3).with_rotation(4);
        let free = vec![true; 64];
        let early: std::collections::BTreeSet<u32> = (0..4u64)
            .flat_map(|r| gen.demands_at(r, &free))
            .map(|d| d.video.0)
            .collect();
        let late: std::collections::BTreeSet<u32> = (8..12u64)
            .flat_map(|r| gen.demands_at(r, &free))
            .map(|d| d.video.0)
            .collect();
        assert!(early.contains(&0));
        assert!(late.contains(&3), "late window {late:?}");
        assert!(!late.contains(&0), "late window {late:?}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = |seed| {
            let mut gen = MultiSwarmChurn::new(16, 5, 7, 2.0, seed).with_rotation(3);
            collect(&mut gen, 10, 48)
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn priority_boxes_are_admitted_first() {
        // 4 arrival slots, priority on boxes 10–13: they are always the
        // ones admitted, in ascending order, ahead of the shuffled rest.
        let prio: Vec<BoxId> = (10..14).map(BoxId).collect();
        let mut gen = MultiSwarmChurn::new(8, 4, 4, 8.0, 11).with_priority_boxes(prio.clone());
        let free = vec![true; 32];
        for round in 0..6u64 {
            let demands = gen.demands_at(round, &free);
            let admitted: Vec<BoxId> = demands.iter().map(|d| d.box_id).collect();
            assert_eq!(admitted, prio, "round {round}");
        }
        // An empty priority list is bit-identical to the plain generator.
        let run = |gen: &mut MultiSwarmChurn| collect(gen, 8, 24);
        let plain = run(&mut MultiSwarmChurn::new(12, 3, 5, 2.0, 7).with_rotation(2));
        let empty_prio = run(&mut MultiSwarmChurn::new(12, 3, 5, 2.0, 7)
            .with_rotation(2)
            .with_priority_boxes(Vec::new()));
        assert_eq!(plain, empty_prio);
    }

    #[test]
    fn one_demand_per_box_per_round() {
        let mut gen = MultiSwarmChurn::new(8, 4, 20, 4.0, 5);
        let free = vec![true; 16];
        for round in 0..5 {
            let d = gen.demands_at(round, &free);
            let mut ids: Vec<BoxId> = d.iter().map(|x| x.box_id).collect();
            ids.sort();
            ids.dedup();
            assert_eq!(ids.len(), d.len(), "round {round}");
        }
    }
}
