//! Poisson-arrival demand generator.
//!
//! Models steady-state operation: new viewing sessions arrive as a Poisson
//! process with rate `λ` demands per round, each choosing a video from a
//! pluggable popularity distribution (uniform by default, Zipf optionally).

use crate::demand::{DemandGenerator, OccupancyView, SwarmGrowthLimiter, VideoDemand};
use crate::zipf::ZipfSampler;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use vod_core::VideoId;

/// How arriving viewers pick a video.
#[derive(Clone, Debug)]
pub enum Popularity {
    /// Every video equally likely.
    Uniform,
    /// Zipf law with the given exponent.
    Zipf(f64),
}

/// Poisson-arrival generator.
#[derive(Clone, Debug)]
pub struct PoissonDemand {
    catalog_size: usize,
    lambda: f64,
    popularity: Popularity,
    zipf: Option<ZipfSampler>,
    limiter: SwarmGrowthLimiter,
    rng: StdRng,
}

impl PoissonDemand {
    /// Creates a generator with arrival rate `lambda` demands per round over
    /// a catalog of `catalog_size` videos.
    pub fn new(
        catalog_size: usize,
        lambda: f64,
        popularity: Popularity,
        mu: f64,
        seed: u64,
    ) -> Self {
        assert!(catalog_size > 0, "catalog must be non-empty");
        assert!(lambda.is_finite() && lambda >= 0.0, "λ must be ≥ 0");
        let zipf = match &popularity {
            Popularity::Uniform => None,
            Popularity::Zipf(s) => Some(ZipfSampler::new(catalog_size, *s)),
        };
        PoissonDemand {
            catalog_size,
            lambda,
            popularity,
            zipf,
            limiter: SwarmGrowthLimiter::new(catalog_size, mu),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Samples a Poisson(λ) variate by Knuth's multiplication method (λ is a
    /// handful of arrivals per round in these workloads, so the method's
    /// `O(λ)` cost is irrelevant).
    fn sample_poisson(&mut self) -> usize {
        if self.lambda == 0.0 {
            return 0;
        }
        let threshold = (-self.lambda).exp();
        let mut k = 0usize;
        let mut p = 1.0f64;
        loop {
            p *= self.rng.gen::<f64>();
            if p <= threshold {
                return k;
            }
            k += 1;
            if k > 10_000 {
                return k; // defensive cap; unreachable for sane λ
            }
        }
    }

    fn sample_video(&mut self) -> VideoId {
        let idx = match (&self.popularity, &self.zipf) {
            (Popularity::Uniform, _) => self.rng.gen_range(0..self.catalog_size),
            (Popularity::Zipf(_), Some(z)) => z.sample(&mut self.rng),
            (Popularity::Zipf(_), None) => unreachable!("zipf sampler built in constructor"),
        };
        VideoId(idx as u32)
    }
}

impl DemandGenerator for PoissonDemand {
    fn demands_at(&mut self, round: u64, occupancy: &dyn OccupancyView) -> Vec<VideoDemand> {
        self.limiter.advance_to(round);
        let arrivals = self.sample_poisson();
        let mut free = occupancy.free_boxes();
        free.shuffle(&mut self.rng);
        let mut demands = Vec::new();
        for b in free.into_iter().take(arrivals) {
            for _ in 0..8 {
                let video = self.sample_video();
                if self.limiter.admit(video, 1) == 1 {
                    demands.push(VideoDemand::new(b, video, round));
                    break;
                }
            }
        }
        demands
    }

    fn name(&self) -> &'static str {
        "poisson"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_emits_nothing() {
        let mut gen = PoissonDemand::new(10, 0.0, Popularity::Uniform, 2.0, 1);
        let free = vec![true; 10];
        for round in 0..5 {
            assert!(gen.demands_at(round, &free).is_empty());
        }
    }

    #[test]
    fn mean_arrivals_close_to_lambda() {
        let mut gen = PoissonDemand::new(1000, 3.0, Popularity::Uniform, 10.0, 2);
        let free = vec![true; 10_000];
        let rounds = 2_000u64;
        let mut total = 0usize;
        for round in 0..rounds {
            total += gen.demands_at(round, &free).len();
        }
        let mean = total as f64 / rounds as f64;
        assert!((mean - 3.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn arrivals_limited_by_free_boxes() {
        let mut gen = PoissonDemand::new(10, 50.0, Popularity::Uniform, 10.0, 3);
        let free = vec![true, true, false, false];
        let d = gen.demands_at(0, &free);
        assert!(d.len() <= 2);
    }

    #[test]
    fn zipf_popularity_prefers_head_videos() {
        let mut gen = PoissonDemand::new(100, 5.0, Popularity::Zipf(1.2), 10.0, 4);
        let free = vec![true; 1000];
        let mut head = 0usize;
        let mut total = 0usize;
        for round in 0..400 {
            for d in gen.demands_at(round, &free) {
                total += 1;
                if d.video.0 < 10 {
                    head += 1;
                }
            }
        }
        assert!(total > 0);
        // With s = 1.2 over 100 items, the top 10 carry well over a third of
        // the mass.
        assert!(head as f64 > total as f64 * 0.35, "head {head} / {total}");
    }

    #[test]
    #[should_panic(expected = "catalog must be non-empty")]
    fn empty_catalog_rejected() {
        PoissonDemand::new(0, 1.0, Popularity::Uniform, 2.0, 0);
    }
}
