//! Back-to-back viewing workload.
//!
//! The paper's playback-cache definition explicitly covers the case where "a
//! box plays videos one after another" (the cache then holds the end of the
//! previous video and the beginning of the current one). This generator keeps
//! every box permanently busy: as soon as a box becomes free it immediately
//! demands its next video, drawn either round-robin or uniformly at random.
//! It maximizes occupancy (up to `n` simultaneous playbacks) and is the
//! workload used to stress request-scalability.

use crate::demand::{DemandGenerator, OccupancyView, SwarmGrowthLimiter, VideoDemand};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use vod_core::VideoId;

/// How the next video of a box is chosen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NextVideoPolicy {
    /// Box `b` watches videos `b, b+1, b+2, …` modulo the catalog size:
    /// deterministic and maximally spread across the catalog.
    RoundRobin,
    /// Uniformly random video each time.
    UniformRandom,
}

/// Continuous-viewing generator.
#[derive(Clone, Debug)]
pub struct SequentialViewing {
    catalog_size: usize,
    policy: NextVideoPolicy,
    /// Next round-robin position per box.
    next_index: Vec<usize>,
    limiter: SwarmGrowthLimiter,
    rng: StdRng,
}

impl SequentialViewing {
    /// Creates a generator for `n` boxes over `catalog_size` videos.
    pub fn new(n: usize, catalog_size: usize, policy: NextVideoPolicy, mu: f64, seed: u64) -> Self {
        assert!(catalog_size > 0, "catalog must be non-empty");
        SequentialViewing {
            catalog_size,
            policy,
            next_index: (0..n).collect(),
            limiter: SwarmGrowthLimiter::new(catalog_size, mu),
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl DemandGenerator for SequentialViewing {
    fn demands_at(&mut self, round: u64, occupancy: &dyn OccupancyView) -> Vec<VideoDemand> {
        self.limiter.advance_to(round);
        let mut demands = Vec::new();
        for b in occupancy.free_boxes() {
            if b.index() >= self.next_index.len() {
                continue;
            }
            // Try a handful of candidate videos so a saturated swarm does not
            // leave the box idle if another video has headroom.
            for _ in 0..8 {
                let video = match self.policy {
                    NextVideoPolicy::RoundRobin => {
                        let idx = self.next_index[b.index()] % self.catalog_size;
                        self.next_index[b.index()] = idx + 1;
                        VideoId(idx as u32)
                    }
                    NextVideoPolicy::UniformRandom => {
                        VideoId(self.rng.gen_range(0..self.catalog_size) as u32)
                    }
                };
                if self.limiter.admit(video, 1) == 1 {
                    demands.push(VideoDemand::new(b, video, round));
                    break;
                }
            }
        }
        demands
    }

    fn name(&self) -> &'static str {
        "sequential-viewing"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vod_core::BoxId;

    #[test]
    fn every_free_box_gets_a_demand_when_catalog_is_large() {
        let mut gen = SequentialViewing::new(6, 100, NextVideoPolicy::RoundRobin, 2.0, 1);
        let free = vec![true; 6];
        let d = gen.demands_at(0, &free);
        assert_eq!(d.len(), 6);
        let mut ids: Vec<BoxId> = d.iter().map(|x| x.box_id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 6);
    }

    #[test]
    fn round_robin_advances_per_box() {
        let mut gen = SequentialViewing::new(2, 5, NextVideoPolicy::RoundRobin, 4.0, 2);
        let free = vec![true; 2];
        let d0 = gen.demands_at(0, &free);
        let d1 = gen.demands_at(1, &free);
        let v0 = d0.iter().find(|x| x.box_id == BoxId(0)).unwrap().video;
        let v1 = d1.iter().find(|x| x.box_id == BoxId(0)).unwrap().video;
        assert_ne!(v0, v1);
    }

    #[test]
    fn busy_boxes_are_skipped() {
        let mut gen = SequentialViewing::new(4, 10, NextVideoPolicy::UniformRandom, 2.0, 3);
        let free = vec![true, false, true, false];
        let d = gen.demands_at(0, &free);
        assert!(d
            .iter()
            .all(|x| x.box_id == BoxId(0) || x.box_id == BoxId(2)));
    }

    #[test]
    fn growth_bound_can_throttle_a_tiny_catalog() {
        // Single video, µ = 1.5: only 2 boxes may join in round 0.
        let mut gen = SequentialViewing::new(10, 1, NextVideoPolicy::RoundRobin, 1.5, 4);
        let free = vec![true; 10];
        let d = gen.demands_at(0, &free);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn out_of_range_boxes_are_ignored() {
        let mut gen = SequentialViewing::new(2, 10, NextVideoPolicy::RoundRobin, 2.0, 5);
        // Occupancy claims 4 boxes exist but the generator only knows 2.
        let free = vec![true; 4];
        let d = gen.demands_at(0, &free);
        assert!(d.iter().all(|x| x.box_id.index() < 2));
    }
}
