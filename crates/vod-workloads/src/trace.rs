//! Precomputed demand traces.
//!
//! A [`DemandTrace`] is a finite, replayable demand sequence: it can be
//! recorded from any [`DemandGenerator`] under a simple occupancy model,
//! serialized for experiment reproducibility, and replayed as a generator.

use crate::demand::{DemandGenerator, OccupancyView, SwarmGrowthLimiter, VideoDemand};
use std::collections::BTreeMap;
use vod_core::json::{Json, JsonCodec, JsonError};
use vod_core::VideoId;

/// A finite demand sequence indexed by round.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DemandTrace {
    by_round: BTreeMap<u64, Vec<VideoDemand>>,
}

impl JsonCodec for DemandTrace {
    fn to_json(&self) -> Json {
        self.by_round.to_json()
    }
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(DemandTrace {
            by_round: BTreeMap::from_json(json)?,
        })
    }
}

impl DemandTrace {
    /// An empty trace.
    pub fn new() -> Self {
        DemandTrace::default()
    }

    /// Builds a trace from an explicit demand list.
    pub fn from_demands(demands: impl IntoIterator<Item = VideoDemand>) -> Self {
        let mut trace = DemandTrace::new();
        for d in demands {
            trace.push(d);
        }
        trace
    }

    /// Appends one demand.
    pub fn push(&mut self, demand: VideoDemand) {
        self.by_round.entry(demand.round).or_default().push(demand);
    }

    /// Demands arriving at `round`.
    pub fn at(&self, round: u64) -> &[VideoDemand] {
        self.by_round.get(&round).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total number of demands.
    pub fn len(&self) -> usize {
        self.by_round.values().map(Vec::len).sum()
    }

    /// True when the trace contains no demand.
    pub fn is_empty(&self) -> bool {
        self.by_round.is_empty()
    }

    /// The last round with at least one demand, if any.
    pub fn last_round(&self) -> Option<u64> {
        self.by_round.keys().next_back().copied()
    }

    /// Iterator over all demands, in round order.
    pub fn iter(&self) -> impl Iterator<Item = &VideoDemand> {
        self.by_round.values().flatten()
    }

    /// Records `rounds` rounds of a generator under the standard occupancy
    /// model: `n` boxes, each busy for `duration_rounds` after it starts a
    /// video (the demand-level view of "at most one video per box").
    pub fn record(
        generator: &mut dyn DemandGenerator,
        rounds: u64,
        n: usize,
        duration_rounds: u32,
    ) -> Self {
        let mut trace = DemandTrace::new();
        // busy_until[b] = first round at which box b is free again.
        let mut busy_until = vec![0u64; n];
        for round in 0..rounds {
            let free: Vec<bool> = busy_until.iter().map(|&t| t <= round).collect();
            for d in generator.demands_at(round, &free) {
                if d.box_id.index() < n && free[d.box_id.index()] {
                    busy_until[d.box_id.index()] = round + duration_rounds as u64;
                    trace.push(d);
                }
            }
        }
        trace
    }

    /// Per-video join counts per round, for growth-bound verification.
    pub fn joins_per_round(&self, video: VideoId) -> Vec<usize> {
        let last = match self.last_round() {
            Some(r) => r,
            None => return Vec::new(),
        };
        (0..=last)
            .map(|r| self.at(r).iter().filter(|d| d.video == video).count())
            .collect()
    }

    /// Verifies that every video's join sequence respects growth bound `mu`.
    /// Returns the first offending `(video, round)` pair, if any.
    pub fn verify_growth(&self, mu: f64) -> Result<(), (VideoId, usize)> {
        let mut videos: Vec<VideoId> = self.iter().map(|d| d.video).collect();
        videos.sort();
        videos.dedup();
        for v in videos {
            if let Err(round) = SwarmGrowthLimiter::verify(mu, &self.joins_per_round(v)) {
                return Err((v, round));
            }
        }
        Ok(())
    }
}

/// Replays a recorded trace as a [`DemandGenerator`] (demands for busy boxes
/// are dropped, mirroring a user who finds their box occupied).
#[derive(Clone, Debug)]
pub struct TraceReplay {
    trace: DemandTrace,
}

impl TraceReplay {
    /// Wraps a trace for replay.
    pub fn new(trace: DemandTrace) -> Self {
        TraceReplay { trace }
    }

    /// The underlying trace.
    pub fn trace(&self) -> &DemandTrace {
        &self.trace
    }
}

impl DemandGenerator for TraceReplay {
    fn demands_at(&mut self, round: u64, occupancy: &dyn OccupancyView) -> Vec<VideoDemand> {
        self.trace
            .at(round)
            .iter()
            .filter(|d| occupancy.is_free(d.box_id))
            .copied()
            .collect()
    }

    fn name(&self) -> &'static str {
        "trace-replay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flashcrowd::FlashCrowd;
    use vod_core::BoxId;

    #[test]
    fn push_and_query_by_round() {
        let mut t = DemandTrace::new();
        t.push(VideoDemand::new(BoxId(0), VideoId(1), 3));
        t.push(VideoDemand::new(BoxId(1), VideoId(1), 3));
        t.push(VideoDemand::new(BoxId(2), VideoId(0), 5));
        assert_eq!(t.len(), 3);
        assert_eq!(t.at(3).len(), 2);
        assert_eq!(t.at(4).len(), 0);
        assert_eq!(t.last_round(), Some(5));
    }

    #[test]
    fn record_respects_occupancy_window() {
        let mut gen = FlashCrowd::single(VideoId(0), 50, 4, 2.0, 1);
        let trace = DemandTrace::record(&mut gen, 20, 10, 100);
        // Only 10 boxes exist and each stays busy 100 rounds: at most 10
        // demands fit in 20 rounds.
        assert!(trace.len() <= 10);
        // No box appears twice.
        let mut ids: Vec<BoxId> = trace.iter().map(|d| d.box_id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), trace.len());
    }

    #[test]
    fn recorded_flash_crowd_respects_growth_bound() {
        let mut gen = FlashCrowd::single(VideoId(2), 60, 4, 1.7, 2);
        let trace = DemandTrace::record(&mut gen, 30, 100, 50);
        assert!(trace.verify_growth(1.7).is_ok());
        // A tighter µ should be violated once the crowd ramps up.
        assert!(trace.verify_growth(1.05).is_err());
    }

    #[test]
    fn replay_matches_trace_for_free_boxes() {
        let trace = DemandTrace::from_demands([
            VideoDemand::new(BoxId(0), VideoId(0), 0),
            VideoDemand::new(BoxId(1), VideoId(0), 0),
            VideoDemand::new(BoxId(0), VideoId(1), 4),
        ]);
        let mut replay = TraceReplay::new(trace.clone());
        let all_free = vec![true; 2];
        assert_eq!(replay.demands_at(0, &all_free).len(), 2);
        let only_one = vec![false, true];
        assert_eq!(replay.demands_at(0, &only_one).len(), 1);
        assert_eq!(replay.trace().len(), 3);
    }

    #[test]
    fn json_round_trip() {
        let trace = DemandTrace::from_demands([
            VideoDemand::new(BoxId(0), VideoId(0), 0),
            VideoDemand::new(BoxId(3), VideoId(2), 7),
        ]);
        let json = trace.to_json_string();
        let back = DemandTrace::from_json_str(&json).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn joins_per_round_counts_only_target_video() {
        let trace = DemandTrace::from_demands([
            VideoDemand::new(BoxId(0), VideoId(0), 0),
            VideoDemand::new(BoxId(1), VideoId(1), 0),
            VideoDemand::new(BoxId(2), VideoId(0), 2),
        ]);
        assert_eq!(trace.joins_per_round(VideoId(0)), vec![1, 0, 1]);
        assert_eq!(trace.joins_per_round(VideoId(1)), vec![1, 0, 0]);
    }
}
