//! Zipf-popularity demand generator.
//!
//! Video-on-Demand popularity is classically long-tailed; a Zipf law with
//! exponent around 0.8–1.2 is the standard synthetic stand-in for real
//! catalog popularity traces (which the paper does not use — its results are
//! adversarial — but which the experiments use to show typical-case headroom
//! above the worst-case bound).

use crate::demand::{DemandGenerator, OccupancyView, SwarmGrowthLimiter, VideoDemand};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use vod_core::VideoId;

/// A discrete Zipf sampler over `0..n` with exponent `s`
/// (`P(i) ∝ 1/(i+1)^s`), implemented by inversion on the cumulative table.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `n` items with exponent `s ≥ 0`.
    ///
    /// # Panics
    /// Panics if `n` is zero or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf support must be non-empty");
        assert!(s.is_finite() && s >= 0.0, "exponent must be finite and ≥ 0");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(s);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        ZipfSampler { cumulative }
    }

    /// Number of items in the support.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True when the support is empty (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Samples one index.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let x: f64 = rng.gen();
        // Binary search for the first cumulative value ≥ x.
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&x).expect("no NaN in cumulative table"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }

    /// Probability mass of item `i`.
    pub fn pmf(&self, i: usize) -> f64 {
        if i == 0 {
            self.cumulative[0]
        } else {
            self.cumulative[i] - self.cumulative[i - 1]
        }
    }
}

/// Demand generator where each round a fixed number of free boxes request a
/// Zipf-distributed video.
#[derive(Clone, Debug)]
pub struct ZipfDemand {
    sampler: ZipfSampler,
    /// New demands attempted per round.
    arrivals_per_round: usize,
    limiter: SwarmGrowthLimiter,
    rng: StdRng,
}

impl ZipfDemand {
    /// Creates a generator over a catalog of `catalog_size` videos.
    pub fn new(
        catalog_size: usize,
        exponent: f64,
        arrivals_per_round: usize,
        mu: f64,
        seed: u64,
    ) -> Self {
        ZipfDemand {
            sampler: ZipfSampler::new(catalog_size, exponent),
            arrivals_per_round,
            limiter: SwarmGrowthLimiter::new(catalog_size, mu),
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl DemandGenerator for ZipfDemand {
    fn demands_at(&mut self, round: u64, occupancy: &dyn OccupancyView) -> Vec<VideoDemand> {
        self.limiter.advance_to(round);
        let mut free = occupancy.free_boxes();
        free.shuffle(&mut self.rng);
        let mut demands = Vec::new();
        for b in free.into_iter().take(self.arrivals_per_round) {
            // Draw until a video with swarm headroom is found (bounded tries
            // so a fully saturated round terminates).
            for _ in 0..8 {
                let video = VideoId(self.sampler.sample(&mut self.rng) as u32);
                if self.limiter.admit(video, 1) == 1 {
                    demands.push(VideoDemand::new(b, video, round));
                    break;
                }
            }
        }
        demands
    }

    fn name(&self) -> &'static str {
        "zipf"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one_and_is_decreasing() {
        let z = ZipfSampler::new(20, 1.0);
        let total: f64 = (0..20).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for i in 1..20 {
            assert!(z.pmf(i) <= z.pmf(i - 1) + 1e-12);
        }
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        for i in 0..10 {
            assert!((z.pmf(i) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn sampling_matches_pmf_roughly() {
        let z = ZipfSampler::new(5, 1.0);
        let mut rng = StdRng::seed_from_u64(0);
        let mut counts = [0usize; 5];
        let draws = 50_000;
        for _ in 0..draws {
            counts[z.sample(&mut rng)] += 1;
        }
        for (i, &count) in counts.iter().enumerate() {
            let expected = z.pmf(i) * draws as f64;
            let observed = count as f64;
            assert!(
                (observed - expected).abs() < 5.0 * expected.sqrt() + 50.0,
                "item {i}: expected ≈ {expected}, observed {observed}"
            );
        }
    }

    #[test]
    fn generator_respects_arrival_budget_and_occupancy() {
        let mut gen = ZipfDemand::new(50, 0.9, 4, 2.0, 7);
        let free = vec![true; 10];
        let d = gen.demands_at(0, &free);
        assert!(d.len() <= 4);
        let busy = vec![false; 10];
        assert!(gen.demands_at(1, &busy).is_empty());
    }

    #[test]
    fn one_demand_per_box_per_round() {
        let mut gen = ZipfDemand::new(50, 0.9, 10, 2.0, 8);
        let free = vec![true; 10];
        let d = gen.demands_at(0, &free);
        let mut ids: Vec<_> = d.iter().map(|x| x.box_id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), d.len());
    }

    #[test]
    #[should_panic(expected = "support must be non-empty")]
    fn empty_support_panics() {
        ZipfSampler::new(0, 1.0);
    }
}
