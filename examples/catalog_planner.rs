//! Catalog planner: for an operator sizing a deployment, tabulate how the
//! achievable catalog scales with the normalized upload capacity `u` (i.e.
//! with the chosen video bitrate) — the quality/catalog trade-off from the
//! paper's conclusion — and how much replication the analysis prescribes.
//!
//! ```text
//! cargo run --release --example catalog_planner
//! ```

use p2p_vod::prelude::*;

fn main() {
    let n = 10_000; // fleet size
    let d = 10.0; // storage per box, in videos
    let mu = 1.2; // swarm growth bound

    println!("Catalog planning for n = {n} boxes, d = {d} videos per box, µ = {mu}\n");

    let mut table = Table::new(
        "Quality / catalog trade-off (Theorem 1)",
        &[
            "u (upload/bitrate)",
            "c",
            "k (Thm 1)",
            "catalog m = dn/k",
            "analytic bound",
            "(u-1)^3 shape",
        ],
    );

    for &u in &[1.05, 1.1, 1.2, 1.35, 1.5, 1.75, 2.0, 2.5, 3.0] {
        match Theorem1Params::derive(n, u, d, mu) {
            Some(t1) => {
                table.push_row(vec![
                    format!("{u:.2}"),
                    t1.c.to_string(),
                    t1.k.to_string(),
                    t1.catalog.to_string(),
                    format!("{:.0}", t1.catalog_bound),
                    format!("{:.4}", vod_analysis::theorem1::tradeoff_asymptotic(u)),
                ]);
            }
            None => table.push_row(vec![
                format!("{u:.2}"),
                "-".into(),
                "-".into(),
                "O(1)".into(),
                "0".into(),
                "0".into(),
            ]),
        }
    }
    println!("{}", table.to_markdown());

    // Below the threshold the catalog is capped at d·c regardless of n.
    println!("Below the threshold (u < 1) the catalog cannot scale with n:");
    for &u in &[0.6, 0.8, 0.95] {
        let check = LowerBoundCheck::evaluate(n, u, d, 8, 2 * (d as usize) * 8);
        println!(
            "  u = {:.2}: catalog cap d·c = {} videos; demanding {} videos is {}",
            u,
            check.catalog_cap,
            check.m,
            if check.is_defeated() {
                "defeated by the never-owned adversary"
            } else {
                "still servable"
            }
        );
    }

    // How much replication does the *numeric* first-moment bound require,
    // compared to the closed-form prescription? (smaller system so the
    // evaluation stays fast)
    println!("\nReplication certified by the numeric first-moment bound (n = 2000):");
    let n_small = 2000;
    for &u in &[1.5, 2.0, 3.0] {
        let t1 = Theorem1Params::derive(n_small, u, d, mu).unwrap();
        let numeric = vod_analysis::required_k_for_bound(
            n_small,
            t1.catalog.max(1),
            t1.c,
            u,
            mu,
            1e-3,
            4 * t1.k.max(1),
        );
        println!(
            "  u = {:.1}: closed-form k = {:>4}, numeric k for P < 1e-3: {:?}",
            u, t1.k, numeric
        );
    }
}
