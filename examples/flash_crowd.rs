//! Flash-crowd scenario: a popular release attracts viewers at the maximal
//! swarm growth rate and the swarm must become self-sustaining through
//! swarming (playback-cache exchange) rather than the k allocation replicas.
//!
//! ```text
//! cargo run --release --example flash_crowd
//! ```

use p2p_vod::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 96;
    let mu = 1.5;
    let params = SystemParams::new(n, 1.6, 8, 8, 4, mu, 80);
    let mut rng = StdRng::seed_from_u64(11);
    let system = VideoSystem::homogeneous(params, &RandomPermutationAllocator::new(4), &mut rng)
        .expect("allocation fits");

    println!(
        "System: n = {}, u = {:.1}, c = {}, k = 4, catalog = {} videos, µ = {}",
        n,
        system.average_upload(),
        system.c(),
        system.m(),
        mu
    );
    println!(
        "Premiere video v0 is stored on only {} boxes before the crowd arrives.",
        system.holders_of(StripeId::new(VideoId(0), 0)).len()
    );

    // The whole fleet piles onto video 0 as fast as the growth bound allows.
    let mut crowd = FlashCrowd::single(VideoId(0), n, system.m(), mu, 5);
    let report = Simulator::new(&system, SimConfig::new(120)).run(&mut crowd);

    println!("\nRound-by-round ramp-up (first 12 rounds):");
    println!("round  new  viewers  requests  served  from-cache  util");
    for r in report.rounds.iter().take(12) {
        println!(
            "{:>5}  {:>3}  {:>7}  {:>8}  {:>6}  {:>10}  {:.2}",
            r.round,
            r.new_demands,
            r.viewers,
            r.active_requests,
            r.served,
            r.served_from_cache,
            r.utilization()
        );
    }

    println!("\nOutcome:");
    println!("  all rounds feasible : {}", report.all_rounds_feasible());
    println!("  service ratio       : {:.4}", report.service_ratio());
    println!("  swarming share      : {:.3}", report.swarming_share());
    println!("  peak utilization    : {:.3}", report.peak_utilization());
    println!("  viewers absorbed    : {} / {}", report.total_demands, n);

    if let Some(failure) = report.failures.first() {
        println!(
            "  first failure at round {} ({} unserved, obstruction of {:?} requests)",
            failure.round, failure.unserved, failure.obstruction_size
        );
    } else {
        println!(
            "  the crowd of {} viewers was absorbed without a single stall —",
            report.total_demands
        );
        println!("  late joiners were fed by the playback caches of earlier joiners.");
    }
}
