//! Heterogeneous ISP fleet (Theorem 2): a mix of DSL boxes with deficient
//! upload and fibre boxes, balanced by upload compensation and relaying.
//!
//! ```text
//! cargo run --release --example heterogeneous_isp
//! ```

use p2p_vod::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vod_analysis::theorem2;

fn main() {
    // Fleet: 40 DSL boxes uploading only 0.6 streams and 40 fibre boxes
    // uploading 2.6 streams; storage proportional to upload (d/u = 6).
    let c: u16 = 8;
    let mut uploads = vec![0.6f64; 40];
    uploads.extend(vec![2.6f64; 40]);
    let boxes = VideoSystem::proportional_boxes(&uploads, 6.0, c);
    let n = boxes.len();

    let (avg_u, necessary) = theorem2::necessary_condition(&boxes);
    println!("Fleet: {} boxes, average upload u = {:.2}", n, avg_u);
    println!(
        "Necessary condition u > 1 + Δ(1)/n: {:.2} > {:.2} ? {}",
        avg_u,
        necessary,
        avg_u > necessary
    );

    // Pick the poor/rich threshold u* and verify the balancing conditions.
    let u_star = Bandwidth::from_streams(1.2);
    let plan = compensate(&boxes, u_star).expect("fleet is u*-upload-compensable");
    println!(
        "u* = {}: {} poor boxes relayed through {} distinct rich boxes",
        u_star,
        plan.covered_poor(),
        {
            let mut relays: Vec<BoxId> = plan.assignments().map(|(_, r)| r).collect();
            relays.sort();
            relays.dedup();
            relays.len()
        }
    );

    // Assemble the u*-balanced system with a catalog sized to the storage.
    let d_avg = boxes.average_storage_videos(c);
    let k = 4u32;
    let catalog_size = (d_avg * n as f64 / k as f64).floor() as usize;
    let catalog = Catalog::uniform(catalog_size, 70, c);
    let params = SystemParams::new(n, avg_u, d_avg.round() as u32, c, k, 1.2, 70);
    let mut rng = StdRng::seed_from_u64(23);
    let system = VideoSystem::heterogeneous(
        params,
        boxes,
        catalog,
        &RandomPermutationAllocator::new(k),
        Some(u_star),
        &mut rng,
    )
    .expect("u*-balanced system");

    println!(
        "Catalog: {} videos of {} stripes; poor boxes keep {:.1} stream(s) for open requests",
        system.m(),
        system.c(),
        system.available_upload(BoxId(0)).as_streams()
    );

    // Adversarial scenario from Section 4: every poor box converges on the
    // same video while the rich boxes are busy with videos they do not store.
    let poor: Vec<BoxId> = system.boxes().poor_ids(u_star);
    let rich: Vec<BoxId> = system.boxes().rich_ids(u_star);
    let mut attack = PoorBoxesSameVideo::new(
        poor,
        rich,
        VideoId(0),
        system.placement(),
        system.catalog(),
        1.2,
    );
    let report = Simulator::new(&system, SimConfig::new(140)).run(&mut attack);

    println!(
        "\nPoor-boxes-pile-on attack over {} rounds:",
        report.round_count()
    );
    println!("  demands accepted    : {}", report.total_demands);
    println!("  all rounds feasible : {}", report.all_rounds_feasible());
    println!("  service ratio       : {:.4}", report.service_ratio());
    println!("  swarming share      : {:.3}", report.swarming_share());
    println!(
        "  mean start-up delay : {:.1} rounds",
        report.mean_startup_delay()
    );
    if let Some(f) = report.failures.first() {
        println!(
            "  first failure       : round {} ({} unserved)",
            f.round, f.unserved
        );
    }

    // Same fleet WITHOUT compensation/relaying, for contrast.
    let boxes2 = VideoSystem::proportional_boxes(&uploads, 6.0, c);
    let catalog2 = Catalog::uniform(catalog_size, 70, c);
    let mut rng = StdRng::seed_from_u64(23);
    let uncompensated = VideoSystem::heterogeneous(
        params,
        boxes2,
        catalog2,
        &RandomPermutationAllocator::new(k),
        None,
        &mut rng,
    )
    .unwrap();
    let poor: Vec<BoxId> = uncompensated.boxes().poor_ids(u_star);
    let rich: Vec<BoxId> = uncompensated.boxes().rich_ids(u_star);
    let mut attack = PoorBoxesSameVideo::new(
        poor,
        rich,
        VideoId(0),
        uncompensated.placement(),
        uncompensated.catalog(),
        1.2,
    );
    let baseline = Simulator::new(&uncompensated, SimConfig::new(140)).run(&mut attack);
    println!(
        "\nWithout relaying: feasible = {}, service ratio = {:.4} (compensated fleet: {:.4})",
        baseline.all_rounds_feasible(),
        baseline.service_ratio(),
        report.service_ratio()
    );
}
