//! Quickstart: build a homogeneous box fleet, pick Theorem 1 parameters,
//! run a day of mixed viewing, and print a feasibility summary.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use p2p_vod::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Fleet description: 64 set-top boxes, upload twice the video bitrate,
    //    storage for 8 feature-length videos each, swarm growth at most 30%
    //    per round.
    let n = 64;
    let u = 2.0;
    let d = 8.0;
    let mu = 1.3;

    // 2. Let Theorem 1 pick the stripe count and replication level, then
    //    clamp the replication to something the storage can actually hold
    //    (the theorem's constants are conservative).
    let t1 = Theorem1Params::derive(n, u, d, mu).expect("u > 1 required");
    println!("Theorem 1 parameters for (n={n}, u={u}, d={d}, µ={mu}):");
    println!("  stripes per video      c  = {}", t1.c);
    println!("  expansion margin       ν  = {:.4}", t1.nu);
    println!("  effective upload       u′ = {:.3}", t1.u_prime);
    println!("  prescribed replication k  = {}", t1.k);
    println!(
        "  analytic catalog bound    ≳ {:.1} videos",
        t1.catalog_bound
    );

    // A practical deployment uses far less replication than the worst-case
    // prescription; the simulator will confirm it still works for realistic
    // demand.
    let k = 4u32;
    let params = SystemParams::new(n, u, d as u32, t1.c, k, mu, 60);
    println!(
        "\nDeployed configuration: c = {}, k = {}, catalog = {} videos",
        t1.c,
        k,
        params.catalog_size()
    );

    // 3. Build the system with a random permutation allocation.
    let mut rng = StdRng::seed_from_u64(2009);
    let system = VideoSystem::homogeneous(params, &RandomPermutationAllocator::new(k), &mut rng)
        .expect("allocation fits");

    // 4. Drive it with continuous viewing (every box always watching) for
    //    three video durations and report.
    let mut demand = SequentialViewing::new(n, system.m(), NextVideoPolicy::UniformRandom, mu, 7);
    let report = Simulator::new(&system, SimConfig::new(180)).run(&mut demand);

    println!("\nSimulation over {} rounds:", report.round_count());
    println!("  demands accepted        {}", report.total_demands);
    println!("  all rounds feasible     {}", report.all_rounds_feasible());
    println!("  service ratio           {:.4}", report.service_ratio());
    println!("  mean upload utilization {:.3}", report.mean_utilization());
    println!("  swarming share          {:.3}", report.swarming_share());
    println!(
        "  mean start-up delay     {:.1} rounds",
        report.mean_startup_delay()
    );

    // 5. Contrast with an under-provisioned fleet (u < 1): the never-owned
    //    adversary defeats it as soon as the catalog exceeds d·c videos.
    let starved = SystemParams::new(n, 0.8, d as u32, 4, 1, mu, 60);
    let mut rng = StdRng::seed_from_u64(2009);
    let starved_system =
        VideoSystem::homogeneous(starved, &RandomPermutationAllocator::new(1), &mut rng).unwrap();
    let mut attack =
        NeverOwnedAttack::new(starved_system.placement(), starved_system.catalog(), mu);
    let starved_report = Simulator::new(&starved_system, SimConfig::new(60)).run(&mut attack);
    println!(
        "\nBelow the threshold (u = 0.8, catalog = {} videos): feasible = {}, first failure = {:?}",
        starved_system.m(),
        starved_report.all_rounds_feasible(),
        starved_report.failures.first().map(|f| f.round)
    );
}
