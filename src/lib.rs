//! # p2p-vod
//!
//! A complete reproduction of *"An Upload Bandwidth Threshold for
//! Peer-to-Peer Video-on-Demand Scalability"* (Boufkhad, Mathieu,
//! de Montgolfier, Perino, Viennot — IPDPS 2009) as a Rust workspace:
//!
//! * [`core`] — the `(n, u, d)`-video-system model: boxes, videos,
//!   stripes, catalogs, playback caches, random allocations, and the
//!   heterogeneous `u*`-balancing machinery;
//! * [`flow`] — the max-flow / matching substrate behind the per-round
//!   connection-matching feasibility (Lemma 1);
//! * [`workloads`] — adversarial and stochastic demand generators
//!   (never-owned attack, flash crowds, Zipf, Poisson…);
//! * [`sim`] — the discrete round-based protocol simulator (preloading
//!   strategy, relaying, schedulers, metrics, churn, fault injection and
//!   delivery reliability);
//! * [`analysis`] — Theorems 1 & 2, the first-moment obstruction bound,
//!   Monte-Carlo estimation and threshold searches.
//!
//! ## Quick start
//!
//! ```
//! use p2p_vod::prelude::*;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // A homogeneous system of 32 boxes with upload u = 2 streams, storage
//! // d = 8 videos, c = 4 stripes, k = 4 replicas, swarm growth µ = 1.3.
//! let params = SystemParams::new(32, 2.0, 8, 4, 4, 1.3, 40);
//! let mut rng = StdRng::seed_from_u64(7);
//! let system = VideoSystem::homogeneous(
//!     params,
//!     &RandomPermutationAllocator::new(4),
//!     &mut rng,
//! ).unwrap();
//!
//! // Everyone watches continuously for 60 rounds; the run must stay feasible.
//! let mut demand = SequentialViewing::new(32, system.m(), NextVideoPolicy::RoundRobin, 1.3, 1);
//! let report = Simulator::new(&system, SimConfig::new(60)).run(&mut demand);
//! assert!(report.all_rounds_feasible());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use vod_analysis as analysis;
pub use vod_core as core;
pub use vod_flow as flow;
pub use vod_sim as sim;
pub use vod_workloads as workloads;

/// Commonly used items from every crate, for `use p2p_vod::prelude::*`.
pub mod prelude {
    pub use vod_analysis::{
        estimate_failure_probability, find_upload_threshold, first_moment_bound,
        max_feasible_catalog, BoundParams, FeasibilityEstimate, LowerBoundCheck, SearchConfig,
        Summary, Table, Theorem1Params, Theorem2Params, TrialSpec, WorkloadKind,
    };
    pub use vod_core::{
        compensate, relay_reservation, Allocator, Bandwidth, BoxId, BoxSet, Catalog,
        CompensationDelta, CompensationPlan, CoreError, FullReplicationAllocator, Json, JsonCodec,
        JsonError, NodeBox, Placement, PlaybackCache, RandomIndependentAllocator,
        RandomPermutationAllocator, RoundRobinAllocator, StorageSlots, StripeId, SystemParams,
        Video, VideoId, VideoSystem,
    };
    pub use vod_flow::{
        find_obstruction, find_obstruction_in, verify_lemma1, CandidateBuf, CandidateView,
        ConnectionMatching, ConnectionProblem, Dinic, FlowArena, HopcroftKarpSolve, MaxFlowSolve,
        Obstruction, PushRelabel, ReconcileStats, RelayLendStats, RelayMatching, RelayNetwork,
        RelayObstruction, RelayView, ShardedArena, SplitStats, StarvedReservation, NO_STAMP,
    };
    pub use vod_sim::{
        Admission, CandidateIndex, CandidateMode, CandidateStats, DegradationConfig,
        DegradationController, DegradationRoundStats, DeliveryOutcome, DeliveryPolicy,
        DeliveryRoundStats, DeliverySummary, DeliveryTracker, FailurePolicy, GreedyScheduler,
        IncrementalMatcher, MaxFlowScheduler, RandomScheduler, ReconcilePolicy, RelayBroker,
        RelayEvent, RelayRoundStats, RelayUtilization, RepairPlanner, RepairRoundStats,
        RepairTransfer, RequestKey, Scheduler, ShardRoundStats, ShardedMatcher, SimConfig,
        SimulationReport, Simulator, SplitPolicy,
    };
    pub use vod_workloads::{
        ChurnCounts, ChurnEvent, ChurnModel, DemandGenerator, DemandTrace, FaultCounts, FaultEvent,
        FaultModel, FlashCrowd, MultiSwarmChurn, NeverOwnedAttack, NextVideoPolicy, PoissonDemand,
        PoorBoxesSameVideo, Popularity, SequentialViewing, SessionLength, SwarmGrowthLimiter,
        VideoDemand, ZipfDemand, ZipfSampler,
    };
}
