//! Property-based tests of the allocation schemes and the core model
//! invariants they must preserve. Instances come from seeded RNG loops (the
//! environment has no proptest), so failures are reproducible from the
//! printed seed.

use p2p_vod::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 48;

/// Small but non-trivial allocation scenario whose catalog is guaranteed to
/// fit: boxes, slots per box, catalog size, stripes, replication.
fn scenario(rng: &mut StdRng) -> (usize, u32, usize, u16, u32, u64) {
    let n = rng.gen_range(4usize..24);
    let c = rng.gen_range(2u16..6);
    let k = rng.gen_range(1u32..4);
    let slots = rng.gen_range(8u32..32);
    let max_m = ((n as u64 * slots as u64) / (k as u64 * c as u64)).max(1);
    let m = rng.gen_range(1u64..=max_m) as usize;
    let seed = rng.gen::<u64>();
    (n, slots, m, c, k, seed)
}

/// The permutation allocation fills boxes within capacity and places exactly
/// k·m·c replicas (counting duplicate draws as wasted slots).
#[test]
fn permutation_allocation_invariants() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case);
        let (n, slots, m, c, k, seed) = scenario(&mut rng);
        let boxes = BoxSet::homogeneous(
            n,
            Bandwidth::from_streams(1.5),
            StorageSlots::from_slots(slots),
        );
        let catalog = Catalog::uniform(m, 50, c);
        let mut alloc_rng = StdRng::seed_from_u64(seed);
        let placement = RandomPermutationAllocator::new(k)
            .allocate(&boxes, &catalog, &mut alloc_rng)
            .unwrap();

        assert!(placement.max_load() <= slots as usize, "case {case}");
        let replicas: usize = catalog.stripes().map(|s| placement.replica_count(s)).sum();
        assert_eq!(
            replicas + placement.wasted_slots(),
            k as usize * m * c as usize,
            "case {case}"
        );
        assert!(
            placement.validate(&boxes, &catalog, 0).is_ok(),
            "case {case}"
        );
        // Every holder recorded for a stripe indeed stores it.
        for stripe in catalog.stripes() {
            for &b in placement.holders_of(stripe) {
                assert!(placement.stores(b, stripe), "case {case}");
            }
        }
    }
}

/// The capacity-respecting independent allocation also fits, and places the
/// same number of replicas.
#[test]
fn independent_allocation_respects_capacity() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(100 + case);
        let (n, slots, m, c, k, seed) = scenario(&mut rng);
        let boxes = BoxSet::homogeneous(
            n,
            Bandwidth::from_streams(1.5),
            StorageSlots::from_slots(slots),
        );
        let catalog = Catalog::uniform(m, 50, c);
        let mut alloc_rng = StdRng::seed_from_u64(seed);
        let placement = RandomIndependentAllocator::new(k)
            .allocate(&boxes, &catalog, &mut alloc_rng)
            .unwrap();
        assert!(placement.max_load() <= slots as usize, "case {case}");
        let replicas: usize = catalog.stripes().map(|s| placement.replica_count(s)).sum();
        assert_eq!(
            replicas + placement.wasted_slots(),
            k as usize * m * c as usize,
            "case {case}"
        );
    }
}

/// The round-robin allocation is deterministic and gives every stripe
/// exactly k distinct replicas.
#[test]
fn round_robin_allocation_exact_replication() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(200 + case);
        let (n, slots, m, c, k, seed) = scenario(&mut rng);
        // Exact replication needs k ≤ n distinct boxes per stripe.
        if k as usize > n {
            continue;
        }
        let boxes = BoxSet::homogeneous(
            n,
            Bandwidth::from_streams(1.5),
            StorageSlots::from_slots(slots),
        );
        let catalog = Catalog::uniform(m, 50, c);
        let a = RoundRobinAllocator::new(k)
            .allocate(&boxes, &catalog, &mut StdRng::seed_from_u64(seed))
            .unwrap();
        let b = RoundRobinAllocator::new(k)
            .allocate(
                &boxes,
                &catalog,
                &mut StdRng::seed_from_u64(seed.wrapping_add(1)),
            )
            .unwrap();
        assert_eq!(&a, &b, "case {case}");
        for stripe in catalog.stripes() {
            assert_eq!(a.replica_count(stripe), k as usize, "case {case}");
        }
    }
}

/// Bandwidth fixed-point arithmetic: stripe slots are always the floor of
/// u·c and the effective capacity never exceeds the nominal one.
#[test]
fn bandwidth_floor_semantics() {
    for case in 0..CASES * 4 {
        let mut rng = StdRng::seed_from_u64(300 + case);
        let u = rng.gen_range(0.0f64..8.0);
        let c = rng.gen_range(1u16..64);
        let b = Bandwidth::from_streams(u);
        let slots = b.stripe_slots(c);
        // Allow for the 1/1000 fixed-point granularity of `from_streams`.
        let millis_u = b.as_streams();
        assert_eq!(
            slots,
            (millis_u * c as f64 + 1e-9).floor() as u32,
            "case {case}: u={u} c={c}"
        );
        assert!(b.effective(c) <= b, "case {case}");
    }
}

/// The swarm-growth limiter never lets a join sequence violate the bound it
/// was configured with.
#[test]
fn swarm_limiter_sequences_always_verify() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(400 + case);
        let mu = rng.gen_range(11u32..30) as f64 / 10.0;
        let rounds = rng.gen_range(1usize..12);
        let mut limiter = SwarmGrowthLimiter::new(1, mu);
        let mut joins = Vec::new();
        for round in 0..rounds {
            limiter.advance_to(round as u64);
            let wanted = rng.gen_range(0usize..10);
            joins.push(limiter.admit(VideoId(0), wanted));
        }
        assert!(
            SwarmGrowthLimiter::verify(mu, &joins).is_ok(),
            "case {case}: µ={mu} joins={joins:?}"
        );
    }
}

/// Playback-cache window semantics: an entry can serve a later request only
/// while it is fresh, and never one issued before its own start.
#[test]
fn cache_serving_window() {
    for case in 0..CASES * 4 {
        let mut rng = StdRng::seed_from_u64(500 + case);
        let start = rng.gen_range(0u64..100);
        let req = rng.gen_range(0u64..100);
        let now_off = rng.gen_range(0u64..50);
        let window = rng.gen_range(1u64..60);
        let mut cache = PlaybackCache::new();
        let stripe = StripeId::new(VideoId(0), 0);
        cache.insert(stripe, start);
        let now = req.max(start) + now_off;
        let can = cache.can_serve(stripe, req, now, window);
        assert_eq!(
            can,
            start < req && start + window >= now,
            "case {case}: start={start} req={req} now={now} window={window}"
        );
    }
}
