//! Property-based tests of the allocation schemes and the core model
//! invariants they must preserve.

use p2p_vod::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy for small but non-trivial allocation scenarios whose catalog is
/// guaranteed to fit: boxes, slots per box, stripes, replication and a seed.
fn scenarios() -> impl Strategy<Value = (usize, u32, usize, u16, u32, u64)> {
    (4usize..24, 2u16..6, 1u32..4, any::<u64>()).prop_flat_map(|(n, c, k, seed)| {
        // slots_per_box chosen so that k*m*c ≤ n*slots for some m ≥ 1.
        (8u32..32).prop_flat_map(move |slots| {
            let max_m = (n as u64 * slots as u64 / (k as u64 * c as u64)).max(1);
            (1u64..=max_m).prop_map(move |m| (n, slots, m as usize, c, k, seed))
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The permutation allocation fills boxes within capacity and places
    /// exactly k·m·c replicas (counting duplicate draws as wasted slots).
    #[test]
    fn permutation_allocation_invariants((n, slots, m, c, k, seed) in scenarios()) {
        let boxes = BoxSet::homogeneous(n, Bandwidth::from_streams(1.5), StorageSlots::from_slots(slots));
        let catalog = Catalog::uniform(m, 50, c);
        let mut rng = StdRng::seed_from_u64(seed);
        let placement = RandomPermutationAllocator::new(k).allocate(&boxes, &catalog, &mut rng).unwrap();

        prop_assert!(placement.max_load() <= slots as usize);
        let replicas: usize = catalog.stripes().map(|s| placement.replica_count(s)).sum();
        prop_assert_eq!(replicas + placement.wasted_slots(), k as usize * m * c as usize);
        prop_assert!(placement.validate(&boxes, &catalog, 0).is_ok());
        // Every holder recorded for a stripe indeed stores it.
        for stripe in catalog.stripes() {
            for &b in placement.holders_of(stripe) {
                prop_assert!(placement.stores(b, stripe));
            }
        }
    }

    /// The capacity-respecting independent allocation also fits, and places
    /// the same number of replicas.
    #[test]
    fn independent_allocation_respects_capacity((n, slots, m, c, k, seed) in scenarios()) {
        let boxes = BoxSet::homogeneous(n, Bandwidth::from_streams(1.5), StorageSlots::from_slots(slots));
        let catalog = Catalog::uniform(m, 50, c);
        let mut rng = StdRng::seed_from_u64(seed);
        let placement = RandomIndependentAllocator::new(k).allocate(&boxes, &catalog, &mut rng).unwrap();
        prop_assert!(placement.max_load() <= slots as usize);
        let replicas: usize = catalog.stripes().map(|s| placement.replica_count(s)).sum();
        prop_assert_eq!(replicas + placement.wasted_slots(), k as usize * m * c as usize);
    }

    /// The round-robin allocation is deterministic and gives every stripe
    /// exactly k distinct replicas.
    #[test]
    fn round_robin_allocation_exact_replication((n, slots, m, c, k, seed) in scenarios()) {
        let boxes = BoxSet::homogeneous(n, Bandwidth::from_streams(1.5), StorageSlots::from_slots(slots));
        let catalog = Catalog::uniform(m, 50, c);
        // Exact replication needs k ≤ n distinct boxes per stripe.
        prop_assume!(k as usize <= n);
        let a = RoundRobinAllocator::new(k)
            .allocate(&boxes, &catalog, &mut StdRng::seed_from_u64(seed))
            .unwrap();
        let b = RoundRobinAllocator::new(k)
            .allocate(&boxes, &catalog, &mut StdRng::seed_from_u64(seed.wrapping_add(1)))
            .unwrap();
        prop_assert_eq!(&a, &b);
        for stripe in catalog.stripes() {
            prop_assert_eq!(a.replica_count(stripe), k as usize);
        }
    }

    /// Bandwidth fixed-point arithmetic: stripe slots are always the floor of
    /// u·c and the effective capacity never exceeds the nominal one.
    #[test]
    fn bandwidth_floor_semantics(u in 0.0f64..8.0, c in 1u16..64) {
        let b = Bandwidth::from_streams(u);
        let slots = b.stripe_slots(c);
        // Allow for the 1/1000 fixed-point granularity of `from_streams`.
        let millis_u = b.as_streams();
        prop_assert_eq!(slots, (millis_u * c as f64 + 1e-9).floor() as u32);
        prop_assert!(b.effective(c) <= b);
    }

    /// The swarm-growth limiter never lets a join sequence violate the bound
    /// it was configured with.
    #[test]
    fn swarm_limiter_sequences_always_verify(
        mu_tenths in 11u32..30,
        wanted in proptest::collection::vec(0usize..10, 1..12),
    ) {
        let mu = mu_tenths as f64 / 10.0;
        let mut limiter = SwarmGrowthLimiter::new(1, mu);
        let mut joins = Vec::new();
        for (round, &w) in wanted.iter().enumerate() {
            limiter.advance_to(round as u64);
            joins.push(limiter.admit(VideoId(0), w));
        }
        prop_assert!(SwarmGrowthLimiter::verify(mu, &joins).is_ok());
    }

    /// Playback-cache window semantics: an entry can serve a later request
    /// only while it is fresh, and never one issued before its own start.
    #[test]
    fn cache_serving_window(start in 0u64..100, req in 0u64..100, now_off in 0u64..50, window in 1u64..60) {
        let mut cache = PlaybackCache::new();
        let stripe = StripeId::new(VideoId(0), 0);
        cache.insert(stripe, start);
        let now = req.max(start) + now_off;
        let can = cache.can_serve(stripe, req, now, window);
        prop_assert_eq!(can, start < req && start + window >= now);
    }
}
