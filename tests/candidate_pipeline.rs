//! Candidate-pipeline equivalence gate: the expiry-wheel [`CandidateIndex`]
//! and the flat CSR candidate plumbing must be *invisible* — bit-identical
//! candidate rows, schedules, and reports compared to the legacy full-rescan
//! pipeline and the legacy slice-of-vecs scheduler entry points.
//!
//! * seeded property loops drive the incremental index against a
//!   brute-force model of the legacy structures (per-box playback caches +
//!   full `retain` sweep) through churny rounds — joins, refreshes,
//!   evictions, far-future starts — asserting the per-stripe holder lists
//!   agree in content *and order* every round, and that the change-stamp
//!   contract holds (equal stamp ⇒ identical list);
//! * full-simulator runs compare [`CandidateMode::Rescan`] against the
//!   default incremental mode across workloads (sequential, flash crowd,
//!   multi-swarm churn) and schedulers (global max-flow, sharded 1/4
//!   threads), including a heterogeneous fleet with relayed requesters —
//!   entire [`SimulationReport`]s must be equal (equality ignores only the
//!   candidate build wall-clock);
//! * the [`Scheduler`] trait's CSR entry points are checked against the
//!   slice-of-vecs forms: a bridged scheduler that only implements the
//!   legacy methods (exercising the default-impl bridge) schedules
//!   bit-identically to the native view path, and content-hash change
//!   stamps never alter an incremental matcher's schedule.

use p2p_vod::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

const SEEDS: u64 = 8;

// ---------------------------------------------------------------------------
// Index vs brute-force model
// ---------------------------------------------------------------------------

/// The legacy candidate structures, maintained exactly like the
/// pre-incremental engine: per-box caches swept in full every round plus an
/// insertion-ordered per-stripe index with linear membership scans.
#[derive(Default)]
struct LegacyModel {
    caches: HashMap<u32, PlaybackCache>,
    index: HashMap<StripeId, Vec<BoxId>>,
}

impl LegacyModel {
    fn begin_round(&mut self, now: u64, window: u64) {
        for cache in self.caches.values_mut() {
            cache.evict_older_than(now, window);
        }
        let caches = &self.caches;
        self.index.retain(|stripe, boxes| {
            boxes.retain(|b| {
                caches
                    .get(&b.0)
                    .is_some_and(|cache| cache.start_of(*stripe).is_some())
            });
            !boxes.is_empty()
        });
    }

    fn insert(&mut self, stripe: StripeId, box_id: BoxId, start: u64) {
        self.caches
            .entry(box_id.0)
            .or_default()
            .insert(stripe, start);
        let entry = self.index.entry(stripe).or_default();
        if !entry.contains(&box_id) {
            entry.push(box_id);
        }
    }

    /// The holder list of `stripe` with current starts, in index order.
    fn holders(&self, stripe: StripeId) -> Vec<(BoxId, u64)> {
        self.index
            .get(&stripe)
            .map(|boxes| {
                boxes
                    .iter()
                    .map(|b| (*b, self.caches[&b.0].start_of(stripe).unwrap()))
                    .collect()
            })
            .unwrap_or_default()
    }

    fn live_entries(&self) -> usize {
        self.caches.values().map(PlaybackCache::len).sum()
    }
}

/// The incremental index agrees with the brute-force legacy model on every
/// stripe's holder list — content and order — across churny rounds, and its
/// change stamps never claim "unchanged" across an actual change.
#[test]
fn index_matches_brute_force_recompute_under_churn() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(0xCA17D + seed);
        let window = rng.gen_range(3u64..12);
        let c = rng.gen_range(1u16..5);
        let videos = rng.gen_range(1u32..5);
        let boxes = rng.gen_range(2u32..10);
        let mut index = CandidateIndex::new(window, c);
        let mut model = LegacyModel::default();
        // Remembered (stamp, list) per stripe for the stamp contract.
        let mut last_seen: HashMap<StripeId, (u64, Vec<(BoxId, u64)>)> = HashMap::new();

        for now in 0u64..60 {
            index.begin_round(now);
            model.begin_round(now, window);

            // Random churn: joins (sometimes with future starts, mirroring
            // postponed/relayed activation), refreshes of existing entries.
            for _ in 0..rng.gen_range(0usize..6) {
                let stripe = StripeId::new(VideoId(rng.gen_range(0..videos)), rng.gen_range(0..c));
                let box_id = BoxId(rng.gen_range(0..boxes));
                let start = now + rng.gen_range(0u64..4);
                index.insert(stripe, box_id, start, now);
                model.insert(stripe, box_id, start);
            }

            // Bit-identical per-stripe lists, both ways.
            for video in 0..videos {
                for idx in 0..c {
                    let stripe = StripeId::new(VideoId(video), idx);
                    let incremental = index.candidates(stripe).to_vec();
                    let brute = model.holders(stripe);
                    assert_eq!(
                        incremental, brute,
                        "seed {seed} round {now} stripe {stripe:?}"
                    );

                    // Stamp contract: an unchanged stamp implies an
                    // unchanged list.
                    let stamp = index.stripe_stamp(stripe);
                    if let Some((old_stamp, old_list)) = last_seen.get(&stripe) {
                        if *old_stamp == stamp {
                            assert_eq!(
                                &incremental, old_list,
                                "seed {seed} round {now} stripe {stripe:?}: stamp lied"
                            );
                        }
                    }
                    last_seen.insert(stripe, (stamp, incremental));
                }
            }
            assert_eq!(
                index.live_entries(),
                model.live_entries(),
                "seed {seed} round {now}: live-entry count"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Full-simulator pipeline equivalence
// ---------------------------------------------------------------------------

fn homogeneous_system(n: usize, c: u16, duration: u32, seed: u64) -> VideoSystem {
    let params = SystemParams::new(n, 2.0, 8, c, 4, 1.5, duration);
    let mut rng = StdRng::seed_from_u64(seed);
    VideoSystem::homogeneous(params, &RandomPermutationAllocator::new(4), &mut rng).unwrap()
}

fn run_sim(
    system: &VideoSystem,
    config: SimConfig,
    scheduler: Box<dyn Scheduler>,
    make_gen: impl Fn() -> Box<dyn DemandGenerator>,
) -> SimulationReport {
    let mut gen = make_gen();
    Simulator::with_scheduler(system, config, scheduler).run(gen.as_mut())
}

/// Rescan vs incremental candidate pipelines produce identical reports
/// (schedules, metrics, failures, candidate counters) for every workload ×
/// scheduler combination, including stall-heavy infeasible runs.
#[test]
fn simulator_reports_identical_across_pipelines_workloads_and_schedulers() {
    let sys = homogeneous_system(28, 4, 16, 5);
    // u = 0.4 < 1 with a single replica: chronically infeasible, so the
    // failure path runs every round.
    let starved = {
        let params = SystemParams::new(12, 0.4, 8, 4, 1, 1.5, 16);
        let mut rng = StdRng::seed_from_u64(6);
        VideoSystem::homogeneous(params, &RandomPermutationAllocator::new(1), &mut rng).unwrap()
    };
    type GenFactory = Box<dyn Fn() -> Box<dyn DemandGenerator>>;
    let m = sys.m();
    let workloads: Vec<(&str, GenFactory)> = vec![
        (
            "sequential",
            Box::new(move || {
                Box::new(SequentialViewing::new(
                    28,
                    m,
                    NextVideoPolicy::RoundRobin,
                    1.5,
                    7,
                ))
            }),
        ),
        (
            "flash-crowd",
            Box::new(move || Box::new(FlashCrowd::single(VideoId(0), 28, m, 1.5, 3))),
        ),
        (
            "multi-swarm churn",
            Box::new(move || Box::new(MultiSwarmChurn::new(m, 4, 5, 1.5, 11).with_rotation(5))),
        ),
    ];

    type SchedFactory = Box<dyn Fn() -> Box<dyn Scheduler>>;
    let schedulers: Vec<(&str, SchedFactory)> = vec![
        ("max-flow", Box::new(|| Box::new(MaxFlowScheduler::new()))),
        ("sharded-1", Box::new(|| Box::new(ShardedMatcher::new(1)))),
        ("sharded-4", Box::new(|| Box::new(ShardedMatcher::new(4)))),
    ];

    for (wl_name, make_gen) in &workloads {
        for (sched_name, make_sched) in &schedulers {
            let config = SimConfig::new(40).continue_on_failure();
            let incremental = run_sim(&sys, config, make_sched(), make_gen);
            let rescan = run_sim(
                &sys,
                config.with_rescan_candidates(),
                make_sched(),
                make_gen,
            );
            assert_eq!(
                incremental, rescan,
                "pipeline divergence: workload {wl_name}, scheduler {sched_name}"
            );
        }
    }

    // A chronically starved system (stalls every round) exercises the
    // failure path — obstruction extraction reads the same CSR rows.
    let config = SimConfig::new(25).continue_on_failure();
    let make_gen = || -> Box<dyn DemandGenerator> {
        Box::new(SequentialViewing::new(
            12,
            starved.m(),
            NextVideoPolicy::RoundRobin,
            1.5,
            1,
        ))
    };
    let a = run_sim(
        &starved,
        config,
        Box::new(MaxFlowScheduler::new()),
        make_gen,
    );
    let b = run_sim(
        &starved,
        config.with_rescan_candidates(),
        Box::new(MaxFlowScheduler::new()),
        make_gen,
    );
    assert_eq!(a, b, "failure-path pipeline divergence");
    assert!(!a.all_rounds_feasible(), "starved run must stall");
}

/// Heterogeneous fleet (compensation plan, relayed requesters): pipeline
/// equality holds through the relay subsystem too, and the sharded path
/// stays bit-identical across thread counts under the incremental pipeline.
#[test]
fn heterogeneous_relayed_runs_are_pipeline_invariant() {
    let c: u16 = 8;
    let mut uploads = vec![0.6f64; 6];
    uploads.extend(vec![2.6f64; 12]);
    let boxes = VideoSystem::proportional_boxes(&uploads, 6.0, c);
    let n = boxes.len();
    let d_avg = boxes.average_storage_videos(c);
    let avg_u = boxes.average_upload();
    let u_star = Bandwidth::from_streams(1.2);
    let k = 3u32;
    let catalog_size = ((d_avg * n as f64) / k as f64).floor() as usize;
    let catalog = Catalog::uniform(catalog_size, 20, c);
    let params = SystemParams::new(n, avg_u, d_avg.round().max(1.0) as u32, c, k, 1.2, 20);
    let mut rng = StdRng::seed_from_u64(77);
    let system = VideoSystem::heterogeneous(
        params,
        boxes,
        catalog,
        &RandomPermutationAllocator::new(k),
        Some(u_star),
        &mut rng,
    )
    .expect("fleet is u*-compensable");
    let poor = system.boxes().poor_ids(u_star);

    let run = |config: SimConfig, scheduler: Box<dyn Scheduler>| {
        let mut gen = MultiSwarmChurn::new(system.m(), 3, 5, 1.2, 5)
            .with_rotation(6)
            .with_priority_boxes(poor.clone());
        Simulator::with_scheduler(&system, config, scheduler).run(&mut gen)
    };

    let config = SimConfig::new(25).continue_on_failure();
    for threads in [1usize, 4] {
        let incremental = run(config, Box::new(ShardedMatcher::new(threads)));
        let rescan = run(
            config.with_rescan_candidates(),
            Box::new(ShardedMatcher::new(threads)),
        );
        assert_eq!(
            incremental, rescan,
            "threads {threads}: pipeline divergence"
        );
        assert!(
            incremental.rounds.iter().any(|r| r.relay.is_some()),
            "relay stats missing"
        );
    }
    // Global matcher agrees with the sharded one under the new pipeline.
    let global = run(config, Box::new(MaxFlowScheduler::new()));
    let sharded = run(config, Box::new(ShardedMatcher::new(2)));
    for (a, b) in sharded.rounds.iter().zip(&global.rounds) {
        assert_eq!(a.served, b.served, "round {}", a.round);
        assert_eq!(a.unserved, b.unserved, "round {}", a.round);
    }
}

// ---------------------------------------------------------------------------
// CSR entry points vs slice-of-vecs forms
// ---------------------------------------------------------------------------

/// A scheduler that implements only the legacy slice-of-vecs methods, so
/// every engine call reaches it through the `Scheduler` trait's default
/// view→vecs bridge.
struct BridgedMaxFlow(MaxFlowScheduler);

impl Scheduler for BridgedMaxFlow {
    fn schedule(&mut self, capacities: &[u32], candidates: &[Vec<BoxId>]) -> Vec<Option<BoxId>> {
        self.0.schedule(capacities, candidates)
    }

    fn schedule_keyed(
        &mut self,
        capacities: &[u32],
        keys: &[RequestKey],
        candidates: &[Vec<BoxId>],
        out: &mut Vec<Option<BoxId>>,
    ) {
        self.0.schedule_keyed(capacities, keys, candidates, out);
    }

    fn name(&self) -> &'static str {
        "bridged-max-flow"
    }
}

/// External schedulers that never heard of CSR views keep working through
/// the default bridge — and schedule exactly like the native view path.
#[test]
fn default_view_bridge_matches_native_view_path() {
    let sys = homogeneous_system(24, 4, 14, 9);
    let config = SimConfig::new(35).continue_on_failure();
    let make_gen = || -> Box<dyn DemandGenerator> {
        Box::new(MultiSwarmChurn::new(sys.m(), 4, 5, 1.5, 13).with_rotation(4))
    };
    let native = run_sim(&sys, config, Box::new(MaxFlowScheduler::new()), make_gen);
    let bridged = run_sim(
        &sys,
        config,
        Box::new(BridgedMaxFlow(MaxFlowScheduler::new())),
        make_gen,
    );
    assert_eq!(native.round_count(), bridged.round_count());
    for (a, b) in native.rounds.iter().zip(&bridged.rounds) {
        assert_eq!(a.served, b.served, "round {}", a.round);
        assert_eq!(a.unserved, b.unserved, "round {}", a.round);
        assert_eq!(
            a.served_from_cache, b.served_from_cache,
            "round {}",
            a.round
        );
    }
    assert_eq!(native.failures, bridged.failures);
    assert_eq!(native.playbacks, bridged.playbacks);
}

fn row_hash(row: &[BoxId]) -> u64 {
    let mut hasher = vod_core::FxHasher64::default();
    row.hash(&mut hasher);
    // Stay clear of the NO_STAMP sentinel.
    hasher.finish() & (u64::MAX >> 1)
}

/// Change stamps are an optimization, never a semantic: an incremental
/// matcher fed content-hash stamps (equal stamp ⇔ equal row, so the skip
/// path triggers constantly) schedules bit-identically to one fed no
/// stamps, and to the slice-of-vecs entry point, under rolling churn.
#[test]
fn change_stamps_never_alter_schedules() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(0x57A4 + seed);
        let n = rng.gen_range(4usize..12);
        let caps: Vec<u32> = (0..n).map(|_| rng.gen_range(0u32..4)).collect();
        let mut stamped = IncrementalMatcher::default();
        let mut plain = IncrementalMatcher::default();
        let mut legacy = IncrementalMatcher::default();
        let mut live: Vec<(RequestKey, Vec<BoxId>)> = Vec::new();
        let mut next = 0u32;
        let (mut out_a, mut out_b, mut out_c) = (Vec::new(), Vec::new(), Vec::new());

        for round in 0..30 {
            // Rolling window churn with occasional in-place row changes.
            live.retain(|_| !rng.gen_bool(0.2));
            for _ in 0..rng.gen_range(0usize..4) {
                let video = rng.gen_range(0u32..3);
                let cands: Vec<BoxId> = (0..rng.gen_range(0usize..4))
                    .map(|_| BoxId(rng.gen_range(0..n as u32)))
                    .collect();
                live.push((
                    RequestKey {
                        viewer: BoxId(next),
                        stripe: StripeId::new(VideoId(video), 0),
                    },
                    cands,
                ));
                next += 1;
            }
            if !live.is_empty() && rng.gen_bool(0.5) {
                let victim = rng.gen_range(0..live.len());
                live[victim].1.push(BoxId(rng.gen_range(0..n as u32)));
            }

            let keys: Vec<RequestKey> = live.iter().map(|(k, _)| *k).collect();
            let rows: Vec<Vec<BoxId>> = live.iter().map(|(_, c)| c.clone()).collect();
            let mut buf = CandidateBuf::new();
            buf.fill_from_slices(&rows);
            let stamps: Vec<u64> = rows.iter().map(|row| row_hash(row)).collect();

            stamped.schedule_keyed_view(&caps, &keys, buf.view_with_stamps(&stamps), &mut out_a);
            plain.schedule_keyed_view(&caps, &keys, buf.view(), &mut out_b);
            legacy.schedule_keyed(&caps, &keys, &rows, &mut out_c);
            assert_eq!(
                out_a, out_b,
                "seed {seed} round {round}: stamps changed schedule"
            );
            assert_eq!(
                out_b, out_c,
                "seed {seed} round {round}: view path diverged"
            );
        }
    }
}
