//! Live-population properties: the churn model, the stripe repair planner,
//! and the engine loop that ties them together.
//!
//! The paper's threshold analysis assumes a static box population; the live
//! engine relaxes that with seeded churn and budgeted repair. These tests
//! pin the invariants the relaxation must keep:
//!
//! * **budget discipline** — repair upload never exceeds its per-round
//!   budget, its per-box egress cap, or the `⌊u_b·c⌋` Lemma-1 slot budgets
//!   it shares with serving traffic;
//! * **monotone recovery** — absent further departures, the set of
//!   under-replicated stripes only shrinks, round over round;
//! * **scheduler invariance** — the repair trajectory (stats, placement,
//!   totals) is bit-identical across the incremental, full-rescan, and
//!   sharded (1/2/4 thread) pipelines;
//! * **compensation validity** — after relays and poor boxes churn out, the
//!   broker's live plan still validates against the surviving population
//!   and the repaired placement stays within storage and liveness bounds.

use p2p_vod::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn homogeneous(n: usize, u: f64, c: u16, k: u32, duration: u32, seed: u64) -> VideoSystem {
    let params = SystemParams::new(n, u, 8, c, k, 1.3, duration);
    let mut rng = StdRng::seed_from_u64(seed);
    VideoSystem::homogeneous(params, &RandomPermutationAllocator::new(k), &mut rng).unwrap()
}

fn viewing(sys: &VideoSystem, seed: u64) -> SequentialViewing {
    SequentialViewing::new(sys.n(), sys.m(), NextVideoPolicy::RoundRobin, 1.3, seed)
}

/// Repair upload obeys every budget at once: the per-round cap, the
/// per-box egress cap, and the static `⌊u_b·c⌋` slot budgets the scheduler
/// shares — on every round of a churned run.
#[test]
fn repair_never_oversubscribes_lemma1_budgets() {
    let sys = homogeneous(24, 2.0, 4, 3, 12, 11);
    let churn = ChurnModel::new(sys.boxes(), 5)
        .with_session(SessionLength::Geometric { leave_rate: 0.04 })
        .with_rejoin_delay(2, 5)
        .with_min_up(16);
    let round_budget = 3;
    let egress_cap = 2;
    let mut sim = Simulator::new(&sys, SimConfig::new(40).continue_on_failure());
    sim.attach_churn(churn);
    sim.attach_repair(
        RepairPlanner::for_system(&sys, round_budget).with_per_box_egress(egress_cap),
    );
    let mut gen = viewing(&sys, 11);
    let mut repaired_rounds = 0usize;
    for _ in 0..40 {
        sim.step(&mut gen);
        let stats = sim
            .report_so_far()
            .rounds
            .last()
            .and_then(|r| r.repair)
            .expect("repair attached: every round carries stats");
        assert!(stats.budget_slots <= round_budget, "round budget exceeded");
        assert_eq!(stats.budget_slots as usize, stats.repaired);
        let planner = sim.repair_planner().expect("attached");
        let egress_total: u32 = planner.egress().iter().sum();
        assert_eq!(egress_total, stats.budget_slots, "egress must equal plan");
        for (idx, &egress) in planner.egress().iter().enumerate() {
            assert!(egress <= egress_cap, "per-box egress cap violated on {idx}");
            assert!(
                egress <= sys.upload_slots(BoxId(idx as u32)),
                "box {idx} repairs beyond its ⌊u_b·c⌋ slots"
            );
        }
        if stats.repaired > 0 {
            repaired_rounds += 1;
        }
    }
    assert!(repaired_rounds > 0, "churn never triggered repair");
}

/// With departures scripted up-front and none afterwards, the pending queue
/// is monotonically non-increasing and drains to empty.
#[test]
fn under_replication_only_shrinks_absent_departures() {
    // Half the `⌊d·n/k⌋` catalog point: the default allocation saturates
    // storage, leaving repair nowhere to put replicas — recovery needs
    // spare slots on the survivors.
    let params = SystemParams::new(20, 2.0, 8, 4, 3, 1.3, 10);
    let mut rng = StdRng::seed_from_u64(23);
    let sys = VideoSystem::homogeneous_with_catalog(
        params,
        26,
        &RandomPermutationAllocator::new(3),
        &mut rng,
    )
    .unwrap();
    let mut sim = Simulator::new(&sys, SimConfig::new(30).continue_on_failure());
    sim.attach_repair(RepairPlanner::for_system(&sys, 2));
    for b in [3u32, 8, 14] {
        sim.apply_churn(ChurnEvent::Left(BoxId(b)));
    }
    let mut gen = viewing(&sys, 23);
    let mut last_pending = usize::MAX;
    for _ in 0..30 {
        sim.step(&mut gen);
        let stats = sim
            .report_so_far()
            .rounds
            .last()
            .and_then(|r| r.repair)
            .expect("repair attached");
        assert!(
            stats.pending <= last_pending,
            "pending grew {last_pending} → {} with no departure",
            stats.pending
        );
        last_pending = stats.pending;
    }
    assert_eq!(
        last_pending, 0,
        "budget 2 over 30 rounds must drain the queue"
    );
    // Every repairable stripe is back at target; only stripes whose last
    // replica departed (possible when duplicate allocator draws left them
    // thin) sit in the lost ledger, with nothing to copy from.
    let planner = sim.repair_planner().unwrap();
    let lost = planner.lost();
    for stripe in sys.catalog().stripes() {
        let replicas = sim.live_placement().replica_count(stripe);
        if lost.contains(&stripe) {
            assert_eq!(replicas, 0, "lost stripe {stripe} has survivors");
        } else {
            assert!(
                replicas >= 3,
                "stripe {stripe} stuck at {replicas} replicas"
            );
        }
    }
}

/// The repair trajectory is a pure function of scheduler-invariant state:
/// every pipeline (incremental, rescan, sharded 1/2/4) produces identical
/// per-round repair stats, identical placements, and identical totals.
#[test]
fn repair_trajectory_is_identical_across_pipelines() {
    let sys = homogeneous(18, 2.2, 4, 3, 10, 31);
    let rounds = 30u64;
    let run = |mut sim: Simulator| {
        let churn = ChurnModel::new(sys.boxes(), 13)
            .with_session(SessionLength::Geometric { leave_rate: 0.05 })
            .with_crash_rate(0.01)
            .with_rejoin_delay(2, 4)
            .with_min_up(12);
        sim.attach_churn(churn);
        sim.attach_repair(RepairPlanner::for_system(&sys, 3));
        let mut gen = viewing(&sys, 31);
        for _ in 0..rounds {
            sim.step(&mut gen);
        }
        let stats: Vec<RepairRoundStats> = sim
            .report_so_far()
            .rounds
            .iter()
            .map(|r| r.repair.expect("repair attached"))
            .collect();
        let total = sim.repair_planner().unwrap().repaired_total();
        (stats, sim.live_placement().clone(), total)
    };
    let config = SimConfig::new(rounds).continue_on_failure();
    let reference = run(Simulator::new(&sys, config));
    let rescan = run(Simulator::new(&sys, config.with_rescan_candidates()));
    assert_eq!(reference, rescan, "rescan pipeline drifts");
    for threads in [1usize, 2, 4] {
        let sharded = run(Simulator::with_sharded_scheduler(&sys, config, threads));
        assert_eq!(reference, sharded, "sharded({threads}) drifts");
    }
    assert!(reference.2 > 0, "the run must actually repair something");
}

/// After a relay and a poor box churn out of a u*-compensated fleet, the
/// broker's live plan still validates over the surviving population, and
/// the repaired placement respects storage capacity and liveness.
#[test]
fn post_repair_population_passes_compensation_validation() {
    // Rich spare is 3.6 − u* = 2.4: each relay can absorb two 1.0-stream
    // reservations, so one relay's departure leaves its client coverable.
    let c: u16 = 8;
    let mut uploads = vec![0.6f64; 12];
    uploads.extend(vec![3.6f64; 12]);
    let boxes = VideoSystem::proportional_boxes(&uploads, 6.0, c);
    let n = boxes.len();
    let d_avg = boxes.average_storage_videos(c);
    let u_star = Bandwidth::from_streams(1.2);
    let catalog = Catalog::uniform(24, 40, c);
    let params = SystemParams::new(n, 1.6, d_avg.round() as u32, c, 3, 1.2, 40);
    let mut rng = StdRng::seed_from_u64(8);
    let sys = VideoSystem::heterogeneous(
        params,
        boxes,
        catalog,
        &RandomPermutationAllocator::new(3),
        Some(u_star),
        &mut rng,
    )
    .unwrap();

    let mut sim = Simulator::new(&sys, SimConfig::new(30).continue_on_failure());
    sim.attach_repair(RepairPlanner::for_system(&sys, 2));
    let mut gen = SequentialViewing::new(n, sys.m(), NextVideoPolicy::RoundRobin, 1.2, 8);
    for round in 0..30u64 {
        // Round 5: a rich relay leaves (its reservations must migrate).
        // Round 9: a poor box leaves (its reservation must be released).
        if round == 5 {
            sim.apply_churn(ChurnEvent::Left(BoxId(20)));
        }
        if round == 9 {
            sim.apply_churn(ChurnEvent::Left(BoxId(2)));
        }
        sim.step(&mut gen);
        let broker = sim.relay_broker().expect("heterogeneous system");
        let alive = sys.boxes().iter().copied().filter(|b| sim.is_alive(b.id));
        broker
            .plan()
            .validate_over(alive)
            .expect("live compensation plan must stay valid under churn");
    }
    // The repaired placement stays balanced: only alive holders, within
    // storage capacity, and never above the target replication level.
    let placement = sim.live_placement();
    for (stripe, holders) in placement.stripes() {
        assert!(
            holders.iter().all(|&b| sim.is_alive(b)),
            "stripe {stripe} kept a departed holder"
        );
        assert!(holders.len() <= 3, "stripe {stripe} over-replicated");
    }
    for b in sys.boxes().ids() {
        if sim.is_alive(b) {
            assert!(
                placement.box_load(b) as u32 <= sys.boxes().get(b).storage.slots(),
                "box {b} repaired beyond its storage"
            );
        } else {
            assert_eq!(
                placement.box_load(b),
                0,
                "departed box {b} still holds data"
            );
        }
    }
    assert!(
        sim.repair_planner().unwrap().repaired_total() > 0,
        "two departures must trigger repair"
    );
}
