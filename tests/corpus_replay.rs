//! Regression corpus: every seed file under `tests/corpus/` is replayed
//! through every engine fast path — incremental, full-rescan, and sharded
//! (1/2/4 threads) — and the normalized reports must be bit-identical.
//!
//! Seed files are self-contained [`SeedFile`] recipes (system parameters +
//! allocation seed + demand trace), so a divergence dumped by `exp_verify`
//! can be dropped into this directory and becomes a permanent regression
//! test. Counterexample seeds (note contains "counterexample") must keep
//! failing; all other seeds must keep serving every round.

use vod_analysis::{is_admissible, replay_seed, SeedFile};

fn corpus_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn corpus_files() -> Vec<std::path::PathBuf> {
    let mut files: Vec<_> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus exists")
        .map(|entry| entry.expect("readable dir entry").path())
        .filter(|path| path.extension().is_some_and(|e| e == "json"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "regression corpus must not be empty");
    files
}

/// Every corpus seed replays bit-identically through every pipeline, its
/// trace is µ-admissible for its own system, and its outcome (served vs
/// counterexample) is pinned by its note.
#[test]
fn corpus_replays_identically_through_every_pipeline() {
    for path in corpus_files() {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let seed = SeedFile::load(&path).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            is_admissible(
                &seed.demands,
                seed.system.n,
                seed.system.duration as u64,
                seed.system.mu
            ),
            "{name}: corpus trace is not µ-admissible"
        );
        let report = replay_seed(&seed).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            report.round_count(),
            seed.horizon as usize,
            "{name}: replay must run the full horizon"
        );
        let expect_failure = seed.note.contains("counterexample");
        assert_eq!(
            !report.failures.is_empty(),
            expect_failure,
            "{name}: outcome drifted — failures {:?}, note {:?}",
            report.failures.len(),
            seed.note
        );
    }
}

/// Corpus files round-trip through the JSON codec unchanged — the dump
/// format stays stable for replaying old divergence seeds.
#[test]
fn corpus_files_round_trip() {
    use vod_core::JsonCodec;
    for path in corpus_files() {
        let text = std::fs::read_to_string(&path).unwrap();
        let seed = SeedFile::from_json_str(&text).unwrap();
        let back = SeedFile::from_json_str(&seed.to_json_string()).unwrap();
        assert_eq!(seed, back, "{}", path.display());
    }
}
