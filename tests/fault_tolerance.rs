//! Fault-tolerance properties of the delivery-reliability subsystem:
//! retry/backoff discipline never oversubscribes the per-round `⌊u_b·c⌋`
//! upload budgets or the repair budget, the degradation controller's
//! hysteresis never flaps round-to-round, and reports serialized before
//! the fault-era fields existed still parse.

use p2p_vod::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn homogeneous(n: usize, u: f64, c: u16, k: u32, duration: u32, seed: u64) -> VideoSystem {
    let params = SystemParams::new(n, u, 8, c, k, 1.3, duration);
    let mut rng = StdRng::seed_from_u64(seed);
    VideoSystem::homogeneous(params, &RandomPermutationAllocator::new(k), &mut rng).unwrap()
}

/// Under injected faults with retries and a repair planner attached, no
/// round ever schedules more connections than the (fault-reduced) upload
/// slots allow, repair never exceeds its budget, and retry re-entries are
/// conserved: every retry and every abandonment traces back to a prior
/// drop or timeout.
#[test]
fn retries_and_repair_never_oversubscribe_round_capacity() {
    let repair_budget = 2u32;
    for seed in [11u64, 29, 47] {
        let sys = homogeneous(24, 2.0, 4, 3, 12, seed);
        let mut sim = Simulator::new(
            &sys,
            SimConfig::new(50)
                .continue_on_failure()
                .without_obstructions(),
        );
        sim.attach_faults(
            FaultModel::new(sys.boxes(), seed ^ 0xFA17)
                .with_degradation(0.08, vec![25, 50], 1, 3)
                .with_flapping(0.04, 1, 2)
                .with_drop_rate(90_000, 30_000)
                .with_drop_surges(0.05, 200_000, 1, 2),
        );
        sim.attach_delivery(DeliveryPolicy::default());
        sim.attach_repair(RepairPlanner::for_system(&sys, repair_budget));
        let mut gen = SequentialViewing::new(24, sys.m(), NextVideoPolicy::RoundRobin, 1.3, seed);
        let report = sim.run(&mut gen);

        let mut failures = 0u64;
        let mut retries = 0u64;
        let mut abandoned = 0u64;
        for m in &report.rounds {
            let d = m.delivery.as_ref().expect("delivery tracker attached");
            assert!(
                d.scheduled as u64 <= m.upload_slots_available,
                "seed {seed} round {}: scheduled {} connections with only {} upload slots",
                m.round,
                d.scheduled,
                m.upload_slots_available
            );
            assert_eq!(
                d.delivered + d.dropped + d.timed_out,
                d.scheduled,
                "seed {seed} round {}: every scheduled connection resolves exactly once",
                m.round
            );
            failures += (d.dropped + d.timed_out) as u64;
            retries += d.retries as u64;
            abandoned += d.abandoned as u64;
            assert!(
                retries <= failures,
                "seed {seed} round {}: {retries} retries cannot exceed {failures} failures",
                m.round
            );
            assert!(
                abandoned <= failures,
                "seed {seed} round {}: {abandoned} abandonments cannot exceed {failures} failures",
                m.round
            );
            if let Some(r) = &m.repair {
                assert!(
                    r.budget_slots <= repair_budget,
                    "seed {seed} round {}: repair spent {} slots with budget {repair_budget}",
                    m.round,
                    r.budget_slots
                );
            }
        }
        let summary = report.delivery.as_ref().expect("delivery summary present");
        assert!(
            summary.dropped + summary.timed_out > 0,
            "seed {seed}: the hazard rates must actually exercise failures"
        );
    }
}

/// Against a 100%-drop hazard, the tracker's backoff waits follow
/// `min(2^(k-1), cap)` exactly (a failed stream is suppressed for one round
/// fewer than its wait, then re-enters as a retry), and every stream is
/// abandoned after at most `max_attempts + 1` failures within the deadline
/// horizon — retries can never live forever.
#[test]
fn backoff_waits_double_to_the_cap_and_abandonment_is_bounded() {
    for (max_attempts, backoff_cap, deadline) in [(3u32, 4u64, 60u64), (6, 8, 24), (5, 2, 40)] {
        let policy = DeliveryPolicy {
            max_attempts,
            backoff_cap,
            deadline,
        };
        let mut t = DeliveryTracker::new(policy);
        t.set_hazards(0xBEEF, 1_000_000, 0); // every resolution drops
        let (v, s) = (BoxId(0), StripeId::new(VideoId(0), 0));

        let mut gaps: Vec<u64> = Vec::new();
        let mut suppressed_since_attempt = 0u64;
        let mut failures = 0u32;
        let mut abandoned = 0usize;
        let mut now = 0u64;
        let horizon = 4 * (deadline + backoff_cap * (max_attempts as u64 + 2));
        while abandoned == 0 {
            assert!(
                now < horizon,
                "policy ({max_attempts},{backoff_cap},{deadline}): stream not abandoned after {now} rounds"
            );
            t.begin_round(now);
            match t.admit(v, s, now) {
                Admission::Emit | Admission::Retry => {
                    if failures > 0 {
                        gaps.push(suppressed_since_attempt);
                    }
                    suppressed_since_attempt = 0;
                    assert_eq!(t.resolve(v, s, now), DeliveryOutcome::Dropped);
                    failures += 1;
                }
                Admission::Suppress => suppressed_since_attempt += 1,
            }
            abandoned += t.round_stats().abandoned;
            now += 1;
        }
        assert!(
            failures <= max_attempts + 1,
            "policy ({max_attempts},{backoff_cap},{deadline}): {failures} failures before abandonment"
        );
        for (k, gap) in gaps.iter().enumerate() {
            let wait = (1u64 << k).min(backoff_cap);
            assert_eq!(
                *gap,
                wait - 1,
                "policy ({max_attempts},{backoff_cap},{deadline}): failure {} should wait {wait} rounds",
                k + 1
            );
        }
    }
}

/// An adversarial load that oscillates between total failure and perfect
/// service — the worst case for a threshold controller — never makes the
/// hysteresis flap: consecutive mode switches are always at least
/// `cooldown` rounds apart, for every configuration tried.
#[test]
fn degradation_hysteresis_never_flaps_under_oscillating_load() {
    for (enter_ppm, exit_ppm, window, cooldown) in [
        (100_000u32, 20_000u32, 1usize, 3u64),
        (150_000, 20_000, 2, 1),
        (400_000, 50_000, 2, 4),
    ] {
        let mut controller = DegradationController::new(DegradationConfig {
            enter_ppm,
            exit_ppm,
            window,
            cooldown,
            min_stripes: 0,
        });
        let mut was_degraded = controller.degraded();
        let mut last_switch: Option<u64> = None;
        for now in 0..400u64 {
            controller.begin_round(now);
            // Blocks of four all-unserved rounds then four perfect rounds:
            // the windowed ratio swings across both thresholds repeatedly.
            let unserved = if (now / 4) % 2 == 0 { 100 } else { 0 };
            controller.note_round(now, 100, unserved);
            if controller.degraded() != was_degraded {
                if let Some(prev) = last_switch {
                    assert!(
                        now - prev >= cooldown,
                        "config ({enter_ppm},{exit_ppm},{window},{cooldown}): \
                         switched at {prev} and again at {now}"
                    );
                }
                last_switch = Some(now);
                was_degraded = controller.degraded();
            }
        }
        assert!(
            controller.switches() >= 2,
            "config ({enter_ppm},{exit_ppm},{window},{cooldown}): \
             the oscillation must provoke both entry and exit"
        );
    }
}

/// A report serialized before the fault-era fields existed — no
/// `delivery`, no `degradation`, no `fault_slots_lost` — parses to the
/// same report with `None` / zero defaults. Verified by stripping exactly
/// those keys from a freshly serialized report and re-parsing.
#[test]
fn reports_serialized_before_fault_tracking_still_parse() {
    use p2p_vod::core::JsonCodec;
    use p2p_vod::sim::SimulationReport;

    // A starved plain run: failures are present (pinning the
    // `fault_slots_lost` default path) but no delivery tracker is attached.
    let sys = homogeneous(12, 0.5, 4, 2, 8, 5);
    let mut gen = SequentialViewing::new(12, sys.m(), NextVideoPolicy::RoundRobin, 1.3, 7);
    let report = Simulator::new(&sys, SimConfig::new(20).continue_on_failure()).run(&mut gen);
    assert!(!report.failures.is_empty(), "starved system must fail");
    assert!(report
        .failures
        .iter()
        .all(|f| f.cause() == "allocation" && f.fault_slots_lost == 0));
    assert!(report
        .rounds
        .iter()
        .all(|r| r.delivery.is_none() && r.degradation.is_none()));

    let text = report.to_json_string();
    let legacy = text
        .replace("\"delivery\":null,", "")
        .replace("\"degradation\":null,", "")
        .replace(",\"fault_slots_lost\":0", "");
    assert_ne!(text, legacy, "the fault-era keys must have been serialized");
    let parsed = SimulationReport::from_json_str(&legacy).expect("legacy report parses");
    assert_eq!(parsed, report, "defaults must reconstruct the same report");

    // And a faulted report round-trips unchanged with the fields present.
    let faulted_sys = homogeneous(16, 2.0, 4, 3, 10, 9);
    let mut sim = Simulator::new(&faulted_sys, SimConfig::new(30).continue_on_failure());
    sim.attach_faults(
        FaultModel::new(faulted_sys.boxes(), 0xFA17)
            .with_degradation(0.05, vec![25, 50], 1, 3)
            .with_drop_rate(80_000, 20_000),
    );
    sim.attach_delivery(DeliveryPolicy::default());
    sim.attach_degradation(DegradationConfig::default());
    let mut gen = SequentialViewing::new(16, faulted_sys.m(), NextVideoPolicy::RoundRobin, 1.3, 3);
    let faulted = sim.run(&mut gen);
    assert!(faulted.rounds.iter().all(|r| r.delivery.is_some()));
    let back = SimulationReport::from_json_str(&faulted.to_json_string()).unwrap();
    assert_eq!(
        back, faulted,
        "fault-era reports round-trip bit-identically"
    );
}

/// Failures caused by an injected outage are attributed to it: a system
/// that serves cleanly fault-free fails with `cause() == "fault-degraded"`
/// (and a positive `fault_slots_lost`) when a correlated stall window
/// removes most of its upload capacity mid-run.
#[test]
fn outage_failures_are_fault_attributed() {
    let sys = homogeneous(24, 2.0, 4, 3, 12, 17);
    let run = |outage: bool| {
        let mut sim = Simulator::new(
            &sys,
            SimConfig::new(30)
                .continue_on_failure()
                .without_obstructions(),
        );
        let mut gen = SequentialViewing::new(24, sys.m(), NextVideoPolicy::RoundRobin, 1.3, 41);
        for _ in 0..30 {
            if outage && sim.round() == 10 {
                for idx in 0..sys.n() * 3 / 4 {
                    sim.apply_fault(FaultEvent::Stalled {
                        box_id: BoxId(idx as u32),
                        until: 16,
                    });
                }
            }
            sim.step(&mut gen);
        }
        sim.into_report()
    };
    let clean = run(false);
    assert!(
        clean.failures.is_empty(),
        "the fleet must serve cleanly without the outage"
    );
    let faulted = run(true);
    assert!(
        !faulted.failures.is_empty(),
        "a 3/4-fleet stall must starve some round"
    );
    for f in &faulted.failures {
        assert!(
            (10..16).contains(&f.round),
            "failures only inside the outage window, got round {}",
            f.round
        );
        assert_eq!(f.cause(), "fault-degraded");
        assert!(f.fault_slots_lost > 0);
    }
}
