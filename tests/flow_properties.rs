//! Property-based tests of the max-flow / matching substrate: solver
//! agreement, max-flow = min-cut, Lemma 1 (matching exists iff no
//! obstruction), and validity of extracted matchings.

use p2p_vod::prelude::*;
use proptest::prelude::*;
use vod_flow::{dinic, hopcroft_karp::HopcroftKarp, push_relabel, FlowNetwork};

/// Strategy generating a random connection-matching instance: box capacities
/// and per-request candidate lists.
fn connection_instances() -> impl Strategy<Value = (Vec<u32>, Vec<Vec<usize>>)> {
    (2usize..8, 1usize..20).prop_flat_map(|(boxes, requests)| {
        (
            proptest::collection::vec(0u32..4, boxes),
            proptest::collection::vec(
                proptest::collection::vec(0usize..boxes, 0..boxes),
                requests,
            ),
        )
    })
}

/// Strategy generating a random DAG-ish flow network as an edge list over a
/// fixed node count, plus source 0 and sink n-1.
fn flow_networks() -> impl Strategy<Value = (usize, Vec<(usize, usize, i64)>)> {
    (4usize..10).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n, 0i64..20), 1..40);
        (Just(n), edges)
    })
}

fn build_network(n: usize, edges: &[(usize, usize, i64)]) -> FlowNetwork {
    let mut g = FlowNetwork::with_nodes(n);
    for &(a, b, cap) in edges {
        if a != b {
            g.add_edge(a, b, cap);
        }
    }
    g
}

fn build_problem(caps: &[u32], cands: &[Vec<usize>]) -> ConnectionProblem {
    let mut p = ConnectionProblem::new(caps.to_vec());
    for list in cands {
        p.add_request(list.iter().map(|&i| BoxId(i as u32)));
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dinic and push-relabel compute the same max-flow value on arbitrary
    /// networks, and that value equals the capacity of the residual min cut.
    #[test]
    fn maxflow_solvers_agree_and_match_min_cut((n, edges) in flow_networks()) {
        let mut g1 = build_network(n, &edges);
        let mut g2 = build_network(n, &edges);
        let source = 0;
        let sink = n - 1;
        let f1 = dinic::max_flow(&mut g1, source, sink);
        let f2 = push_relabel::max_flow(&mut g2, source, sink);
        prop_assert_eq!(f1, f2, "Dinic {} vs push-relabel {}", f1, f2);

        let side = g1.residual_reachable(source);
        prop_assert!(side[source]);
        prop_assert!(!side[sink]);
        prop_assert_eq!(g1.cut_capacity(&side), f1);

        // Flow conservation at internal nodes.
        for v in 1..n - 1 {
            prop_assert_eq!(g1.net_outflow(v), 0);
        }
        prop_assert_eq!(g1.net_outflow(source), f1);
    }

    /// On unit-capacity instances the flow matching equals Hopcroft–Karp.
    #[test]
    fn unit_capacity_matching_equals_hopcroft_karp(cands in proptest::collection::vec(
        proptest::collection::vec(0usize..6, 0..6), 1..14)) {
        let caps = vec![1u32; 6];
        let problem = build_problem(&caps, &cands);
        let flow_match = problem.solve();

        let mut hk = HopcroftKarp::new(cands.len(), 6);
        for (x, list) in cands.iter().enumerate() {
            let mut seen = std::collections::BTreeSet::new();
            for &b in list {
                if seen.insert(b) {
                    hk.add_edge(x, b);
                }
            }
        }
        let (hk_size, _) = hk.solve();
        prop_assert_eq!(flow_match.served(), hk_size);
    }

    /// Lemma 1: the connection matching is complete iff no obstruction
    /// exists, and any extracted obstruction is a genuine Hall violator.
    #[test]
    fn lemma1_matching_iff_no_obstruction((caps, cands) in connection_instances()) {
        let problem = build_problem(&caps, &cands);
        prop_assert!(verify_lemma1(&problem).is_ok());
        if let Some(ob) = find_obstruction(&problem) {
            prop_assert!(ob.capacity < ob.requests.len() as u64);
            // Re-checking the subset explicitly gives the same capacity.
            let recheck = vod_flow::check_subset(&problem, &ob.requests);
            prop_assert_eq!(recheck.capacity, ob.capacity);
        }
    }

    /// Solved matchings are always valid: every assignment is a declared
    /// candidate and no box exceeds its capacity; adding upload capacity
    /// never reduces the number of requests served.
    #[test]
    fn matchings_valid_and_monotone_in_capacity((caps, cands) in connection_instances()) {
        let problem = build_problem(&caps, &cands);
        let matching = problem.solve();
        prop_assert!(matching.is_valid_for(&problem));

        let boosted: Vec<u32> = caps.iter().map(|c| c + 1).collect();
        let boosted_problem = build_problem(&boosted, &cands);
        let boosted_matching = boosted_problem.solve();
        prop_assert!(boosted_matching.served() >= matching.served());
    }

    /// Both flow solvers serve the same number of requests on matching
    /// instances (the assignments may differ, the value may not).
    #[test]
    fn connection_solvers_agree((caps, cands) in connection_instances()) {
        let problem = build_problem(&caps, &cands);
        let a = problem.solve_with(FlowSolver::Dinic);
        let b = problem.solve_with(FlowSolver::PushRelabel);
        prop_assert_eq!(a.served(), b.served());
        prop_assert!(b.is_valid_for(&problem));
    }
}
