//! Property-based tests of the max-flow / matching substrate: three-way
//! solver agreement (Dinic, push–relabel, Hopcroft–Karp), max-flow =
//! min-cut, Lemma 1 (matching exists iff no obstruction), validity of
//! extracted matchings, warm-started incremental solves matching cold
//! solves under random perturbations, and obstruction-witness validation:
//! every Hall violator returned — global or shard-local — is re-checked
//! against the Hall condition `U_{B(X)} < |X|/c` by an independent
//! brute-force verifier, and sharded reconciliation is checked to restore
//! global maximality from arbitrary partial assignments.
//!
//! Instances are generated from seeded RNG loops (the environment has no
//! proptest), so every failure is reproducible from the printed seed.

use p2p_vod::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vod_flow::{
    bitset::for_each_set_bit, dinic, hopcroft_karp::HopcroftKarp, push_relabel, BitAdjacency,
    BitSet, FlowNetwork,
};
use vod_sim::IncrementalMatcher;

const CASES: u64 = 64;

/// Random connection-matching instance: box capacities and per-request
/// candidate lists.
fn random_instance(rng: &mut StdRng) -> (Vec<u32>, Vec<Vec<BoxId>>) {
    let boxes = rng.gen_range(2usize..8);
    let requests = rng.gen_range(1usize..20);
    let caps: Vec<u32> = (0..boxes).map(|_| rng.gen_range(0u32..4)).collect();
    let cands: Vec<Vec<BoxId>> = (0..requests)
        .map(|_| {
            let degree = rng.gen_range(0usize..boxes);
            (0..degree)
                .map(|_| BoxId(rng.gen_range(0usize..boxes) as u32))
                .collect()
        })
        .collect();
    (caps, cands)
}

/// Random flow network over `n` nodes with source 0 and sink n-1.
fn random_network(rng: &mut StdRng) -> (usize, Vec<(usize, usize, i64)>) {
    let n = rng.gen_range(4usize..10);
    let m = rng.gen_range(1usize..40);
    let edges = (0..m)
        .map(|_| {
            (
                rng.gen_range(0usize..n),
                rng.gen_range(0usize..n),
                rng.gen_range(0i64..20),
            )
        })
        .collect();
    (n, edges)
}

fn build_network(n: usize, edges: &[(usize, usize, i64)]) -> FlowNetwork {
    let mut g = FlowNetwork::with_nodes(n);
    for &(a, b, cap) in edges {
        if a != b {
            g.add_edge(a, b, cap);
        }
    }
    g
}

fn build_problem(caps: &[u32], cands: &[Vec<BoxId>]) -> ConnectionProblem {
    let mut p = ConnectionProblem::new(caps.to_vec());
    for list in cands {
        p.add_request(list.iter().copied());
    }
    p
}

/// Dinic and push-relabel compute the same max-flow value on arbitrary
/// networks, and that value equals the capacity of the residual min cut.
#[test]
fn maxflow_solvers_agree_and_match_min_cut() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let (n, edges) = random_network(&mut rng);
        let mut g1 = build_network(n, &edges);
        let mut g2 = build_network(n, &edges);
        let source = 0;
        let sink = n - 1;
        let f1 = dinic::max_flow(&mut g1, source, sink);
        let f2 = push_relabel::max_flow(&mut g2, source, sink);
        assert_eq!(f1, f2, "seed {seed}: Dinic {f1} vs push-relabel {f2}");

        let side = g1.residual_reachable(source);
        assert!(side[source], "seed {seed}");
        assert!(!side[sink], "seed {seed}");
        assert_eq!(g1.cut_capacity(&side), f1, "seed {seed}");

        // Flow conservation at internal nodes.
        for v in 1..n - 1 {
            assert_eq!(g1.net_outflow(v), 0, "seed {seed} node {v}");
        }
        assert_eq!(g1.net_outflow(source), f1, "seed {seed}");
    }
}

/// All three solvers behind the `MaxFlowSolve` trait return the same
/// max-flow value and a valid matching on random bipartite instances.
#[test]
fn cross_solver_equivalence_on_connection_instances() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(1_000 + seed);
        let (caps, cands) = random_instance(&mut rng);
        let problem = build_problem(&caps, &cands);
        let a = problem.solve_with(&mut Dinic::new());
        let b = problem.solve_with(&mut PushRelabel::new());
        let c = problem.solve_with(&mut HopcroftKarpSolve::new());
        assert_eq!(a.flow, b.flow, "seed {seed}: dinic vs push-relabel");
        assert_eq!(a.flow, c.flow, "seed {seed}: dinic vs hopcroft-karp");
        assert_eq!(a.served(), b.served(), "seed {seed}");
        assert_eq!(a.served(), c.served(), "seed {seed}");
        assert!(a.is_valid_for(&problem), "seed {seed}");
        assert!(b.is_valid_for(&problem), "seed {seed}");
        assert!(c.is_valid_for(&problem), "seed {seed}");
    }
}

/// On unit-capacity instances the flow matching equals raw Hopcroft–Karp.
#[test]
fn unit_capacity_matching_equals_hopcroft_karp() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(2_000 + seed);
        let requests = rng.gen_range(1usize..14);
        let cands: Vec<Vec<usize>> = (0..requests)
            .map(|_| {
                let degree = rng.gen_range(0usize..6);
                (0..degree).map(|_| rng.gen_range(0usize..6)).collect()
            })
            .collect();
        let caps = vec![1u32; 6];
        let boxed: Vec<Vec<BoxId>> = cands
            .iter()
            .map(|list| list.iter().map(|&i| BoxId(i as u32)).collect())
            .collect();
        let problem = build_problem(&caps, &boxed);
        let flow_match = problem.solve();

        let mut hk = HopcroftKarp::new(cands.len(), 6);
        for (x, list) in cands.iter().enumerate() {
            let mut seen = std::collections::BTreeSet::new();
            for &b in list {
                if seen.insert(b) {
                    hk.add_edge(x, b);
                }
            }
        }
        let (hk_size, _) = hk.solve();
        assert_eq!(flow_match.served(), hk_size, "seed {seed}");
    }
}

/// Lemma 1: the connection matching is complete iff no obstruction exists,
/// and any extracted obstruction is a genuine Hall violator.
#[test]
fn lemma1_matching_iff_no_obstruction() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(3_000 + seed);
        let (caps, cands) = random_instance(&mut rng);
        let problem = build_problem(&caps, &cands);
        assert!(verify_lemma1(&problem).is_ok(), "seed {seed}");
        if let Some(ob) = find_obstruction(&problem) {
            assert!(ob.capacity < ob.requests.len() as u64, "seed {seed}");
            // Re-checking the subset explicitly gives the same capacity.
            let recheck = vod_flow::check_subset(&problem, &ob.requests);
            assert_eq!(recheck.capacity, ob.capacity, "seed {seed}");
        }
    }
}

/// Solved matchings are always valid, and adding upload capacity never
/// reduces the number of requests served.
#[test]
fn matchings_valid_and_monotone_in_capacity() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(4_000 + seed);
        let (caps, cands) = random_instance(&mut rng);
        let problem = build_problem(&caps, &cands);
        let matching = problem.solve();
        assert!(matching.is_valid_for(&problem), "seed {seed}");

        let boosted: Vec<u32> = caps.iter().map(|c| c + 1).collect();
        let boosted_problem = build_problem(&boosted, &cands);
        let boosted_matching = boosted_problem.solve();
        assert!(
            boosted_matching.served() >= matching.served(),
            "seed {seed}"
        );
    }
}

/// Independent brute-force evaluation of the Hall condition for a request
/// subset: recomputes `B(X)` and `U_{B(X)}` from the raw capacity and
/// candidate lists, with none of the flow machinery involved.
fn brute_force_hall(
    caps: &[u32],
    cands: &[Vec<BoxId>],
    subset: &[usize],
) -> (std::collections::BTreeSet<BoxId>, u64) {
    let mut neighbourhood = std::collections::BTreeSet::new();
    for &x in subset {
        for &b in &cands[x] {
            if b.index() < caps.len() {
                neighbourhood.insert(b);
            }
        }
    }
    let capacity = neighbourhood.iter().map(|b| caps[b.index()] as u64).sum();
    (neighbourhood, capacity)
}

/// Every obstruction extracted from an infeasible global instance is a
/// genuine Hall violator under independent re-evaluation: its re-derived
/// neighbourhood capacity matches the witness and satisfies
/// `U_{B(X)} < |X|` (the scaled form of `U_{B(X)} < |X|/c`).
#[test]
fn global_obstruction_witnesses_survive_brute_force_recheck() {
    let mut infeasible_seen = 0;
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(6_000 + seed);
        let (caps, cands) = random_instance(&mut rng);
        let problem = build_problem(&caps, &cands);
        if let Some(ob) = find_obstruction(&problem) {
            infeasible_seen += 1;
            let (neighbourhood, capacity) = brute_force_hall(&caps, &cands, &ob.requests);
            assert_eq!(capacity, ob.capacity, "seed {seed}: capacity mismatch");
            assert_eq!(
                neighbourhood.iter().copied().collect::<Vec<_>>(),
                ob.boxes,
                "seed {seed}: neighbourhood mismatch"
            );
            assert!(
                capacity < ob.requests.len() as u64,
                "seed {seed}: witness is not a Hall violator"
            );
            // The violator is tight evidence: the instance really cannot
            // serve everything.
            assert!(!problem.is_feasible(), "seed {seed}");
        }
    }
    assert!(infeasible_seen > CASES / 4, "generator too benign");
}

/// Shard-local obstructions (a shard infeasible under the full capacities)
/// re-checked by the same brute-force verifier on the *global* instance:
/// request indices map back correctly and the Hall condition holds, so a
/// shard-local witness certifies global infeasibility.
#[test]
fn shard_local_obstruction_witnesses_survive_brute_force_recheck() {
    let mut witnesses = 0;
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(7_000 + seed);
        let (caps, cands) = random_instance(&mut rng);
        // Assign requests to 1..4 synthetic swarms.
        let swarms = rng.gen_range(1u64..4);
        let shard_of: Vec<u64> = (0..cands.len())
            .map(|_| rng.gen_range(0u64..swarms))
            .collect();
        let mut sharded = ShardedArena::new();
        let shard_count = sharded.partition(&shard_of, &cands, caps.len());
        for idx in 0..shard_count {
            let requests_of_shard: Vec<u32> = sharded.shard(idx).requests.to_vec();
            if let Some(ob) = sharded.shard_obstruction(idx, &caps, &cands) {
                witnesses += 1;
                // Witness requests belong to the shard.
                for &x in &ob.requests {
                    assert!(
                        requests_of_shard.contains(&(x as u32)),
                        "seed {seed}: request {x} not in shard {idx}"
                    );
                }
                let (neighbourhood, capacity) = brute_force_hall(&caps, &cands, &ob.requests);
                assert_eq!(capacity, ob.capacity, "seed {seed} shard {idx}");
                assert_eq!(
                    neighbourhood.iter().copied().collect::<Vec<_>>(),
                    ob.boxes,
                    "seed {seed} shard {idx}"
                );
                assert!(
                    capacity < ob.requests.len() as u64,
                    "seed {seed} shard {idx}"
                );
                // A shard-local violator certifies global infeasibility.
                let problem = build_problem(&caps, &cands);
                assert!(!problem.is_feasible(), "seed {seed} shard {idx}");
            }
        }
    }
    assert!(witnesses > 0, "no shard-local witnesses exercised");
}

/// Sharded reconciliation restores global maximality from any partial
/// assignment — empty, valid-but-greedy, or garbage — because it augments
/// on the full residual network and may reroute preloaded flow.
#[test]
fn reconciliation_restores_global_maximality() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(8_000 + seed);
        let (caps, cands) = random_instance(&mut rng);
        let cold = build_problem(&caps, &cands).solve();
        let mut sharded = ShardedArena::new();
        // A noisy partial assignment: half the time the cold answer with
        // random entries blanked, half the time random garbage.
        let mut assignment: Vec<Option<BoxId>> = if rng.gen_bool(0.5) {
            cold.assignment
                .iter()
                .map(|a| if rng.gen_bool(0.6) { *a } else { None })
                .collect()
        } else {
            (0..cands.len())
                .map(|_| {
                    rng.gen_bool(0.4)
                        .then(|| BoxId(rng.gen_range(0u32..(caps.len() as u32 + 2))))
                })
                .collect()
        };
        let stats = sharded.reconcile(&caps, &cands, &mut assignment);
        let served = assignment.iter().flatten().count();
        assert_eq!(served, cold.served(), "seed {seed}");
        assert_eq!(served + stats.unmatched, cands.len(), "seed {seed}");
        let as_matching = ConnectionMatching {
            assignment,
            flow: served as u64,
            total_requests: cands.len(),
        };
        assert!(
            as_matching.is_valid_for(&build_problem(&caps, &cands)),
            "seed {seed}"
        );
    }
}

/// Warm-started incremental solves match cold solves after random
/// perturbations of the instance (request arrivals/departures, candidate
/// churn) — for every solver behind the trait.
#[test]
fn warm_started_incremental_matches_cold_solves() {
    let solvers: [fn() -> Box<dyn MaxFlowSolve>; 3] = [
        || Box::new(Dinic::new()),
        || Box::new(PushRelabel::new()),
        || Box::new(HopcroftKarpSolve::new()),
    ];
    for (si, make_solver) in solvers.iter().enumerate() {
        for seed in 0..CASES / 2 {
            let mut rng = StdRng::seed_from_u64(5_000 + seed);
            let boxes = rng.gen_range(3usize..8);
            let caps: Vec<u32> = (0..boxes).map(|_| rng.gen_range(0u32..4)).collect();
            let mut matcher = IncrementalMatcher::new(make_solver());
            let mut out = Vec::new();

            // A pool of keyed requests that arrive, churn, and depart.
            let mut live: Vec<(RequestKey, Vec<BoxId>)> = Vec::new();
            let mut next_id = 0u32;
            for round in 0..12u64 {
                // Arrivals.
                for _ in 0..rng.gen_range(0usize..4) {
                    let key = RequestKey {
                        viewer: BoxId(next_id),
                        stripe: StripeId::new(VideoId(0), 0),
                    };
                    next_id += 1;
                    let degree = rng.gen_range(0usize..boxes);
                    let cands: Vec<BoxId> = (0..degree)
                        .map(|_| BoxId(rng.gen_range(0usize..boxes) as u32))
                        .collect();
                    live.push((key, cands));
                }
                // Departures.
                while live.len() > 10 || (rng.gen_bool(0.3) && !live.is_empty()) {
                    let victim = rng.gen_range(0usize..live.len());
                    live.remove(victim);
                }
                // Candidate churn on a random survivor.
                if !live.is_empty() && rng.gen_bool(0.7) {
                    let victim = rng.gen_range(0usize..live.len());
                    let degree = rng.gen_range(0usize..boxes);
                    live[victim].1 = (0..degree)
                        .map(|_| BoxId(rng.gen_range(0usize..boxes) as u32))
                        .collect();
                }

                let keys: Vec<RequestKey> = live.iter().map(|(k, _)| *k).collect();
                let cands: Vec<Vec<BoxId>> = live.iter().map(|(_, c)| c.clone()).collect();
                matcher.schedule_keyed(&caps, &keys, &cands, &mut out);

                let cold = build_problem(&caps, &cands).solve();
                let warm_served = out.iter().flatten().count();
                assert_eq!(
                    warm_served,
                    cold.served(),
                    "solver {si} seed {seed} round {round}: warm {warm_served} vs cold {}",
                    cold.served()
                );
                // The warm assignment is valid for the current instance.
                let problem = build_problem(&caps, &cands);
                let warm = ConnectionMatching {
                    assignment: out.clone(),
                    flow: warm_served as u64,
                    total_requests: keys.len(),
                };
                assert!(warm.is_valid_for(&problem), "solver {si} seed {seed}");
            }
        }
    }
}

/// Assigns each request of a random instance to one of 1–5 synthetic
/// swarms, returning the shard keys.
fn random_shard_keys(cands: &[Vec<BoxId>], rng: &mut StdRng) -> Vec<u64> {
    let swarms = rng.gen_range(1u64..5);
    (0..cands.len())
        .map(|_| rng.gen_range(0u64..swarms))
        .collect()
}

/// Sums, per box, the budgets granted across all shards of the last split.
fn budget_load(sharded: &ShardedArena, boxes: usize) -> Vec<u64> {
    let mut load = vec![0u64; boxes];
    for s in 0..sharded.shard_count() {
        let view = sharded.shard(s);
        for (&b, &budget) in view.boxes.iter().zip(view.budget) {
            load[b as usize] += budget as u64;
        }
    }
    load
}

/// Water-filling budget splits partition each box's capacity exactly — for
/// any deficit history, per-box grants across shards sum to the capacity of
/// every demanded box (in particular they never exceed `⌊u_b·c⌋`), so the
/// per-shard subproblems stay capacity-disjoint.
#[test]
fn waterfill_split_partitions_every_box_capacity() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(9_000 + seed);
        let (caps, cands) = random_instance(&mut rng);
        let shard_of = random_shard_keys(&cands, &mut rng);
        let mut sharded = ShardedArena::new();
        let shard_count = sharded.partition(&shard_of, &cands, caps.len());
        let deficits: Vec<u64> = (0..shard_count).map(|_| rng.gen_range(0u64..12)).collect();
        sharded.split_budgets_waterfill(&caps, &deficits);
        let load = budget_load(&sharded, caps.len());
        // Which boxes are demanded at all?
        let mut demanded = vec![false; caps.len()];
        for s in 0..shard_count {
            for &b in sharded.shard(s).boxes {
                demanded[b as usize] = true;
            }
        }
        for (b, (&granted, &cap)) in load.iter().zip(&caps).enumerate() {
            if demanded[b] {
                assert_eq!(granted, cap as u64, "seed {seed} box {b}");
            } else {
                assert_eq!(granted, 0, "seed {seed} box {b}");
            }
        }
    }
}

/// With an empty (or all-zero) deficit history the water-filling split is
/// bit-identical to the demand-proportional split — the new policy degrades
/// gracefully when there is nothing to learn from.
#[test]
fn waterfill_split_with_empty_history_is_demand_proportional() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(10_000 + seed);
        let (caps, cands) = random_instance(&mut rng);
        let shard_of = random_shard_keys(&cands, &mut rng);

        let mut proportional = ShardedArena::new();
        let shard_count = proportional.partition(&shard_of, &cands, caps.len());
        proportional.split_budgets(&caps);

        for zeros in [vec![], vec![0u64; shard_count]] {
            let mut waterfill = ShardedArena::new();
            waterfill.partition(&shard_of, &cands, caps.len());
            let stats = waterfill.split_budgets_waterfill(&caps, &zeros);
            assert_eq!(stats.iterations, 0, "seed {seed}: no backlog, no grants");
            for s in 0..shard_count {
                assert_eq!(
                    proportional.shard(s).budget,
                    waterfill.shard(s).budget,
                    "seed {seed} shard {s}"
                );
            }
        }
    }
}

/// The water-filling split is a pure function of (partition, capacities,
/// deficits): re-running it on a fresh arena reproduces budgets and stats
/// bit-for-bit. (Thread-count invariance of the full scheduler is covered
/// by `tests/sharded_equivalence.rs` — the split runs before any worker
/// thread exists.)
#[test]
fn waterfill_split_is_deterministic() {
    for seed in 0..CASES / 2 {
        let mut rng = StdRng::seed_from_u64(11_000 + seed);
        let (caps, cands) = random_instance(&mut rng);
        let shard_of = random_shard_keys(&cands, &mut rng);
        let mut first = ShardedArena::new();
        let shard_count = first.partition(&shard_of, &cands, caps.len());
        let deficits: Vec<u64> = (0..shard_count).map(|_| rng.gen_range(0u64..12)).collect();
        let stats_first = first.split_budgets_waterfill(&caps, &deficits);

        let mut second = ShardedArena::new();
        second.partition(&shard_of, &cands, caps.len());
        let stats_second = second.split_budgets_waterfill(&caps, &deficits);
        assert_eq!(stats_first, stats_second, "seed {seed}");
        for s in 0..shard_count {
            assert_eq!(
                first.shard(s).budget,
                second.shard(s).budget,
                "seed {seed} shard {s}"
            );
        }
    }
}

/// The persistent keyed reconciliation matches cold solves (and therefore
/// the rebuilding reconciliation) across random keyed churn rounds — with
/// arrivals, departures, candidate churn, per-round capacity changes, and
/// arbitrary partial assignments to adopt — and its result is always a
/// valid matching.
#[test]
fn persistent_keyed_reconcile_matches_cold_solves_under_churn() {
    for seed in 0..CASES / 2 {
        let mut rng = StdRng::seed_from_u64(12_000 + seed);
        let boxes = rng.gen_range(3usize..8);
        let mut caps: Vec<u32> = (0..boxes).map(|_| rng.gen_range(0u32..4)).collect();
        let mut sharded = ShardedArena::new();

        let mut live: Vec<(u128, Vec<BoxId>)> = Vec::new();
        let mut next_key = 0u128;
        for round in 0..14u64 {
            // Arrivals.
            for _ in 0..rng.gen_range(0usize..4) {
                let degree = rng.gen_range(0usize..boxes);
                let cands: Vec<BoxId> = (0..degree)
                    .map(|_| BoxId(rng.gen_range(0usize..boxes) as u32))
                    .collect();
                live.push((next_key, cands));
                next_key += 1;
            }
            // Departures.
            while live.len() > 10 || (rng.gen_bool(0.3) && !live.is_empty()) {
                let victim = rng.gen_range(0usize..live.len());
                live.remove(victim);
            }
            // Candidate churn on a random survivor.
            if !live.is_empty() && rng.gen_bool(0.7) {
                let victim = rng.gen_range(0usize..live.len());
                let degree = rng.gen_range(0usize..boxes);
                live[victim].1 = (0..degree)
                    .map(|_| BoxId(rng.gen_range(0usize..boxes) as u32))
                    .collect();
            }
            // Occasional capacity change.
            if rng.gen_bool(0.2) {
                let b = rng.gen_range(0usize..boxes);
                caps[b] = rng.gen_range(0u32..4);
            }

            let keys: Vec<u128> = live.iter().map(|(k, _)| *k).collect();
            let cands: Vec<Vec<BoxId>> = live.iter().map(|(_, c)| c.clone()).collect();
            // A noisy tentative assignment to adopt (sometimes garbage).
            let mut assignment: Vec<Option<BoxId>> = cands
                .iter()
                .map(|c| {
                    rng.gen_bool(0.5)
                        .then(|| c.first().copied())
                        .flatten()
                        .or_else(|| {
                            rng.gen_bool(0.1)
                                .then(|| BoxId(rng.gen_range(0u32..(boxes as u32 + 2))))
                        })
                })
                .collect();
            let stats = sharded.reconcile_keyed(&caps, &keys, &cands, &mut assignment);

            let cold = build_problem(&caps, &cands).solve();
            let served = assignment.iter().flatten().count();
            assert_eq!(served, cold.served(), "seed {seed} round {round}");
            assert_eq!(
                served + stats.unmatched,
                cands.len(),
                "seed {seed} round {round}"
            );
            let as_matching = ConnectionMatching {
                assignment,
                flow: served as u64,
                total_requests: cands.len(),
            };
            assert!(
                as_matching.is_valid_for(&build_problem(&caps, &cands)),
                "seed {seed} round {round}"
            );
        }
    }
}

/// Random relay attribution over a random instance: a subset of requests
/// forwards through random relays, and each box gets a random reservation.
fn random_relays(
    boxes: usize,
    requests: usize,
    rng: &mut StdRng,
) -> (Vec<Option<BoxId>>, Vec<u32>) {
    let relay_of = (0..requests)
        .map(|_| {
            rng.gen_bool(0.4)
                .then(|| BoxId(rng.gen_range(0usize..boxes) as u32))
        })
        .collect();
    let reserved = (0..boxes).map(|_| rng.gen_range(0u32..4)).collect();
    (relay_of, reserved)
}

/// The two-hop relay network never changes the download-leg matching (its
/// supply side serves exactly the plain Lemma-1 maximum), and no relay's
/// reservation is ever oversubscribed: per relay, forwarding equals
/// `min(reserved, demand)` exactly.
#[test]
fn relay_network_preserves_supply_and_never_oversubscribes() {
    let mut net = RelayNetwork::new();
    let mut solver = Dinic::new();
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(13_000 + seed);
        let (caps, cands) = random_instance(&mut rng);
        let (relay_of, reserved) = random_relays(caps.len(), cands.len(), &mut rng);
        net.build(
            &caps,
            &cands,
            &RelayView {
                relay_of: &relay_of,
                reserved: &reserved,
            },
        );
        let matching = net.solve_in(&mut solver);
        let plain = build_problem(&caps, &cands).solve();
        assert_eq!(
            matching.supply_served(),
            plain.served(),
            "seed {seed}: relay structure changed the supply matching"
        );
        // Reservation invariant: forwarded ≤ reserved, and the maximum flow
        // forwards exactly min(reserved, demand) per relay.
        for (relay, forwarded, demand) in matching.relay_loads() {
            let cap = reserved[relay.index()];
            assert!(
                forwarded <= cap,
                "seed {seed}: relay {relay} oversubscribed ({forwarded} > {cap})"
            );
            assert_eq!(
                forwarded,
                demand.min(cap),
                "seed {seed}: relay {relay} under-forwarded"
            );
        }
        // The supply assignment is a valid matching of the plain problem.
        let as_matching = ConnectionMatching {
            assignment: matching.assignment.clone(),
            flow: matching.supply_served() as u64,
            total_requests: cands.len(),
        };
        assert!(
            as_matching.is_valid_for(&build_problem(&caps, &cands)),
            "seed {seed}"
        );
    }
}

/// Relay-network obstruction witnesses survive independent rechecks: the
/// supply side is a brute-force-verified Hall violator, and every starved
/// reservation genuinely has `demand > reserved`, names the right relay,
/// and lists exactly the requests the forwarding flow left unserved.
#[test]
fn relay_obstruction_witnesses_survive_recheck() {
    let mut net = RelayNetwork::new();
    let mut solver = Dinic::new();
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(14_000 + seed);
        let (caps, cands) = random_instance(&mut rng);
        let (relay_of, reserved) = random_relays(caps.len(), cands.len(), &mut rng);
        net.build(
            &caps,
            &cands,
            &RelayView {
                relay_of: &relay_of,
                reserved: &reserved,
            },
        );
        let matching = net.solve_in(&mut solver);
        match net.obstruction(&matching) {
            None => {
                assert!(matching.is_complete(), "seed {seed}: witness missing");
            }
            Some(witness) => {
                assert!(!matching.is_complete(), "seed {seed}: spurious witness");
                if !witness.requests.is_empty() {
                    // The supply-side set is a genuine Hall violator on the
                    // plain instance.
                    let recheck =
                        vod_flow::check_subset(&build_problem(&caps, &cands), &witness.requests);
                    assert!(
                        recheck.is_violating(),
                        "seed {seed}: supply witness is not a violator"
                    );
                    assert_eq!(recheck.capacity, witness.capacity, "seed {seed}");
                }
                for starved in &witness.starved {
                    assert!(
                        starved.demand > starved.reserved,
                        "seed {seed}: relay {} not genuinely starved",
                        starved.relay
                    );
                    assert_eq!(
                        starved.reserved,
                        reserved[starved.relay.index()],
                        "seed {seed}"
                    );
                    let demand = relay_of
                        .iter()
                        .filter(|r| **r == Some(starved.relay))
                        .count() as u32;
                    assert_eq!(starved.demand, demand, "seed {seed}");
                    assert_eq!(
                        starved.requests.len() as u32,
                        starved.demand - starved.reserved,
                        "seed {seed}: starved request list size"
                    );
                }
            }
        }
    }
}

/// The sharded relay-lending step partitions each relay's reservation
/// exactly like the budget split partitions upload capacity: per relay,
/// grants never exceed demand per shard, never sum above the reservation,
/// and always sum to `min(reserved, demand)` — lending is deterministic
/// and no reservation is ever oversubscribed, for any shard layout.
#[test]
fn relay_lending_partitions_reservations_across_shards() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(15_000 + seed);
        let (caps, cands) = random_instance(&mut rng);
        let shard_of = random_shard_keys(&cands, &mut rng);
        let (relay_of, reserved) = random_relays(caps.len(), cands.len(), &mut rng);
        let mut sharded = ShardedArena::new();
        let shard_count = sharded.partition(&shard_of, &cands, caps.len());
        let stats = sharded.split_relay_reserved(&reserved, &relay_of);

        // Re-run on a fresh arena: bit-identical grants and stats.
        let mut replay = ShardedArena::new();
        replay.partition(&shard_of, &cands, caps.len());
        assert_eq!(replay.split_relay_reserved(&reserved, &relay_of), stats);

        let mut granted = vec![0u64; caps.len()];
        let mut demand = vec![0u64; caps.len()];
        for s in 0..shard_count {
            let view = sharded.shard_relays(s);
            let replay_view = replay.shard_relays(s);
            assert_eq!(view.grant, replay_view.grant, "seed {seed} shard {s}");
            for ((&a, &d), &g) in view.relays.iter().zip(view.demand).zip(view.grant) {
                assert!(g <= d, "seed {seed}: shard {s} granted above demand");
                granted[a as usize] += g as u64;
                demand[a as usize] += d as u64;
            }
        }
        let mut total_granted = 0u64;
        for (a, &g) in granted.iter().enumerate() {
            assert!(
                g <= reserved[a] as u64,
                "seed {seed}: relay {a} oversubscribed across shards"
            );
            assert_eq!(
                g,
                demand[a].min(reserved[a] as u64),
                "seed {seed}: relay {a} under-granted"
            );
            total_granted += g;
        }
        assert_eq!(stats.granted as u64, total_granted, "seed {seed}");
        assert_eq!(
            stats.forward_demand as u64,
            demand.iter().sum::<u64>(),
            "seed {seed}"
        );
        assert_eq!(
            stats.starved,
            stats.forward_demand - stats.granted,
            "seed {seed}"
        );
    }
}

/// The targeted per-(shard, box) split partitions capacity exactly for any
/// slot targets, and with empty targets it is bit-identical to the
/// demand-proportional split.
#[test]
fn targeted_split_partitions_capacity_and_degrades_to_proportional() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(16_000 + seed);
        let (caps, cands) = random_instance(&mut rng);
        let shard_of = random_shard_keys(&cands, &mut rng);
        let mut sharded = ShardedArena::new();
        let shard_count = sharded.partition(&shard_of, &cands, caps.len());
        let slots: usize = (0..shard_count).map(|s| sharded.shard(s).boxes.len()).sum();
        let targets: Vec<u64> = (0..slots).map(|_| rng.gen_range(0u64..6)).collect();
        sharded.split_budgets_targeted(&caps, &targets);
        let load = budget_load(&sharded, caps.len());
        for (b, (&granted, &cap)) in load.iter().zip(&caps).enumerate() {
            let demanded = (0..shard_count).any(|s| sharded.shard(s).boxes.contains(&(b as u32)));
            if demanded {
                assert_eq!(granted, cap as u64, "seed {seed} box {b}");
            } else {
                assert_eq!(granted, 0, "seed {seed} box {b}");
            }
        }

        // Empty targets ≡ demand-proportional split, bit for bit.
        let mut targeted = ShardedArena::new();
        targeted.partition(&shard_of, &cands, caps.len());
        targeted.split_budgets_targeted(&caps, &[]);
        let mut proportional = ShardedArena::new();
        proportional.partition(&shard_of, &cands, caps.len());
        proportional.split_budgets(&caps);
        for s in 0..shard_count {
            assert_eq!(
                targeted.shard(s).budget,
                proportional.shard(s).budget,
                "seed {seed} shard {s}"
            );
        }
    }
}

/// The word-parallel set primitives behave exactly like a naive boolean
/// model under random set/unset/clear sequences: membership, popcount, and
/// bit iteration over raw words all agree, including across the word
/// boundary at bit 64 and after `reset` to a different length.
#[test]
fn bitset_kernels_match_naive_model() {
    let mut set = BitSet::new();
    let mut adj = BitAdjacency::new();
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(17_000 + seed);

        // --- BitSet vs Vec<bool> ---
        let len = rng.gen_range(1usize..200);
        set.reset(len);
        let mut model = vec![false; len];
        for _ in 0..300 {
            let i = rng.gen_range(0usize..len);
            match rng.gen_range(0u32..3) {
                0 => {
                    set.set(i);
                    model[i] = true;
                }
                1 => {
                    set.unset(i);
                    model[i] = false;
                }
                _ => assert_eq!(set.contains(i), model[i], "seed {seed} bit {i}"),
            }
        }
        for (i, &m) in model.iter().enumerate() {
            assert_eq!(set.contains(i), m, "seed {seed} bit {i}");
        }
        let expected_ones = model.iter().filter(|&&b| b).count();
        assert_eq!(set.count_ones(), expected_ones, "seed {seed}");
        let mut iterated = Vec::new();
        for_each_set_bit(set.words(), |i| iterated.push(i));
        let model_ones: Vec<usize> = (0..len).filter(|&i| model[i]).collect();
        assert_eq!(iterated, model_ones, "seed {seed}: bit iteration order");
        set.clear_all();
        assert_eq!(set.count_ones(), 0, "seed {seed}");

        // --- BitAdjacency vs Vec<Vec<bool>> ---
        let rows = rng.gen_range(1usize..12);
        let cols = rng.gen_range(1usize..150);
        adj.reset(rows, cols);
        let mut grid = vec![vec![false; cols]; rows];
        for _ in 0..300 {
            let r = rng.gen_range(0usize..rows);
            let c = rng.gen_range(0usize..cols);
            if rng.gen_bool(0.8) {
                adj.set(r, c);
                grid[r][c] = true;
            } else {
                adj.clear_row(r);
                grid[r].fill(false);
            }
        }
        for (r, row) in grid.iter().enumerate() {
            let mut got = Vec::new();
            for_each_set_bit(adj.row(r), |c| got.push(c));
            let want: Vec<usize> = (0..cols).filter(|&c| row[c]).collect();
            assert_eq!(got, want, "seed {seed} row {r}");
            for (c, &m) in row.iter().enumerate() {
                assert_eq!(adj.contains(r, c), m, "seed {seed} ({r},{c})");
            }
        }
    }
}

/// Adversarial tight bipartite instance: an overloaded complete (or
/// near-complete) bipartite graph where demand exceeds capacity, so every
/// solver is forced deep into its augmentation/relabel machinery.
fn adversarial_tight_instance(rng: &mut StdRng) -> (Vec<u32>, Vec<Vec<BoxId>>) {
    let boxes = rng.gen_range(3usize..9);
    let caps: Vec<u32> = (0..boxes).map(|_| rng.gen_range(1u32..3)).collect();
    let capacity: u32 = caps.iter().sum();
    // Demand ~1.5x capacity guarantees an infeasible, tight instance.
    let requests = (capacity as usize * 3 / 2).max(capacity as usize + 1);
    let cands: Vec<Vec<BoxId>> = (0..requests)
        .map(|_| {
            // Mostly complete rows, occasionally a sparse one.
            if rng.gen_bool(0.8) {
                (0..boxes).map(|b| BoxId(b as u32)).collect()
            } else {
                let degree = rng.gen_range(1usize..boxes);
                (0..degree)
                    .map(|_| BoxId(rng.gen_range(0usize..boxes) as u32))
                    .collect()
            }
        })
        .collect();
    (caps, cands)
}

/// Constructor of one boxed solver variant.
type MakeSolver = fn() -> Box<dyn MaxFlowSolve>;

/// Every solver variant — word-parallel and scalar, with and without the
/// push-relabel heuristics — returns the same flow value and a valid
/// matching, on both random and adversarially tight instances. This is the
/// bit-vs-scalar equality gate for the whole solver matrix.
#[test]
fn bit_and_scalar_solver_variants_agree_cold() {
    let variants: [(&str, MakeSolver); 6] = [
        ("dinic-bit", || Box::new(Dinic::new())),
        ("dinic-scalar", || Box::new(Dinic::scalar())),
        ("hk-bit", || Box::new(HopcroftKarpSolve::new())),
        ("hk-scalar", || Box::new(HopcroftKarpSolve::scalar())),
        ("pr-heuristic", || Box::new(PushRelabel::new())),
        ("pr-basic", || Box::new(PushRelabel::basic())),
    ];
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(18_000 + seed);
        for adversarial in [false, true] {
            let (caps, cands) = if adversarial {
                adversarial_tight_instance(&mut rng)
            } else {
                random_instance(&mut rng)
            };
            let problem = build_problem(&caps, &cands);
            let reference = problem.solve_with(&mut Dinic::scalar());
            for (name, make) in &variants {
                let got = problem.solve_with(make().as_mut());
                assert_eq!(
                    got.flow, reference.flow,
                    "seed {seed} adversarial={adversarial}: {name} flow"
                );
                assert_eq!(
                    got.served(),
                    reference.served(),
                    "seed {seed} adversarial={adversarial}: {name} served"
                );
                assert!(
                    got.is_valid_for(&problem),
                    "seed {seed} adversarial={adversarial}: {name} invalid matching"
                );
            }
            if adversarial {
                // Tight instances must saturate: flow = min(capacity, demand),
                // reached whenever every row is complete (the common case);
                // sparse rows can only lower it, never raise it.
                let capacity: u64 = caps.iter().map(|&c| c as u64).sum();
                assert!(
                    reference.flow <= capacity.min(cands.len() as u64),
                    "seed {seed}: flow exceeds trivial bound"
                );
                if cands.iter().all(|c| c.len() == caps.len()) {
                    assert_eq!(
                        reference.flow,
                        capacity.min(cands.len() as u64),
                        "seed {seed}: complete bipartite instance not saturated"
                    );
                }
            }
        }
    }
}

/// Warm-started (incremental, arena-reusing) solves of each word-parallel
/// variant serve exactly what its scalar twin serves, round for round,
/// across random churn — exercising shape re-analysis, seeded-matching
/// extraction, diff write-back, and the global-relabel path on warm
/// arenas.
#[test]
fn bit_and_scalar_solver_variants_agree_warm() {
    let pairs: [(MakeSolver, MakeSolver); 3] = [
        (|| Box::new(Dinic::new()), || Box::new(Dinic::scalar())),
        (
            || Box::new(HopcroftKarpSolve::new()),
            || Box::new(HopcroftKarpSolve::scalar()),
        ),
        (
            || Box::new(PushRelabel::new()),
            || Box::new(PushRelabel::basic()),
        ),
    ];
    for (pi, (make_bit, make_scalar)) in pairs.iter().enumerate() {
        for seed in 0..CASES / 2 {
            let mut rng = StdRng::seed_from_u64(19_000 + seed);
            let boxes = rng.gen_range(3usize..8);
            let caps: Vec<u32> = (0..boxes).map(|_| rng.gen_range(0u32..4)).collect();
            let mut bit = IncrementalMatcher::new(make_bit());
            let mut scalar = IncrementalMatcher::new(make_scalar());
            let mut bit_out = Vec::new();
            let mut scalar_out = Vec::new();

            let mut live: Vec<(RequestKey, Vec<BoxId>)> = Vec::new();
            let mut next_id = 0u32;
            for round in 0..12u64 {
                for _ in 0..rng.gen_range(0usize..4) {
                    let key = RequestKey {
                        viewer: BoxId(next_id),
                        stripe: StripeId::new(VideoId(0), 0),
                    };
                    next_id += 1;
                    let degree = rng.gen_range(0usize..boxes);
                    let cands: Vec<BoxId> = (0..degree)
                        .map(|_| BoxId(rng.gen_range(0usize..boxes) as u32))
                        .collect();
                    live.push((key, cands));
                }
                while live.len() > 10 || (rng.gen_bool(0.3) && !live.is_empty()) {
                    let victim = rng.gen_range(0usize..live.len());
                    live.remove(victim);
                }
                if !live.is_empty() && rng.gen_bool(0.7) {
                    let victim = rng.gen_range(0usize..live.len());
                    let degree = rng.gen_range(0usize..boxes);
                    live[victim].1 = (0..degree)
                        .map(|_| BoxId(rng.gen_range(0usize..boxes) as u32))
                        .collect();
                }

                let keys: Vec<RequestKey> = live.iter().map(|(k, _)| *k).collect();
                let cands: Vec<Vec<BoxId>> = live.iter().map(|(_, c)| c.clone()).collect();
                bit.schedule_keyed(&caps, &keys, &cands, &mut bit_out);
                scalar.schedule_keyed(&caps, &keys, &cands, &mut scalar_out);

                let bit_served = bit_out.iter().flatten().count();
                let scalar_served = scalar_out.iter().flatten().count();
                assert_eq!(
                    bit_served, scalar_served,
                    "pair {pi} seed {seed} round {round}: bit vs scalar served"
                );
                let problem = build_problem(&caps, &cands);
                let warm = ConnectionMatching {
                    assignment: bit_out.clone(),
                    flow: bit_served as u64,
                    total_requests: keys.len(),
                };
                assert!(
                    warm.is_valid_for(&problem),
                    "pair {pi} seed {seed} round {round}: bit matching invalid"
                );
            }
        }
    }
}

/// The global-relabel + gap push-relabel agrees with the basic variant and
/// with Dinic on raw random flow networks (not just Lemma-1 shapes) — the
/// heuristics change only the work schedule, never the flow value.
#[test]
fn global_relabel_push_relabel_matches_on_raw_networks() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(20_000 + seed);
        let (n, edges) = random_network(&mut rng);
        let mut g1 = build_network(n, &edges);
        let mut g2 = build_network(n, &edges);
        let source = 0;
        let sink = n - 1;
        let reference = dinic::max_flow(&mut g1, source, sink);
        let pr = push_relabel::max_flow(&mut g2, source, sink);
        assert_eq!(reference, pr, "seed {seed}: push-relabel vs dinic");

        // Arena-based solver structs on the same network, both heuristic
        // modes.
        let mut arena = FlowArena::new();
        let g3 = build_network(n, &edges);
        arena.rebuild_from(&g3);
        let with = PushRelabel::new().max_flow(&mut arena, source, sink);
        arena.rebuild_from(&g3);
        let without = PushRelabel::basic().max_flow(&mut arena, source, sink);
        assert_eq!(with, reference, "seed {seed}: heuristic variant");
        assert_eq!(without, reference, "seed {seed}: basic variant");
    }
}
