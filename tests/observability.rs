//! Observability contract of the `vod-obs` recorder, end to end:
//!
//! * **zero overhead, proven at the allocator** — steady-state engine
//!   rounds stay allocation-free even with a *recording* tracer attached
//!   (the span path writes into the preallocated ring and fixed-size
//!   histograms); the no-op path is the same contract minus the tracer,
//!   already pinned by `scheduler_allocation.rs`;
//! * **behavioural invisibility** — a traced run's report equals the
//!   untraced run's bit for bit (report equality excludes wall-clock
//!   timing by construction), and a timing-only difference can never fail
//!   an equivalence gate;
//! * **serialization** — reports carrying `profile`/`timing` round-trip
//!   through the hand-rolled JSON codec, and legacy reports written before
//!   these fields existed still parse (mirroring the `candidates`
//!   backcompat precedent).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::StdRng;
use rand::SeedableRng;
use vod_core::json::{Json, JsonCodec};
use vod_core::{BoxId, RandomPermutationAllocator, SystemParams, VideoId, VideoSystem};
use vod_sim::{
    eq_ignoring_timing, CandidateStats, SimConfig, SimulationReport, Simulator, Stage,
    StageTimings, TimingNeutral, TraceHandle,
};
use vod_workloads::{DemandGenerator, OccupancyView, VideoDemand};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// One cohort admitted at round 0, playing for the whole run (the
/// `scheduler_allocation.rs` steady-state workload).
struct OneShotCohort {
    n: u32,
    m: usize,
}

impl DemandGenerator for OneShotCohort {
    fn demands_at(&mut self, round: u64, _occupancy: &dyn OccupancyView) -> Vec<VideoDemand> {
        if round != 0 {
            return Vec::new();
        }
        (0..self.n)
            .map(|i| VideoDemand {
                box_id: BoxId(i),
                video: VideoId((i as usize % self.m) as u32),
                round,
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "one-shot cohort"
    }
}

fn steady_system() -> VideoSystem {
    let params = SystemParams::new(16, 2.5, 8, 4, 4, 1.5, 60);
    let mut rng = StdRng::seed_from_u64(3);
    VideoSystem::homogeneous(params, &RandomPermutationAllocator::new(4), &mut rng).unwrap()
}

/// The recording span path is zero-alloc too: every record lands in the
/// preallocated ring, every timing in a fixed-size array or histogram. This
/// is strictly stronger than the untraced steady-state contract.
#[test]
fn traced_steady_state_engine_rounds_allocate_nothing() {
    let system = steady_system();
    let mut gen = OneShotCohort {
        n: 16,
        m: system.m(),
    };
    let mut sim = Simulator::new(&system, SimConfig::new(50));
    sim.attach_tracer(TraceHandle::recording(4096));
    for round in 0..20u64 {
        assert!(sim.step(&mut gen), "warm-up round {round} must be feasible");
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for round in 20..40u64 {
        assert!(sim.step(&mut gen), "steady round {round} must be feasible");
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "traced steady-state engine rounds must not allocate (got {} over 20 rounds)",
        after - before
    );
}

fn run_steady(tracer: Option<TraceHandle>) -> SimulationReport {
    let system = steady_system();
    let mut gen = OneShotCohort {
        n: 16,
        m: system.m(),
    };
    let mut sim = Simulator::new(&system, SimConfig::new(30));
    if let Some(tracer) = tracer {
        sim.attach_tracer(tracer);
    }
    for _ in 0..30u64 {
        sim.step(&mut gen);
    }
    sim.into_report()
}

#[test]
fn traced_run_is_bit_identical_to_untraced() {
    let untraced = run_steady(None);
    let traced = run_steady(Some(TraceHandle::recording(4096)));
    assert_eq!(
        untraced, traced,
        "attaching a recorder must not change behaviour"
    );
    assert!(untraced.profile.is_none(), "untraced runs carry no profile");
    let profile = traced
        .profile
        .as_ref()
        .expect("traced runs carry a profile");
    assert!(profile.any(), "the profile must have recorded spans");
    assert!(profile.stage(Stage::Schedule).count > 0);
    assert!(traced
        .rounds
        .iter()
        .all(|r| r.timing.as_ref().is_some_and(StageTimings::any)));
    assert!(untraced.rounds.iter().all(|r| r.timing.is_none()));
}

/// The satellite regression: a timing-only difference must never fail an
/// equivalence comparison, at any of the three layers the rule is applied.
#[test]
fn timing_only_differences_never_break_equality() {
    // Layer 1: CandidateStats build time, through the shared helper.
    let a = CandidateStats {
        index_entries: 7,
        expired: 2,
        inserted: 3,
        build_ns: 1111,
    };
    let mut b = a;
    b.build_ns = 999_999;
    assert_eq!(a, b);
    assert!(eq_ignoring_timing(&a, &b));
    let mut scrubbed = b;
    TimingNeutral::scrub(&mut scrubbed);
    assert_eq!(scrubbed.build_ns, 0);
    assert_eq!(a, scrubbed);

    // Layer 2: whole reports — Some-vs-None timing and profile compare
    // equal, so traced runs pass every bit-equality gate untouched.
    let untraced = run_steady(None);
    let traced = run_steady(Some(TraceHandle::recording(4096)));
    assert_eq!(untraced, traced);

    // Layer 3: the explorer's normalization scrubs timing to a canonical
    // form, so hashed/serialized normalized rounds agree too.
    for (u, t) in untraced.rounds.iter().zip(&traced.rounds) {
        let nu = vod_analysis::normalize_round(u);
        let nt = vod_analysis::normalize_round(t);
        assert!(nu.timing.is_none() && nt.timing.is_none());
        assert_eq!(nu.candidates.map(|c| c.build_ns), Some(0));
        assert_eq!(nu, nt);
    }
}

#[test]
fn report_with_profile_and_timing_roundtrips_through_json() {
    let traced = run_steady(Some(TraceHandle::recording(4096)));
    let text = traced.to_json_string();
    let parsed = SimulationReport::from_json(&Json::parse(&text).expect("rendered JSON parses"))
        .expect("report round-trips");
    assert_eq!(parsed, traced);
    // Equality ignores timing, so pin the timing payload explicitly.
    let original = traced.profile.as_ref().expect("profile");
    let roundtrip = parsed.profile.as_ref().expect("profile survives JSON");
    assert_eq!(roundtrip.rounds, original.rounds);
    for (stage, sp) in original.occupied() {
        let rt = roundtrip.stage(stage);
        assert_eq!(
            (rt.count, rt.total_ns, rt.max_ns),
            (sp.count, sp.total_ns, sp.max_ns)
        );
    }
    for (orig, rt) in traced.rounds.iter().zip(&parsed.rounds) {
        let orig = orig.timing.expect("traced round has timing");
        let rt = rt.timing.expect("timing survives JSON");
        assert_eq!(rt.ns, orig.ns);
        assert_eq!(rt.counts, orig.counts);
    }
}

/// Drops `field` from a JSON object (recursively into arrays/objects), the
/// shape a pre-observability report file has on disk.
fn strip_field(json: &mut Json, field: &str) {
    match json {
        Json::Obj(pairs) => {
            pairs.retain(|(k, _)| k != field);
            for (_, v) in pairs {
                strip_field(v, field);
            }
        }
        Json::Arr(items) => {
            for v in items {
                strip_field(v, field);
            }
        }
        _ => {}
    }
}

#[test]
fn legacy_reports_without_profile_or_timing_still_parse() {
    let traced = run_steady(Some(TraceHandle::recording(4096)));
    let mut legacy = traced.to_json();
    strip_field(&mut legacy, "profile");
    strip_field(&mut legacy, "timing");
    let parsed = SimulationReport::from_json(&legacy).expect("legacy report parses");
    assert!(parsed.profile.is_none());
    assert!(parsed.rounds.iter().all(|r| r.timing.is_none()));
    // Structural equality still holds: the stripped fields are exactly the
    // ones excluded from comparison.
    assert_eq!(parsed, traced);
}

#[test]
fn clones_share_one_tracer_across_engine_layers() {
    // The engine hands clones of one handle to the scheduler and solvers;
    // a run on the sharded scheduler must fold shard-stage spans emitted
    // from worker threads into the same profile.
    let system = steady_system();
    let mut gen = OneShotCohort {
        n: 16,
        m: system.m(),
    };
    let mut sim = Simulator::with_sharded_scheduler(&system, SimConfig::new(20), 2);
    let tracer = TraceHandle::recording(4096);
    sim.attach_tracer(tracer.clone());
    for _ in 0..20u64 {
        sim.step(&mut gen);
    }
    let profile = tracer.run_profile().expect("recording handle");
    assert!(profile.stage(Stage::ShardSolve).count > 0);
    assert!(profile.stage(Stage::ShardPartition).count > 0);
    assert!(profile.stage(Stage::Schedule).count > 0);
}
