//! Verifies the tentpole performance contract: once warmed up, the
//! max-flow scheduler performs **zero heap allocations per round** in steady
//! state, because the `IncrementalMatcher` reuses one `FlowArena`, its slot
//! pool, and every scratch buffer across rounds.
//!
//! A counting global allocator wraps `System`; the test drives the scheduler
//! through warm-up rounds (where buffers grow to the working-set size) and
//! then asserts that further rounds — including rounds that *patch* the
//! instance by swapping candidate sets back and forth — allocate nothing.
//!
//! Since the incremental candidate pipeline landed, the contract covers the
//! **whole engine round**: cache-index maintenance (expiry wheel), active-
//! request collection, CSR candidate construction, scheduling, and metric
//! recording together allocate nothing in steady state.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::StdRng;
use rand::SeedableRng;
use vod_core::{BoxId, RandomPermutationAllocator, StripeId, SystemParams, VideoId, VideoSystem};
use vod_sim::{MaxFlowScheduler, RequestKey, Scheduler, SimConfig, Simulator};
use vod_workloads::{DemandGenerator, OccupancyView, VideoDemand};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn key(viewer: u32, index: u16) -> RequestKey {
    RequestKey {
        viewer: BoxId(viewer),
        stripe: StripeId::new(VideoId(0), index),
    }
}

fn b(i: u32) -> BoxId {
    BoxId(i)
}

#[test]
fn steady_state_rounds_allocate_nothing() {
    let caps: Vec<u32> = vec![2; 16];
    let keys: Vec<RequestKey> = (0..24).map(|i| key(i, (i % 4) as u16)).collect();
    // Two alternating candidate configurations: even rounds vs odd rounds
    // differ, so the matcher genuinely patches edges and re-augments flow
    // every round instead of finding nothing to do.
    let cands_a: Vec<Vec<BoxId>> = (0..24u32)
        .map(|i| vec![b(i % 16), b((i + 5) % 16)])
        .collect();
    let cands_b: Vec<Vec<BoxId>> = (0..24u32)
        .map(|i| vec![b(i % 16), b((i + 9) % 16)])
        .collect();

    let mut scheduler = MaxFlowScheduler::new();
    let mut out = Vec::new();

    // Warm-up: grow every buffer (arena, slots, scratch, out) to the
    // working-set size under both configurations.
    for round in 0..12 {
        let cands = if round % 2 == 0 { &cands_a } else { &cands_b };
        scheduler.schedule_keyed(&caps, &keys, cands, &mut out);
        assert_eq!(out.iter().flatten().count(), 24, "warm-up round {round}");
    }
    let rebuilds_after_warmup = scheduler.matcher().rebuilds();

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for round in 0..10 {
        let cands = if round % 2 == 0 { &cands_a } else { &cands_b };
        scheduler.schedule_keyed(&caps, &keys, cands, &mut out);
        assert_eq!(out.iter().flatten().count(), 24, "steady round {round}");
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "steady-state rounds must not allocate (got {} allocations over 10 rounds)",
        after - before
    );
    // And the arena was never rebuilt once warm.
    assert_eq!(scheduler.matcher().rebuilds(), rebuilds_after_warmup);
}

#[test]
fn request_churn_reuses_pooled_slots_without_allocating() {
    let caps: Vec<u32> = vec![2; 8];
    let mut scheduler = MaxFlowScheduler::new();
    let mut out = Vec::new();
    let mut keys: Vec<RequestKey> = (0..10).map(|i| key(i, 0)).collect();
    let cands: Vec<Vec<BoxId>> = (0..10u32).map(|i| vec![b(i % 8), b((i + 3) % 8)]).collect();

    // Warm-up with a rotating window: requests 0..10, then 1..11, 2..12, …
    // so slot recycling paths are exercised. Rotate through enough distinct
    // keys that the key-map has seen its full working set.
    for round in 0u32..40 {
        for (j, k) in keys.iter_mut().enumerate() {
            *k = key((round + j as u32) % 20, 0);
        }
        scheduler.schedule_keyed(&caps, &keys, &cands, &mut out);
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for round in 40u32..60 {
        for (j, k) in keys.iter_mut().enumerate() {
            *k = key((round + j as u32) % 20, 0);
        }
        scheduler.schedule_keyed(&caps, &keys, &cands, &mut out);
        assert_eq!(out.len(), 10);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "slot-recycling rounds must not allocate (got {})",
        after - before
    );
}

/// Demands every box once at round 0 and stays silent afterwards, so
/// steady-state engine rounds take no generator-side allocation either.
struct OneShotCohort {
    n: u32,
    m: usize,
}

impl DemandGenerator for OneShotCohort {
    fn demands_at(&mut self, round: u64, _occupancy: &dyn OccupancyView) -> Vec<VideoDemand> {
        if round != 0 {
            return Vec::new(); // Vec::new is allocation-free
        }
        (0..self.n)
            .map(|i| VideoDemand {
                box_id: BoxId(i),
                video: VideoId((i as usize % self.m) as u32),
                round,
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "one-shot cohort"
    }
}

/// Full engine rounds are allocation-free in steady state: expiry-wheel
/// index maintenance, pooled request collection, flat CSR candidate rows,
/// stamped stall accounting, the warm incremental matcher, and per-round
/// metric recording all reuse their buffers.
#[test]
fn steady_state_engine_rounds_allocate_nothing() {
    // Duration longer than the simulated window: the cohort admitted at
    // round 0 keeps playing throughout, so measured rounds carry a full,
    // stable working set of active requests.
    let params = SystemParams::new(16, 2.5, 8, 4, 4, 1.5, 60);
    let mut rng = StdRng::seed_from_u64(3);
    let system =
        VideoSystem::homogeneous(params, &RandomPermutationAllocator::new(4), &mut rng).unwrap();
    let mut gen = OneShotCohort {
        n: 16,
        m: system.m(),
    };
    let mut sim = Simulator::new(&system, SimConfig::new(50));
    for round in 0..20u64 {
        assert!(sim.step(&mut gen), "warm-up round {round} must be feasible");
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for round in 20..40u64 {
        assert!(sim.step(&mut gen), "steady round {round} must be feasible");
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state engine rounds must not allocate (got {} over 20 rounds)",
        after - before
    );
}
