//! Verifies the tentpole performance contract: once warmed up, the
//! max-flow scheduler performs **zero heap allocations per round** in steady
//! state, because the `IncrementalMatcher` reuses one `FlowArena`, its slot
//! pool, and every scratch buffer across rounds.
//!
//! A counting global allocator wraps `System`; the test drives the scheduler
//! through warm-up rounds (where buffers grow to the working-set size) and
//! then asserts that further rounds — including rounds that *patch* the
//! instance by swapping candidate sets back and forth — allocate nothing.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use vod_core::{BoxId, StripeId, VideoId};
use vod_sim::{MaxFlowScheduler, RequestKey, Scheduler};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn key(viewer: u32, index: u16) -> RequestKey {
    RequestKey {
        viewer: BoxId(viewer),
        stripe: StripeId::new(VideoId(0), index),
    }
}

fn b(i: u32) -> BoxId {
    BoxId(i)
}

#[test]
fn steady_state_rounds_allocate_nothing() {
    let caps: Vec<u32> = vec![2; 16];
    let keys: Vec<RequestKey> = (0..24).map(|i| key(i, (i % 4) as u16)).collect();
    // Two alternating candidate configurations: even rounds vs odd rounds
    // differ, so the matcher genuinely patches edges and re-augments flow
    // every round instead of finding nothing to do.
    let cands_a: Vec<Vec<BoxId>> = (0..24u32)
        .map(|i| vec![b(i % 16), b((i + 5) % 16)])
        .collect();
    let cands_b: Vec<Vec<BoxId>> = (0..24u32)
        .map(|i| vec![b(i % 16), b((i + 9) % 16)])
        .collect();

    let mut scheduler = MaxFlowScheduler::new();
    let mut out = Vec::new();

    // Warm-up: grow every buffer (arena, slots, scratch, out) to the
    // working-set size under both configurations.
    for round in 0..12 {
        let cands = if round % 2 == 0 { &cands_a } else { &cands_b };
        scheduler.schedule_keyed(&caps, &keys, cands, &mut out);
        assert_eq!(out.iter().flatten().count(), 24, "warm-up round {round}");
    }
    let rebuilds_after_warmup = scheduler.matcher().rebuilds();

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for round in 0..10 {
        let cands = if round % 2 == 0 { &cands_a } else { &cands_b };
        scheduler.schedule_keyed(&caps, &keys, cands, &mut out);
        assert_eq!(out.iter().flatten().count(), 24, "steady round {round}");
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "steady-state rounds must not allocate (got {} allocations over 10 rounds)",
        after - before
    );
    // And the arena was never rebuilt once warm.
    assert_eq!(scheduler.matcher().rebuilds(), rebuilds_after_warmup);
}

#[test]
fn request_churn_reuses_pooled_slots_without_allocating() {
    let caps: Vec<u32> = vec![2; 8];
    let mut scheduler = MaxFlowScheduler::new();
    let mut out = Vec::new();
    let mut keys: Vec<RequestKey> = (0..10).map(|i| key(i, 0)).collect();
    let cands: Vec<Vec<BoxId>> = (0..10u32).map(|i| vec![b(i % 8), b((i + 3) % 8)]).collect();

    // Warm-up with a rotating window: requests 0..10, then 1..11, 2..12, …
    // so slot recycling paths are exercised. Rotate through enough distinct
    // keys that the key-map has seen its full working set.
    for round in 0u32..40 {
        for (j, k) in keys.iter_mut().enumerate() {
            *k = key((round + j as u32) % 20, 0);
        }
        scheduler.schedule_keyed(&caps, &keys, &cands, &mut out);
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for round in 40u32..60 {
        for (j, k) in keys.iter_mut().enumerate() {
            *k = key((round + j as u32) % 20, 0);
        }
        scheduler.schedule_keyed(&caps, &keys, &cands, &mut out);
        assert_eq!(out.len(), 10);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "slot-recycling rounds must not allocate (got {})",
        after - before
    );
}
