//! Sharded-vs-global equivalence harness: the gate for the per-swarm
//! sharded scheduler.
//!
//! Sharding a round's Lemma-1 instance (per-swarm subproblems under a
//! budget split, solved in parallel, reconciled on the global residual
//! network) must never change *what* is schedulable — only how fast the
//! schedule is found. This suite locks that down with seeded property
//! loops over random multi-swarm rounds:
//!
//! * the [`ShardedMatcher`] and the global [`IncrementalMatcher`] agree
//!   with each other — and with a cold one-shot solve — on per-round
//!   feasibility and matched-request counts, for thread counts 1–8;
//! * the sharded schedule is deterministic: for a fixed seed the assigned
//!   supplier of every request — and the per-round [`ShardRoundStats`],
//!   including the budget split's water-filling iterations and the
//!   reconciliation counters — is identical for every thread count, and
//!   across re-runs;
//! * every assignment respects candidate sets and capacities;
//! * all four split × reconcile policy combinations (demand-proportional
//!   vs water-filling, rebuilding vs persistent reconciliation) satisfy the
//!   same guarantees — the PR 3 defaults extend the gate, they do not relax
//!   it.
//!
//! Instance knobs (`n` boxes, `m` videos, `c` stripes per video, growth
//! factor `µ`) are drawn per seed, so every failure reproduces from the
//! printed seed alone.

use p2p_vod::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vod_sim::scheduler::assignment_is_valid;

const SEEDS: u64 = 10;
const ROUNDS: u64 = 14;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Static shape of one generated scenario.
struct Scenario {
    /// Boxes in the system.
    n: usize,
    /// Videos (shards) in the catalog.
    m: usize,
    /// Stripes per video: each viewer spawns `c` requests.
    c: u16,
    /// Per-round growth factor of the viewer population (µ).
    mu: f64,
    /// Per-video holder sets (the static allocation).
    holders: Vec<Vec<BoxId>>,
    caps: Vec<u32>,
}

impl Scenario {
    fn draw(rng: &mut StdRng) -> Self {
        let n = rng.gen_range(4usize..20);
        let m = rng.gen_range(1usize..7);
        let c = rng.gen_range(1u16..5);
        let mu = 1.0 + rng.gen_range(0.2f64..2.0);
        let caps = (0..n).map(|_| rng.gen_range(0u32..5)).collect();
        let holders = (0..m)
            .map(|_| {
                let k = rng.gen_range(1usize..=n.min(5));
                (0..k)
                    .map(|_| BoxId(rng.gen_range(0usize..n) as u32))
                    .collect()
            })
            .collect();
        Scenario {
            n,
            m,
            c,
            mu,
            holders,
            caps,
        }
    }
}

/// One live playback: its viewer, video, and per-stripe candidate sets.
struct Playback {
    viewer: u32,
    video: u32,
    cands: Vec<Vec<BoxId>>,
}

/// Evolves a multi-swarm population of keyed requests: geometric arrivals
/// (bounded by µ), random departures, and candidate churn. Deterministic
/// per (scenario, rng) state.
struct RoundStream {
    live: Vec<Playback>,
    next_viewer: u32,
}

impl RoundStream {
    fn new() -> Self {
        RoundStream {
            live: Vec::new(),
            next_viewer: 0,
        }
    }

    fn random_cands(sc: &Scenario, video: usize, rng: &mut StdRng) -> Vec<BoxId> {
        let mut cands: Vec<BoxId> = sc.holders[video]
            .iter()
            .copied()
            .filter(|_| rng.gen_bool(0.8))
            .collect();
        // Occasional cross-swarm supplier (a playback cache on a box busy
        // with another video) couples the shards through shared capacity.
        if rng.gen_bool(0.3) {
            cands.push(BoxId(rng.gen_range(0usize..sc.n) as u32));
        }
        cands.sort();
        cands.dedup();
        cands
    }

    fn advance(&mut self, sc: &Scenario, rng: &mut StdRng) {
        // Departures.
        self.live.retain(|_| !rng.gen_bool(0.15));
        // Arrivals: the population may grow by at most factor µ (the
        // admissibility bound), spread over random videos.
        let ceiling = ((self.live.len().max(1)) as f64 * sc.mu).ceil() as usize;
        let arrivals = rng.gen_range(0usize..=ceiling.saturating_sub(self.live.len()).min(6));
        for _ in 0..arrivals {
            let video = rng.gen_range(0usize..sc.m);
            let cands = (0..sc.c)
                .map(|_| RoundStream::random_cands(sc, video, rng))
                .collect();
            self.live.push(Playback {
                viewer: self.next_viewer,
                video: video as u32,
                cands,
            });
            self.next_viewer += 1;
        }
        // Candidate churn on one random survivor (a cache ageing out).
        if !self.live.is_empty() && rng.gen_bool(0.6) {
            let victim = rng.gen_range(0usize..self.live.len());
            let video = self.live[victim].video as usize;
            let stripe = rng.gen_range(0usize..self.live[victim].cands.len());
            self.live[victim].cands[stripe] = RoundStream::random_cands(sc, video, rng);
        }
    }

    fn round(&self) -> (Vec<RequestKey>, Vec<Vec<BoxId>>) {
        let mut keys = Vec::new();
        let mut cands = Vec::new();
        for playback in &self.live {
            for (idx, c) in playback.cands.iter().enumerate() {
                keys.push(RequestKey {
                    viewer: BoxId(playback.viewer),
                    stripe: StripeId::new(VideoId(playback.video), idx as u16),
                });
                cands.push(c.clone());
            }
        }
        (keys, cands)
    }
}

fn cold_served(caps: &[u32], cands: &[Vec<BoxId>]) -> usize {
    let mut problem = ConnectionProblem::new(caps.to_vec());
    for c in cands {
        problem.add_request(c.iter().copied());
    }
    problem.solve().served()
}

/// Every split × reconcile policy combination the matcher supports.
const POLICIES: [(SplitPolicy, ReconcilePolicy); 4] = [
    (SplitPolicy::DemandProportional, ReconcilePolicy::Rebuild),
    (SplitPolicy::DemandProportional, ReconcilePolicy::Persistent),
    (SplitPolicy::WaterFill, ReconcilePolicy::Rebuild),
    (SplitPolicy::WaterFill, ReconcilePolicy::Persistent),
];

/// Replays one seeded scenario through a sharded matcher with the given
/// policies, returning the full schedule and per-round stats history.
fn run_sharded_with(
    seed: u64,
    threads: usize,
    split: SplitPolicy,
    reconcile: ReconcilePolicy,
) -> (Vec<Vec<Option<BoxId>>>, Vec<ShardRoundStats>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let sc = Scenario::draw(&mut rng);
    let mut stream = RoundStream::new();
    let mut matcher = ShardedMatcher::new(threads)
        .with_split_policy(split)
        .with_reconcile_policy(reconcile);
    let mut out = Vec::new();
    let mut history = Vec::new();
    let mut stats = Vec::new();
    for _ in 0..ROUNDS {
        stream.advance(&sc, &mut rng);
        let (keys, cands) = stream.round();
        matcher.schedule_keyed(&sc.caps, &keys, &cands, &mut out);
        history.push(out.clone());
        stats.push(matcher.last_round_stats());
    }
    (history, stats)
}

/// Replays one seeded scenario through a default-policy sharded matcher,
/// returning the full schedule history.
fn run_sharded(seed: u64, threads: usize) -> Vec<Vec<Option<BoxId>>> {
    run_sharded_with(
        seed,
        threads,
        SplitPolicy::default(),
        ReconcilePolicy::default(),
    )
    .0
}

/// Sharded, incremental, and cold global solves agree on feasibility and
/// matched-request counts on random multi-swarm rounds, for 1–8 threads,
/// and every sharded assignment is valid.
#[test]
fn sharded_matches_global_on_random_multi_swarm_rounds() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let sc = Scenario::draw(&mut rng);
        let mut stream = RoundStream::new();
        let mut sharded: Vec<ShardedMatcher> = THREAD_COUNTS
            .iter()
            .map(|&t| ShardedMatcher::new(t))
            .collect();
        let mut incremental = IncrementalMatcher::default();
        let mut sharded_out: Vec<Vec<Option<BoxId>>> =
            THREAD_COUNTS.iter().map(|_| Vec::new()).collect();
        let mut incremental_out = Vec::new();

        for round in 0..ROUNDS {
            stream.advance(&sc, &mut rng);
            let (keys, cands) = stream.round();

            incremental.schedule_keyed(&sc.caps, &keys, &cands, &mut incremental_out);
            let reference = incremental_out.iter().flatten().count();
            let cold = cold_served(&sc.caps, &cands);
            assert_eq!(
                reference, cold,
                "seed {seed} round {round}: incremental vs cold"
            );

            let mut round_stats = Vec::new();
            for (slot, matcher) in sharded.iter_mut().enumerate() {
                matcher.schedule_keyed(&sc.caps, &keys, &cands, &mut sharded_out[slot]);
                round_stats.push(matcher.last_round_stats());
                let served = sharded_out[slot].iter().flatten().count();
                assert_eq!(
                    served,
                    reference,
                    "seed {seed} round {round} threads {}: sharded {served} vs global {reference}",
                    matcher.threads()
                );
                assert!(
                    assignment_is_valid(&sharded_out[slot], &sc.caps, &cands),
                    "seed {seed} round {round} threads {}",
                    matcher.threads()
                );
                // Feasibility verdicts agree with the scheduler's own stats.
                let stats = matcher.last_round_stats();
                assert_eq!(
                    stats.unmatched,
                    keys.len() - served,
                    "seed {seed} round {round}"
                );
            }
            // Identical schedules (not just counts) across thread counts —
            // and identical per-round stats, so the water-filling split and
            // the reconciliation path choices are thread-count-invariant
            // too.
            for slot in 1..sharded.len() {
                assert_eq!(
                    sharded_out[slot], sharded_out[0],
                    "seed {seed} round {round}: threads {} diverged from threads 1",
                    THREAD_COUNTS[slot]
                );
                assert_eq!(
                    round_stats[slot], round_stats[0],
                    "seed {seed} round {round}: threads {} stats diverged",
                    THREAD_COUNTS[slot]
                );
            }
        }
    }
}

/// The full schedule history is a pure function of the seed: re-running the
/// same scenario — at any thread count — reproduces it bit-for-bit.
#[test]
fn sharded_schedules_are_seed_deterministic() {
    for seed in 0..SEEDS / 2 {
        let reference = run_sharded(seed, 1);
        for &threads in &THREAD_COUNTS {
            assert_eq!(
                run_sharded(seed, threads),
                reference,
                "seed {seed} threads {threads}"
            );
        }
    }
}

/// Full-simulator equivalence: a multi-swarm churn workload scheduled by the
/// sharded matcher produces the same per-round service numbers as the
/// paper's global max-flow scheduler.
#[test]
fn simulator_level_sharded_equals_global() {
    let params = SystemParams::new(32, 2.0, 8, 4, 4, 1.5, 25);
    let mut rng = StdRng::seed_from_u64(11);
    let system =
        VideoSystem::homogeneous(params, &RandomPermutationAllocator::new(4), &mut rng).unwrap();

    let run = |scheduler: Box<dyn Scheduler>| {
        let mut gen = MultiSwarmChurn::new(system.m(), 4, 6, 1.5, 3).with_rotation(5);
        Simulator::with_scheduler(&system, SimConfig::new(40).continue_on_failure(), scheduler)
            .run(&mut gen)
    };
    let global = run(Box::new(MaxFlowScheduler::new()));
    for threads in [1usize, 4] {
        let sharded = run(Box::new(ShardedMatcher::new(threads)));
        assert_eq!(sharded.round_count(), global.round_count());
        for (a, b) in sharded.rounds.iter().zip(&global.rounds) {
            assert_eq!(a.served, b.served, "round {} threads {threads}", a.round);
            assert_eq!(
                a.unserved, b.unserved,
                "round {} threads {threads}",
                a.round
            );
        }
    }
}

/// Every split × reconcile policy combination — the PR 2 baseline, the PR 3
/// defaults, and the mixed configurations — serves exactly the cold global
/// maximum on random multi-swarm rounds, with valid assignments, and each
/// combination's schedule is bit-identical across thread counts.
#[test]
fn all_policy_combinations_match_global_and_are_thread_invariant() {
    for seed in 0..SEEDS / 2 {
        // Cold per-round reference, replayed once per seed.
        let mut rng = StdRng::seed_from_u64(seed);
        let sc = Scenario::draw(&mut rng);
        let mut stream = RoundStream::new();
        let mut reference = Vec::new();
        let mut rounds = Vec::new();
        for _ in 0..ROUNDS {
            stream.advance(&sc, &mut rng);
            let (keys, cands) = stream.round();
            reference.push(cold_served(&sc.caps, &cands));
            rounds.push((keys, cands));
        }

        for (split, reconcile) in POLICIES {
            let single = run_sharded_with(seed, 1, split, reconcile);
            for (round, (schedule, (_, cands))) in single.0.iter().zip(&rounds).enumerate() {
                assert_eq!(
                    schedule.iter().flatten().count(),
                    reference[round],
                    "seed {seed} round {round} policies {split:?}/{reconcile:?}"
                );
                assert!(
                    assignment_is_valid(schedule, &sc.caps, cands),
                    "seed {seed} round {round} policies {split:?}/{reconcile:?}"
                );
            }
            for threads in [2usize, 8] {
                assert_eq!(
                    run_sharded_with(seed, threads, split, reconcile),
                    single,
                    "seed {seed} threads {threads} policies {split:?}/{reconcile:?}"
                );
            }
        }
    }
}

/// The flat-CSR entry point ([`Scheduler::schedule_keyed_view`]) is
/// bit-identical to the slice-of-vecs path for the sharded matcher — same
/// schedules, same per-round stats — across threads 1–8 and all four
/// split × reconcile policy combinations. This is the gate that lets the
/// engine drive the whole stack through one contiguous candidate buffer.
#[test]
fn csr_view_path_is_bit_identical_to_slice_path_across_threads() {
    for seed in 0..SEEDS / 2 {
        for (split, reconcile) in POLICIES {
            // Reference: slice-of-vecs path, single thread.
            let reference = run_sharded_with(seed, 1, split, reconcile);
            for &threads in &THREAD_COUNTS {
                // Same scenario, CSR path.
                let mut rng = StdRng::seed_from_u64(seed);
                let sc = Scenario::draw(&mut rng);
                let mut stream = RoundStream::new();
                let mut matcher = ShardedMatcher::new(threads)
                    .with_split_policy(split)
                    .with_reconcile_policy(reconcile);
                let mut out = Vec::new();
                let mut buf = CandidateBuf::new();
                for round in 0..ROUNDS as usize {
                    stream.advance(&sc, &mut rng);
                    let (keys, cands) = stream.round();
                    buf.fill_from_slices(&cands);
                    matcher.schedule_keyed_view(&sc.caps, &keys, buf.view(), &mut out);
                    assert_eq!(
                        out, reference.0[round],
                        "seed {seed} round {round} threads {threads} \
                         policies {split:?}/{reconcile:?}: CSR schedule diverged"
                    );
                    assert_eq!(
                        matcher.last_round_stats(),
                        reference.1[round],
                        "seed {seed} round {round} threads {threads}: CSR stats diverged"
                    );
                }
            }
        }
    }
}

/// Deterministic relay attribution for a scenario round: every third
/// viewer's requests forward through a relay derived from its id, with a
/// fixed reservation table drawn per scenario.
fn synth_relays(
    sc: &Scenario,
    keys: &[RequestKey],
    rng: &mut StdRng,
) -> (Vec<Option<BoxId>>, Vec<u32>) {
    let reserved: Vec<u32> = (0..sc.n).map(|_| rng.gen_range(0u32..4)).collect();
    let relay_of = keys
        .iter()
        .map(|k| (k.viewer.0 % 3 == 0).then(|| BoxId(k.viewer.0 % sc.n as u32)))
        .collect();
    (relay_of, reserved)
}

/// Relay awareness is schedule-neutral: `schedule_relayed` produces the
/// exact schedule `schedule_keyed` produces on the same rounds (forwarding
/// draws on reserved capacity, never on the open budgets the matching
/// allocates), and its schedules and relay-lending stats are bit-identical
/// for every thread count. This is what keeps heterogeneous systems on the
/// sharded fast path while staying equivalent to the relay-blind global
/// matcher.
#[test]
fn relayed_scheduling_is_schedule_neutral_and_thread_invariant() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(900 + seed);
        let sc = Scenario::draw(&mut rng);
        let mut stream = RoundStream::new();
        let mut blind = ShardedMatcher::new(1);
        let mut relayed: Vec<ShardedMatcher> = THREAD_COUNTS
            .iter()
            .map(|&t| ShardedMatcher::new(t))
            .collect();
        let mut blind_out = Vec::new();
        let mut relayed_out = Vec::new();
        for round in 0..ROUNDS {
            stream.advance(&sc, &mut rng);
            let (keys, cands) = stream.round();
            let (relay_of, reserved) = synth_relays(&sc, &keys, &mut rng);
            let view = RelayView {
                relay_of: &relay_of,
                reserved: &reserved,
            };
            blind.schedule_keyed(&sc.caps, &keys, &cands, &mut blind_out);
            let mut reference: Option<(Vec<Option<BoxId>>, _)> = None;
            for matcher in relayed.iter_mut() {
                matcher.schedule_relayed(&sc.caps, &keys, &cands, &view, &mut relayed_out);
                assert_eq!(
                    relayed_out,
                    blind_out,
                    "seed {seed} round {round} threads {}: relay awareness changed the schedule",
                    matcher.threads()
                );
                let lend = matcher
                    .relay_stats()
                    .expect("relay-aware round exposes lend stats");
                assert!(
                    lend.granted <= reserved.iter().sum::<u32>() as usize,
                    "seed {seed} round {round}"
                );
                match &reference {
                    None => reference = Some((relayed_out.clone(), lend)),
                    Some((schedule, ref_lend)) => {
                        assert_eq!(schedule, &relayed_out, "seed {seed} round {round}");
                        assert_eq!(
                            ref_lend, &lend,
                            "seed {seed} round {round}: lend stats diverged across threads"
                        );
                    }
                }
            }
        }
    }
}

/// Full-simulator heterogeneous equivalence: a rich/poor fleet with a
/// compensation plan, driven by a poor-box-prioritized multi-swarm churn
/// workload, schedules identically on the sharded path (threads 1–8,
/// bit-identical reports including relay stats) and serves exactly what
/// the relay-blind global max-flow scheduler serves round for round.
#[test]
fn heterogeneous_simulator_sharded_equals_global_across_threads() {
    let c: u16 = 8;
    let mut uploads = vec![0.6f64; 8];
    uploads.extend(vec![2.6f64; 16]);
    let boxes = VideoSystem::proportional_boxes(&uploads, 6.0, c);
    let n = boxes.len();
    let d_avg = boxes.average_storage_videos(c);
    let avg_u = boxes.average_upload();
    let u_star = Bandwidth::from_streams(1.2);
    let k = 3u32;
    let catalog_size = ((d_avg * n as f64) / k as f64).floor() as usize;
    let catalog = Catalog::uniform(catalog_size, 28, c);
    let params = SystemParams::new(n, avg_u, d_avg.round().max(1.0) as u32, c, k, 1.2, 28);
    let mut rng = StdRng::seed_from_u64(77);
    let system = VideoSystem::heterogeneous(
        params,
        boxes,
        catalog,
        &RandomPermutationAllocator::new(k),
        Some(u_star),
        &mut rng,
    )
    .expect("fleet is u*-compensable");
    let poor = system.boxes().poor_ids(u_star);

    let run = |scheduler: Box<dyn Scheduler>| {
        let mut gen = MultiSwarmChurn::new(system.m(), 4, 6, 1.2, 5)
            .with_rotation(6)
            .with_priority_boxes(poor.clone());
        Simulator::with_scheduler(&system, SimConfig::new(30).continue_on_failure(), scheduler)
            .run(&mut gen)
    };

    let global = run(Box::new(MaxFlowScheduler::new()));
    let reference = run(Box::new(ShardedMatcher::new(1)));
    assert_eq!(reference.round_count(), global.round_count());
    let mut saw_forwarding = false;
    for (a, b) in reference.rounds.iter().zip(&global.rounds) {
        assert_eq!(a.served, b.served, "round {}", a.round);
        assert_eq!(a.unserved, b.unserved, "round {}", a.round);
        // The relay subsystem observes both runs identically (it draws on
        // reserved capacity, not on what the scheduler allocates).
        let (ra, rb) = (
            a.relay.expect("heterogeneous"),
            b.relay.expect("heterogeneous"),
        );
        assert_eq!(
            ra.relayed_requests, rb.relayed_requests,
            "round {}",
            a.round
        );
        assert_eq!(ra.forwarded, rb.forwarded, "round {}", a.round);
        assert!(ra.forwarded <= ra.reserved_slots, "round {}", a.round);
        saw_forwarding |= ra.forwarded > 0;
    }
    assert!(saw_forwarding, "workload never exercised a relay");
    assert!(!reference.relays.is_empty(), "utilization profile missing");

    // Bit-identical reports (schedule, shard stats, relay stats, playback
    // records) for every thread count.
    for threads in [2usize, 4, 8] {
        let sharded = run(Box::new(ShardedMatcher::new(threads)));
        assert_eq!(sharded, reference, "threads {threads}");
    }
}
