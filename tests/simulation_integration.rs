//! Cross-crate integration tests of the simulator: scheduler comparisons,
//! heterogeneous relaying, workload admissibility, and serialization of the
//! experiment artefacts.

use p2p_vod::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn homogeneous(n: usize, u: f64, c: u16, k: u32, duration: u32, seed: u64) -> VideoSystem {
    let params = SystemParams::new(n, u, 8, c, k, 1.3, duration);
    let mut rng = StdRng::seed_from_u64(seed);
    VideoSystem::homogeneous(params, &RandomPermutationAllocator::new(k), &mut rng).unwrap()
}

/// The max-flow scheduler never serves fewer request-rounds than the greedy
/// or random baselines on the same system and demand seed.
#[test]
fn maxflow_scheduler_dominates_baselines() {
    let sys = homogeneous(24, 1.3, 4, 2, 24, 31);
    let run = |scheduler: Box<dyn Scheduler>| {
        let mut gen = SequentialViewing::new(24, sys.m(), NextVideoPolicy::RoundRobin, 1.3, 5);
        Simulator::with_scheduler(&sys, SimConfig::new(40).continue_on_failure(), scheduler)
            .run(&mut gen)
    };
    let mf = run(Box::new(MaxFlowScheduler::new()));
    let greedy = run(Box::new(GreedyScheduler::new()));
    let random = run(Box::new(RandomScheduler::new(1)));
    assert!(mf.total_served() >= greedy.total_served());
    assert!(mf.total_served() >= random.total_served());
    assert!(mf.service_ratio() >= greedy.service_ratio());
}

/// A u*-balanced heterogeneous fleet (poor DSL boxes + rich fibre boxes)
/// survives the poor-boxes-pile-on attack via relaying.
#[test]
fn heterogeneous_relaying_serves_pile_on_attack() {
    let c: u16 = 8;
    let mut uploads = vec![0.6f64; 12];
    uploads.extend(vec![2.6f64; 12]);
    let boxes = VideoSystem::proportional_boxes(&uploads, 6.0, c);
    let n = boxes.len();
    let d_avg = boxes.average_storage_videos(c);
    let u_star = Bandwidth::from_streams(1.2);

    let catalog = Catalog::uniform(30, 40, c);
    let params = SystemParams::new(n, 1.6, d_avg.round() as u32, c, 3, 1.2, 40);
    let mut rng = StdRng::seed_from_u64(8);
    let system = VideoSystem::heterogeneous(
        params,
        boxes,
        catalog,
        &RandomPermutationAllocator::new(3),
        Some(u_star),
        &mut rng,
    )
    .unwrap();

    // Every poor box has a relay, and relays retain at least u* of open
    // capacity after reservations.
    let plan = system.compensation().unwrap();
    assert_eq!(plan.covered_poor(), 12);
    for (_, relay) in plan.assignments() {
        assert!(system.available_upload(relay) >= u_star);
    }

    let poor = system.boxes().poor_ids(u_star);
    let rich = system.boxes().rich_ids(u_star);
    let mut attack = PoorBoxesSameVideo::new(
        poor,
        rich,
        VideoId(0),
        system.placement(),
        system.catalog(),
        1.2,
    );
    let report = Simulator::new(&system, SimConfig::new(80)).run(&mut attack);
    assert!(
        report.all_rounds_feasible(),
        "relayed fleet failed: {:?}",
        report.failures.first()
    );
    // Poor boxes pay the doubled-time-scale start-up delay (5 rounds).
    assert!(report.max_startup_delay() >= 5);
}

/// Every demand trace produced by the built-in generators respects the swarm
/// growth bound they were configured with, and the simulator accepts at most
/// one concurrent video per box.
#[test]
fn generated_traces_are_admissible() {
    let n = 40;
    let mu = 1.4;
    let mut flash = FlashCrowd::single(VideoId(0), n, 50, mu, 3);
    let trace = DemandTrace::record(&mut flash, 30, n, 25);
    assert!(trace.verify_growth(mu).is_ok());

    let mut zipf = ZipfDemand::new(50, 0.9, 6, mu, 4);
    let trace = DemandTrace::record(&mut zipf, 30, n, 25);
    assert!(trace.verify_growth(mu).is_ok());

    let mut seq = SequentialViewing::new(n, 50, NextVideoPolicy::UniformRandom, mu, 5);
    let trace = DemandTrace::record(&mut seq, 30, n, 25);
    assert!(trace.verify_growth(mu).is_ok());
    // With duration 25 and 30 rounds, a box can start at most twice.
    let mut per_box = std::collections::HashMap::new();
    for d in trace.iter() {
        *per_box.entry(d.box_id).or_insert(0usize) += 1;
    }
    assert!(per_box.values().all(|&count| count <= 2));
}

/// Simulation reports and demand traces serialize to JSON and back without
/// loss (the experiment harness persists both).
#[test]
fn experiment_artefacts_json_round_trip() {
    let sys = homogeneous(12, 2.0, 4, 2, 15, 17);
    let mut gen = SequentialViewing::new(12, sys.m(), NextVideoPolicy::RoundRobin, 1.3, 2);
    let report = Simulator::new(&sys, SimConfig::new(25)).run(&mut gen);
    let json = report.to_json_string();
    let back = SimulationReport::from_json_str(&json).unwrap();
    assert_eq!(report, back);

    let mut flash = FlashCrowd::single(VideoId(1), 8, sys.m(), 1.3, 1);
    let trace = DemandTrace::record(&mut flash, 10, 12, 15);
    let json = trace.to_json_string();
    let back = DemandTrace::from_json_str(&json).unwrap();
    assert_eq!(trace, back);

    // The system itself (parameters + placement) round-trips too.
    let json = sys.to_json_string();
    let back = VideoSystem::from_json_str(&json).unwrap();
    assert_eq!(sys, back);
}

/// Monte-Carlo trials, the workload runner, and the analytic machinery agree
/// on an easy instance: zero observed failures, non-vacuous (or at least
/// consistent) first-moment behaviour as k grows.
#[test]
fn montecarlo_and_first_moment_bound_are_consistent() {
    let spec = TrialSpec {
        n: 20,
        u: 2.0,
        d: 8,
        c: 4,
        k: 4,
        mu: 1.3,
        duration: 20,
        rounds: 30,
        catalog: None,
    };
    let est = estimate_failure_probability(&spec, WorkloadKind::FlashCrowd, 4, 55, 2);
    assert_eq!(est.failures, 0);

    // The analytic bound is monotone in k on the same shape of system.
    let bound = |k: u32| {
        first_moment_bound(&BoundParams {
            n: 200,
            m: 100,
            c: 8,
            k,
            u: 2.0,
            mu: 1.3,
        })
    };
    assert!(bound(60) <= bound(20));
    assert!(bound(200) <= bound(60));
}

/// Churn + repair keeps an adversarially-usable allocation: after killing a
/// few boxes and draining the repair queue, every stripe that kept at least
/// one surviving replica is back at the target replication level.
#[test]
fn churn_repair_preserves_feasibility() {
    use rand::Rng;

    let params = SystemParams::new(30, 2.0, 8, 4, 3, 1.3, 25);
    let mut rng = StdRng::seed_from_u64(41);
    // Use a catalog below the storage-saturating d·n/k so the surviving boxes
    // have spare slots to absorb repaired replicas.
    let sys = VideoSystem::homogeneous_with_catalog(
        params,
        60,
        &RandomPermutationAllocator::new(3),
        &mut rng,
    )
    .unwrap();

    // Kill 4 distinct random boxes, stripping them from a live copy of the
    // allocation table and reporting the degraded stripes to the planner.
    let mut placement = sys.placement().clone();
    let mut alive = vec![true; 30];
    let mut planner = RepairPlanner::for_system(&sys, 8);
    let mut killed = 0;
    while killed < 4 {
        let b = BoxId(rng.gen_range(0..30u32));
        if !alive[b.index()] {
            continue;
        }
        alive[b.index()] = false;
        planner.note_lost(&placement.remove_box(b));
        killed += 1;
    }

    // Drain the queue under the per-round budget; sources are throttled by
    // their serving capacities exactly as in the engine loop.
    let caps: Vec<u32> = sys
        .boxes()
        .iter()
        .map(|b| b.upload.stripe_slots(4))
        .collect();
    loop {
        let stats = planner.plan_round(&placement, &alive, &caps);
        planner.commit(&mut placement);
        if stats.repaired == 0 {
            assert_eq!(stats.pending, 0, "queue stuck with work left");
            break;
        }
    }

    // Stripes that kept at least one surviving replica are restored to the
    // target level; only stripes that lost every copy land in the lost
    // ledger, and departed boxes hold nothing.
    for stripe in sys.catalog().stripes() {
        if planner.lost().contains(&stripe) {
            assert_eq!(placement.replica_count(stripe), 0);
        } else {
            assert!(placement.replica_count(stripe) >= 3);
        }
        for &holder in placement.holders_of(stripe) {
            assert!(alive[holder.index()], "departed box still holds {stripe}");
        }
    }
}

/// Relay churn driven *through the engine loop*: boxes leave, rejoin, and
/// change upload mid-run via [`Simulator::apply_relay_event`], and after
/// every event and every round the engine's slot table agrees with the
/// broker's reservation-adjusted capacities, every covered poor box has a
/// live rich relay, and a mirror plan replaying the emitted deltas tracks
/// the broker's plan exactly.
#[test]
fn relay_churn_through_engine_keeps_slot_tables_consistent() {
    let c: u16 = 8;
    let mut uploads = vec![0.6f64; 3];
    uploads.extend(vec![2.6f64; 6]);
    let boxes = VideoSystem::proportional_boxes(&uploads, 6.0, c);
    let n = boxes.len();
    let d_avg = boxes.average_storage_videos(c);
    let u_star = Bandwidth::from_streams(1.2);

    let catalog = Catalog::uniform(6, 30, c);
    let params = SystemParams::new(n, 1.6, d_avg.round() as u32, c, 3, 1.2, 30);
    let mut rng = StdRng::seed_from_u64(17);
    let system = VideoSystem::heterogeneous(
        params,
        boxes,
        catalog,
        &RandomPermutationAllocator::new(3),
        Some(u_star),
        &mut rng,
    )
    .unwrap();

    let rich_template = *system.boxes().get(BoxId(5));
    let mut sim = Simulator::new(&system, SimConfig::new(40).continue_on_failure());
    let mut gen = SequentialViewing::new(n, system.m(), NextVideoPolicy::RoundRobin, 1.2, 23);
    // Mirror plan: replays every emitted delta; must track the broker.
    let mut mirror = system.compensation().unwrap().clone();

    let check = |sim: &Simulator, mirror: &CompensationPlan, when: &str| {
        let broker = sim.relay_broker().expect("heterogeneous run has a broker");
        broker.validate().unwrap_or_else(|e| panic!("{when}: {e}"));
        assert_eq!(broker.plan(), mirror, "{when}: mirror plan diverged");
        for idx in 0..n {
            let b = BoxId(idx as u32);
            assert_eq!(
                sim.upload_slots(b),
                broker.open_upload_slots(b),
                "{when}: engine slot table stale for box {idx}"
            );
        }
        for (poor, relay) in broker.plan().assignments() {
            let node = broker
                .node(relay)
                .unwrap_or_else(|| panic!("{when}: poor {poor:?} relays via absent {relay:?}"));
            assert!(
                node.upload >= broker.u_star(),
                "{when}: relay {relay:?} is not rich"
            );
        }
    };

    let mut applied = 0usize;
    for round in 0..40u64 {
        sim.step(&mut gen);
        check(&sim, &mirror, &format!("after round {round}"));

        let event = match round {
            // A rich box sheds upload (still above u*): reservations must
            // survive on reduced headroom.
            5 => Some(RelayEvent::UploadChanged(
                BoxId(4),
                Bandwidth::from_streams(1.8),
            )),
            // A relay leaves: its poor boxes migrate to surviving riches.
            12 => Some(RelayEvent::BoxLeft(BoxId(5))),
            // It rejoins fatter and becomes assignable again.
            20 => Some(RelayEvent::BoxJoined(NodeBox {
                upload: Bandwidth::from_streams(3.0),
                ..rich_template
            })),
            // Another relay drains to poor-level upload: every poor box it
            // covered must migrate away.
            28 => Some(RelayEvent::UploadChanged(
                BoxId(6),
                Bandwidth::from_streams(0.6),
            )),
            _ => None,
        };
        if let Some(event) = event {
            let deltas = sim
                .apply_relay_event(event)
                .unwrap_or_else(|e| panic!("event at round {round} rejected: {e}"));
            for delta in &deltas {
                mirror.apply_delta(delta);
            }
            applied += 1;
            check(&sim, &mirror, &format!("after event at round {round}"));
        }
    }
    assert_eq!(applied, 4, "every scripted churn event must apply");
    let broker = sim.relay_broker().unwrap();
    assert!(
        broker.migrations() > 0,
        "churn script never exercised a migration"
    );
    // The drained box 6 fell below u* and is itself compensated now.
    assert_eq!(broker.plan().covered_poor(), 4);
}
