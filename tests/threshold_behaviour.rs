//! End-to-end checks of the paper's headline claims: the upload threshold at
//! `u = 1`, catalog scalability above it, and the constant-catalog regime
//! below it.

use p2p_vod::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[allow(clippy::too_many_arguments)]
fn homogeneous(
    n: usize,
    u: f64,
    d: u32,
    c: u16,
    k: u32,
    mu: f64,
    t: u32,
    seed: u64,
) -> VideoSystem {
    let params = SystemParams::new(n, u, d, c, k, mu, t);
    let mut rng = StdRng::seed_from_u64(seed);
    VideoSystem::homogeneous(params, &RandomPermutationAllocator::new(k), &mut rng).unwrap()
}

/// Below the threshold, the never-owned adversary defeats any allocation
/// whose catalog exceeds `d·c` videos (Section 1.3).
#[test]
fn below_threshold_large_catalog_is_defeated() {
    for &u in &[0.6, 0.8, 0.95] {
        let sys = homogeneous(24, u, 8, 4, 1, 1.3, 30, 1);
        assert!(sys.m() > 8 * 4, "catalog must exceed d·c for the argument");
        let mut attack = NeverOwnedAttack::new(sys.placement(), sys.catalog(), 1.3);
        let report = Simulator::new(&sys, SimConfig::new(40)).run(&mut attack);
        assert!(
            !report.all_rounds_feasible(),
            "u = {u} should be defeated by the never-owned adversary"
        );
        // The obstruction witness is a genuine Hall violator.
        let f = &report.failures[0];
        assert!(f.obstruction_capacity.unwrap() < f.obstruction_size.unwrap() as u64);
    }
}

/// Below the threshold, shrinking the catalog to `d·c` (full replication
/// possible) removes the adversary's leverage entirely.
#[test]
fn below_threshold_constant_catalog_survives() {
    let params = SystemParams::new(24, 0.8, 8, 4, 1, 1.3, 30);
    let mut rng = StdRng::seed_from_u64(5);
    let sys = VideoSystem::homogeneous_with_catalog(
        params,
        32, // = d·c
        &FullReplicationAllocator::new(),
        &mut rng,
    )
    .unwrap();
    let mut attack = NeverOwnedAttack::new(sys.placement(), sys.catalog(), 1.3);
    assert!(attack.is_toothless());
    let report = Simulator::new(&sys, SimConfig::new(40)).run(&mut attack);
    assert!(report.all_rounds_feasible());
    assert_eq!(report.total_demands, 0); // the adversary has nothing to request
}

/// Above the threshold, a random permutation allocation with modest
/// replication serves full-occupancy continuous viewing and maximal-growth
/// flash crowds on a linear-size catalog.
#[test]
fn above_threshold_linear_catalog_serves_adversarial_demand() {
    for &(n, seed) in &[(24usize, 2u64), (48, 3), (96, 4)] {
        let sys = homogeneous(n, 2.0, 8, 4, 4, 1.3, 30, seed);
        // Catalog grows linearly with n at fixed d and k.
        assert_eq!(sys.m(), 8 * n / 4);

        let mut seq = SequentialViewing::new(n, sys.m(), NextVideoPolicy::RoundRobin, 1.3, seed);
        let report = Simulator::new(&sys, SimConfig::new(70)).run(&mut seq);
        assert!(
            report.all_rounds_feasible(),
            "n = {n}: sequential viewing failed: {:?}",
            report.failures.first()
        );

        let mut crowd = FlashCrowd::single(VideoId(0), n, sys.m(), 1.3, seed);
        let report = Simulator::new(&sys, SimConfig::new(70)).run(&mut crowd);
        assert!(
            report.all_rounds_feasible(),
            "n = {n}: flash crowd failed: {:?}",
            report.failures.first()
        );
    }
}

/// Feasibility under the flash-crowd adversary is monotone in the upload
/// capacity: once a capacity works, any larger capacity works too (checked on
/// a ladder of capacities with shared seeds).
#[test]
fn feasibility_is_monotone_in_upload() {
    let mut last_feasible = false;
    for &u in &[0.7, 1.0, 1.3, 1.8, 2.5] {
        let sys = homogeneous(20, u, 8, 4, 2, 1.3, 24, 9);
        let mut crowd = FlashCrowd::single(VideoId(0), 20, sys.m(), 1.3, 9);
        let report = Simulator::new(&sys, SimConfig::new(40)).run(&mut crowd);
        let feasible = report.all_rounds_feasible();
        assert!(
            feasible || !last_feasible,
            "feasibility regressed when increasing u to {u}"
        );
        last_feasible = feasible;
    }
    assert!(last_feasible, "the largest capacity must be feasible");
}

/// The Monte-Carlo threshold search brackets the transition between the
/// starved and the generous regime.
#[test]
fn empirical_threshold_search_brackets_transition() {
    let spec = TrialSpec {
        n: 16,
        u: 1.0,
        d: 8,
        c: 4,
        k: 2,
        mu: 1.3,
        duration: 16,
        rounds: 24,
        catalog: None,
    };
    let config = SearchConfig {
        trials_per_point: 2,
        max_failure_rate: 0.0,
        base_seed: 77,
        threads: 2,
    };
    let (threshold, probes) =
        find_upload_threshold(&spec, WorkloadKind::Sequential, 0.4, 3.0, 0.4, &config);
    assert!(threshold > 0.4 && threshold <= 3.0, "threshold {threshold}");
    assert!(probes.len() >= 3);
}

/// Theorem 1's analytic catalog bound is consistent with what the simulator
/// sustains: the simulated system with catalog `d·n/k` (far above the bound)
/// still serves adversarial demand, and the bound itself is positive and
/// linear in `n`.
#[test]
fn analytic_bound_is_positive_linear_and_conservative() {
    let (u, d, mu) = (2.0, 8.0, 1.3);
    let b1 = vod_analysis::theorem1::catalog_bound(100, u, d, mu);
    let b2 = vod_analysis::theorem1::catalog_bound(200, u, d, mu);
    assert!(b1 > 0.0);
    assert!((b2 / b1 - 2.0).abs() < 1e-9);

    let sys = homogeneous(48, u, 8, 4, 4, mu, 30, 21);
    assert!(
        (sys.m() as f64) > vod_analysis::theorem1::catalog_bound(48, u, d, mu),
        "the deployed catalog should exceed the conservative analytic bound"
    );
}
