//! Seeded-determinism and admissibility tests for the demand generators.
//!
//! The equivalence and Monte-Carlo harnesses lean on two properties of
//! `vod-workloads`:
//!
//! * **determinism** — the demand sequence is a pure function of the
//!   constructor arguments (including the seed) and the occupancy history,
//!   so any failure reproduces from the printed seed;
//! * **admissibility** — generated demands respect the paper's constraints:
//!   at most one demand per box per round, demands only on free boxes, and
//!   per-video swarm growth bounded by `f(t+1) ≤ ⌈max{f(t),1}·µ⌉`.
//!
//! Both are checked for every stochastic generator (zipf, poisson,
//! flash-crowd, multi-swarm) and the adversarial ones (never-owned,
//! poor-boxes pile-on, sequential).

use p2p_vod::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

const ROUNDS: u64 = 12;
const BOXES: usize = 24;

/// Replays a generator against an all-free occupancy, collecting each
/// round's demand batch.
fn replay(generator: &mut dyn DemandGenerator, rounds: u64, boxes: usize) -> Vec<Vec<VideoDemand>> {
    let free = vec![true; boxes];
    (0..rounds)
        .map(|r| generator.demands_at(r, &free))
        .collect()
}

/// Checks one demand sequence for admissibility: unique boxes per round and
/// µ-bounded per-video growth (under the no-departure replay, where swarm
/// sizes only grow).
fn assert_admissible(label: &str, mu: f64, sequence: &[Vec<VideoDemand>]) {
    let mut joins_per_video: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for (round, batch) in sequence.iter().enumerate() {
        let mut boxes: Vec<BoxId> = batch.iter().map(|d| d.box_id).collect();
        boxes.sort();
        boxes.dedup();
        assert_eq!(
            boxes.len(),
            batch.len(),
            "{label}: duplicate box in round {round}"
        );
        for d in batch {
            joins_per_video
                .entry(d.video.0)
                .or_insert_with(|| vec![0; sequence.len()])[round] += 1;
        }
    }
    for (video, joins) in &joins_per_video {
        assert!(
            SwarmGrowthLimiter::verify(mu, joins).is_ok(),
            "{label}: video {video} violates µ = {mu}: {joins:?}"
        );
    }
}

/// Builds the two replays of `make` and asserts they are identical, then
/// checks admissibility. Returns the sequence for extra per-generator
/// checks.
fn check_generator(
    label: &str,
    mu: f64,
    mut make: impl FnMut() -> Box<dyn DemandGenerator>,
) -> Vec<Vec<VideoDemand>> {
    let first = replay(make().as_mut(), ROUNDS, BOXES);
    let second = replay(make().as_mut(), ROUNDS, BOXES);
    assert_eq!(first, second, "{label}: same seed, different sequence");
    assert_admissible(label, mu, &first);
    first
}

#[test]
fn zipf_demand_is_seed_deterministic_and_admissible() {
    let mu = 1.6;
    let sequence = check_generator("zipf", mu, || Box::new(ZipfDemand::new(30, 0.9, 5, mu, 42)));
    assert!(
        sequence.iter().any(|b| !b.is_empty()),
        "zipf emitted nothing"
    );
    // A different seed must (for this configuration) change the sequence.
    let other = replay(&mut ZipfDemand::new(30, 0.9, 5, mu, 43), ROUNDS, BOXES);
    assert_ne!(sequence, other, "zipf ignores its seed");
}

#[test]
fn poisson_demand_is_seed_deterministic_and_admissible() {
    let mu = 2.0;
    for popularity in [Popularity::Uniform, Popularity::Zipf(1.1)] {
        let sequence = check_generator("poisson", mu, || {
            Box::new(PoissonDemand::new(20, 3.0, popularity.clone(), mu, 7))
        });
        assert!(
            sequence.iter().any(|b| !b.is_empty()),
            "poisson emitted nothing"
        );
    }
}

#[test]
fn flash_crowd_is_seed_deterministic_and_admissible() {
    let mu = 1.8;
    let sequence = check_generator("flash-crowd", mu, || {
        Box::new(FlashCrowd::single(VideoId(2), 20, 10, mu, 5))
    });
    let total: usize = sequence.iter().map(|b| b.len()).sum();
    assert_eq!(total, 20, "crowd must absorb its target");
    assert!(sequence.iter().flatten().all(|d| d.video == VideoId(2)));
}

#[test]
fn multi_swarm_churn_is_seed_deterministic_and_admissible() {
    let mu = 1.4;
    let sequence = check_generator("multi-swarm", mu, || {
        Box::new(MultiSwarmChurn::new(16, 4, 6, mu, 9).with_rotation(3))
    });
    let videos: std::collections::BTreeSet<u32> =
        sequence.iter().flatten().map(|d| d.video.0).collect();
    assert!(videos.len() > 1, "multi-swarm must populate several swarms");
}

#[test]
fn sequential_viewing_is_seed_deterministic_and_admissible() {
    let mu = 1.5;
    for policy in [NextVideoPolicy::RoundRobin, NextVideoPolicy::UniformRandom] {
        check_generator("sequential", mu, || {
            Box::new(SequentialViewing::new(BOXES, 12, policy, mu, 3))
        });
    }
}

#[test]
fn adversarial_generators_are_deterministic_and_admissible() {
    let params = SystemParams::new(BOXES, 2.0, 8, 4, 4, 1.5, 30);
    let mut rng = StdRng::seed_from_u64(21);
    let system =
        VideoSystem::homogeneous(params, &RandomPermutationAllocator::new(4), &mut rng).unwrap();
    let mu = 1.5;

    check_generator("never-owned", mu, || {
        Box::new(NeverOwnedAttack::new(
            system.placement(),
            system.catalog(),
            mu,
        ))
    });

    let poor: Vec<BoxId> = (0..8u32).map(BoxId).collect();
    let rich: Vec<BoxId> = (8..BOXES as u32).map(BoxId).collect();
    check_generator("poor-boxes", mu, || {
        Box::new(PoorBoxesSameVideo::new(
            poor.clone(),
            rich.clone(),
            VideoId(0),
            system.placement(),
            system.catalog(),
            mu,
        ))
    });
}

fn churn_universe() -> BoxSet {
    BoxSet::homogeneous(
        BOXES,
        Bandwidth::from_streams(1.5),
        StorageSlots::from_slots(16),
    )
}

/// The churn model is a pure function of (universe, seed, config): two
/// models built alike emit identical event sequences, and a different seed
/// changes the sequence.
#[test]
fn churn_model_is_seed_deterministic() {
    let boxes = churn_universe();
    let make = |seed: u64| {
        ChurnModel::new(&boxes, seed)
            .with_session(SessionLength::Geometric { leave_rate: 0.06 })
            .with_crash_rate(0.02)
            .with_rejoin_delay(2, 5)
            .with_upload_churn(0.03, vec![0.5, 1.0, 2.0])
            .with_min_up(8)
    };
    let replay = |mut model: ChurnModel| -> Vec<Vec<ChurnEvent>> {
        (0..60).map(|r| model.events_at(r)).collect()
    };
    let first = replay(make(42));
    let second = replay(make(42));
    assert_eq!(first, second, "same seed, different churn sequence");
    assert!(
        first.iter().any(|batch| !batch.is_empty()),
        "churn model emitted nothing"
    );
    let other = replay(make(43));
    assert_ne!(first, other, "churn model ignores its seed");
}

/// Observed per-box per-round event rates converge on the configured
/// hazards over a long exposure (within a generous stochastic tolerance).
#[test]
fn churn_model_rates_match_configuration() {
    let boxes = churn_universe();
    let leave_rate = 0.05;
    let crash_rate = 0.02;
    let upload_rate = 0.04;
    let mut model = ChurnModel::new(&boxes, 7)
        .with_session(SessionLength::Geometric { leave_rate })
        .with_crash_rate(crash_rate)
        .with_rejoin_delay(1, 3)
        .with_upload_churn(upload_rate, vec![0.5, 2.0]);
    let mut events = Vec::new();
    for round in 0..4000 {
        model.events_into(round, &mut events);
        events.clear();
    }
    let counts = model.counts();
    assert!(counts.up_box_rounds > 10_000, "exposure too small to judge");
    let within = |observed: f64, target: f64| (observed - target).abs() <= target * 0.25;
    assert!(
        within(counts.leave_rate(), leave_rate),
        "leave rate {} vs configured {leave_rate}",
        counts.leave_rate()
    );
    assert!(
        within(counts.crash_rate(), crash_rate),
        "crash rate {} vs configured {crash_rate}",
        counts.crash_rate()
    );
    // A draw landing on the box's current scale emits nothing, so with two
    // scales the steady-state emission rate is half the configured hazard.
    let effective_upload = upload_rate * 0.5;
    assert!(
        within(counts.upload_change_rate(), effective_upload),
        "upload-change rate {} vs effective {effective_upload}",
        counts.upload_change_rate()
    );
    // Every departure eventually rejoins within the configured delay, so
    // joins track departures up to the boxes still down at the horizon.
    let departures = counts.leaves + counts.crashes;
    assert!(departures > 0 && counts.joins > 0);
    assert!(departures - counts.joins <= BOXES as u64);
}

/// The fault model is a pure function of (universe, seed, config): two
/// models built alike emit identical event sequences, and a different
/// seed changes the sequence.
#[test]
fn fault_model_is_seed_deterministic() {
    let boxes = churn_universe();
    let make = |seed: u64| {
        FaultModel::new(&boxes, seed)
            .with_degradation(0.05, vec![25, 50, 75], 1, 4)
            .with_flapping(0.02, 1, 3)
            .with_region_outages(0.01, 4, 2, 4)
            .with_drop_rate(50_000, 20_000)
            .with_drop_surges(0.02, 200_000, 1, 3)
    };
    let replay = |mut model: FaultModel| -> Vec<Vec<FaultEvent>> {
        (0..60).map(|r| model.events_at(r)).collect()
    };
    let first = replay(make(42));
    let second = replay(make(42));
    assert_eq!(first, second, "same seed, different fault sequence");
    assert!(
        first.iter().any(|batch| !batch.is_empty()),
        "fault model emitted nothing"
    );
    let other = replay(make(43));
    assert_ne!(first, other, "fault model ignores its seed");
    // The outcome-hash salt is derived from the seed, so it differs too.
    assert_ne!(make(42).salt(), make(43).salt());
}

/// Observed per-box per-round fault rates converge on the configured
/// hazards over a long exposure (within a generous stochastic tolerance).
#[test]
fn fault_model_rates_match_configuration() {
    let boxes = churn_universe();
    let degradation_rate = 0.04;
    let flap_rate = 0.02;
    let outage_rate = 0.01;
    let mut model = FaultModel::new(&boxes, 7)
        .with_degradation(degradation_rate, vec![25, 50], 1, 3)
        .with_flapping(flap_rate, 1, 2)
        .with_region_outages(outage_rate, 4, 1, 2);
    let mut events = Vec::new();
    for round in 0..4000 {
        model.events_into(round, &mut events);
        events.clear();
    }
    let counts = model.counts();
    assert!(
        counts.healthy_box_rounds > 10_000,
        "exposure too small to judge"
    );
    let within = |observed: f64, target: f64| (observed - target).abs() <= target * 0.25;
    assert!(
        within(counts.degradation_rate(), degradation_rate),
        "degradation rate {} vs configured {degradation_rate}",
        counts.degradation_rate()
    );
    assert!(
        within(counts.stall_rate(), flap_rate),
        "stall rate {} vs configured {flap_rate}",
        counts.stall_rate()
    );
    assert!(
        within(counts.region_outage_rate(), outage_rate),
        "region-outage rate {} vs configured {outage_rate}",
        counts.region_outage_rate()
    );
    // Regional outages stall whole box groups on top of the point events.
    assert!(counts.region_stalled_boxes >= counts.region_outages);
}

/// Uniform draw-at-join sessions end within their bounds: a box that
/// joined at round `j` leaves gracefully no earlier than `j + min` and no
/// later than `j + max` (unless a crash pre-empts the schedule).
#[test]
fn churn_session_bounds_are_respected() {
    let boxes = churn_universe();
    let mut model = ChurnModel::new(&boxes, 11)
        .with_session(SessionLength::Uniform { min: 4, max: 9 })
        .with_rejoin_delay(1, 2);
    let mut joined_at = [0u64; BOXES];
    for round in 0..200 {
        for event in model.events_at(round) {
            let b = event.box_id().index();
            match event {
                ChurnEvent::Joined(_) => joined_at[b] = round,
                ChurnEvent::Left(_) => {
                    let session = round - joined_at[b];
                    assert!(
                        (4..=9).contains(&session),
                        "box {b} session {session} outside [4, 9]"
                    );
                }
                _ => {}
            }
        }
    }
    assert!(model.counts().leaves > 0, "uniform sessions must end");
}

/// Occupancy is honoured: a generator never demands on a busy box, even
/// when the free set changes between rounds.
#[test]
fn generators_respect_occupancy() {
    let mut generators: Vec<Box<dyn DemandGenerator>> = vec![
        Box::new(ZipfDemand::new(10, 1.0, 8, 2.0, 1)),
        Box::new(PoissonDemand::new(10, 4.0, Popularity::Uniform, 2.0, 2)),
        Box::new(FlashCrowd::single(VideoId(0), 50, 10, 2.0, 3)),
        Box::new(MultiSwarmChurn::new(10, 3, 8, 2.0, 4)),
        Box::new(SequentialViewing::new(
            12,
            10,
            NextVideoPolicy::RoundRobin,
            2.0,
            5,
        )),
    ];
    for generator in &mut generators {
        for round in 0..6u64 {
            // Alternate which half of the boxes is free.
            let free: Vec<bool> = (0..12)
                .map(|i| (i + round as usize).is_multiple_of(2))
                .collect();
            let demands = generator.demands_at(round, &free);
            for d in &demands {
                assert!(
                    free[d.box_id.index()],
                    "{}: demand on busy box {:?} in round {round}",
                    generator.name(),
                    d.box_id
                );
            }
        }
    }
}
