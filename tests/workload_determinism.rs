//! Seeded-determinism and admissibility tests for the demand generators.
//!
//! The equivalence and Monte-Carlo harnesses lean on two properties of
//! `vod-workloads`:
//!
//! * **determinism** — the demand sequence is a pure function of the
//!   constructor arguments (including the seed) and the occupancy history,
//!   so any failure reproduces from the printed seed;
//! * **admissibility** — generated demands respect the paper's constraints:
//!   at most one demand per box per round, demands only on free boxes, and
//!   per-video swarm growth bounded by `f(t+1) ≤ ⌈max{f(t),1}·µ⌉`.
//!
//! Both are checked for every stochastic generator (zipf, poisson,
//! flash-crowd, multi-swarm) and the adversarial ones (never-owned,
//! poor-boxes pile-on, sequential).

use p2p_vod::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

const ROUNDS: u64 = 12;
const BOXES: usize = 24;

/// Replays a generator against an all-free occupancy, collecting each
/// round's demand batch.
fn replay(generator: &mut dyn DemandGenerator, rounds: u64, boxes: usize) -> Vec<Vec<VideoDemand>> {
    let free = vec![true; boxes];
    (0..rounds)
        .map(|r| generator.demands_at(r, &free))
        .collect()
}

/// Checks one demand sequence for admissibility: unique boxes per round and
/// µ-bounded per-video growth (under the no-departure replay, where swarm
/// sizes only grow).
fn assert_admissible(label: &str, mu: f64, sequence: &[Vec<VideoDemand>]) {
    let mut joins_per_video: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for (round, batch) in sequence.iter().enumerate() {
        let mut boxes: Vec<BoxId> = batch.iter().map(|d| d.box_id).collect();
        boxes.sort();
        boxes.dedup();
        assert_eq!(
            boxes.len(),
            batch.len(),
            "{label}: duplicate box in round {round}"
        );
        for d in batch {
            joins_per_video
                .entry(d.video.0)
                .or_insert_with(|| vec![0; sequence.len()])[round] += 1;
        }
    }
    for (video, joins) in &joins_per_video {
        assert!(
            SwarmGrowthLimiter::verify(mu, joins).is_ok(),
            "{label}: video {video} violates µ = {mu}: {joins:?}"
        );
    }
}

/// Builds the two replays of `make` and asserts they are identical, then
/// checks admissibility. Returns the sequence for extra per-generator
/// checks.
fn check_generator(
    label: &str,
    mu: f64,
    mut make: impl FnMut() -> Box<dyn DemandGenerator>,
) -> Vec<Vec<VideoDemand>> {
    let first = replay(make().as_mut(), ROUNDS, BOXES);
    let second = replay(make().as_mut(), ROUNDS, BOXES);
    assert_eq!(first, second, "{label}: same seed, different sequence");
    assert_admissible(label, mu, &first);
    first
}

#[test]
fn zipf_demand_is_seed_deterministic_and_admissible() {
    let mu = 1.6;
    let sequence = check_generator("zipf", mu, || Box::new(ZipfDemand::new(30, 0.9, 5, mu, 42)));
    assert!(
        sequence.iter().any(|b| !b.is_empty()),
        "zipf emitted nothing"
    );
    // A different seed must (for this configuration) change the sequence.
    let other = replay(&mut ZipfDemand::new(30, 0.9, 5, mu, 43), ROUNDS, BOXES);
    assert_ne!(sequence, other, "zipf ignores its seed");
}

#[test]
fn poisson_demand_is_seed_deterministic_and_admissible() {
    let mu = 2.0;
    for popularity in [Popularity::Uniform, Popularity::Zipf(1.1)] {
        let sequence = check_generator("poisson", mu, || {
            Box::new(PoissonDemand::new(20, 3.0, popularity.clone(), mu, 7))
        });
        assert!(
            sequence.iter().any(|b| !b.is_empty()),
            "poisson emitted nothing"
        );
    }
}

#[test]
fn flash_crowd_is_seed_deterministic_and_admissible() {
    let mu = 1.8;
    let sequence = check_generator("flash-crowd", mu, || {
        Box::new(FlashCrowd::single(VideoId(2), 20, 10, mu, 5))
    });
    let total: usize = sequence.iter().map(|b| b.len()).sum();
    assert_eq!(total, 20, "crowd must absorb its target");
    assert!(sequence.iter().flatten().all(|d| d.video == VideoId(2)));
}

#[test]
fn multi_swarm_churn_is_seed_deterministic_and_admissible() {
    let mu = 1.4;
    let sequence = check_generator("multi-swarm", mu, || {
        Box::new(MultiSwarmChurn::new(16, 4, 6, mu, 9).with_rotation(3))
    });
    let videos: std::collections::BTreeSet<u32> =
        sequence.iter().flatten().map(|d| d.video.0).collect();
    assert!(videos.len() > 1, "multi-swarm must populate several swarms");
}

#[test]
fn sequential_viewing_is_seed_deterministic_and_admissible() {
    let mu = 1.5;
    for policy in [NextVideoPolicy::RoundRobin, NextVideoPolicy::UniformRandom] {
        check_generator("sequential", mu, || {
            Box::new(SequentialViewing::new(BOXES, 12, policy, mu, 3))
        });
    }
}

#[test]
fn adversarial_generators_are_deterministic_and_admissible() {
    let params = SystemParams::new(BOXES, 2.0, 8, 4, 4, 1.5, 30);
    let mut rng = StdRng::seed_from_u64(21);
    let system =
        VideoSystem::homogeneous(params, &RandomPermutationAllocator::new(4), &mut rng).unwrap();
    let mu = 1.5;

    check_generator("never-owned", mu, || {
        Box::new(NeverOwnedAttack::new(
            system.placement(),
            system.catalog(),
            mu,
        ))
    });

    let poor: Vec<BoxId> = (0..8u32).map(BoxId).collect();
    let rich: Vec<BoxId> = (8..BOXES as u32).map(BoxId).collect();
    check_generator("poor-boxes", mu, || {
        Box::new(PoorBoxesSameVideo::new(
            poor.clone(),
            rich.clone(),
            VideoId(0),
            system.placement(),
            system.catalog(),
            mu,
        ))
    });
}

/// Occupancy is honoured: a generator never demands on a busy box, even
/// when the free set changes between rounds.
#[test]
fn generators_respect_occupancy() {
    let mut generators: Vec<Box<dyn DemandGenerator>> = vec![
        Box::new(ZipfDemand::new(10, 1.0, 8, 2.0, 1)),
        Box::new(PoissonDemand::new(10, 4.0, Popularity::Uniform, 2.0, 2)),
        Box::new(FlashCrowd::single(VideoId(0), 50, 10, 2.0, 3)),
        Box::new(MultiSwarmChurn::new(10, 3, 8, 2.0, 4)),
        Box::new(SequentialViewing::new(
            12,
            10,
            NextVideoPolicy::RoundRobin,
            2.0,
            5,
        )),
    ];
    for generator in &mut generators {
        for round in 0..6u64 {
            // Alternate which half of the boxes is free.
            let free: Vec<bool> = (0..12)
                .map(|i| (i + round as usize).is_multiple_of(2))
                .collect();
            let demands = generator.demands_at(round, &free);
            for d in &demands {
                assert!(
                    free[d.box_id.index()],
                    "{}: demand on busy box {:?} in round {round}",
                    generator.name(),
                    d.box_id
                );
            }
        }
    }
}
