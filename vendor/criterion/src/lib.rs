//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! reimplements the small slice of criterion's API the workspace benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup`] configuration chaining,
//! [`Bencher::iter`], [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Timing is plain
//! wall-clock sampling (median over the configured sample count) printed as
//! one line per benchmark — enough to compare implementations, no statistics
//! machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group: a function name plus a
/// parameter rendered into the label.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id labelled `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Runs closures under timing.
pub struct Bencher {
    samples: usize,
    warm_up: Duration,
    /// Median per-iteration time of the last `iter` call.
    last_median: Duration,
}

impl Bencher {
    /// Times `f`, recording the median per-iteration wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget is spent (at least once).
        let warm_start = Instant::now();
        loop {
            black_box(f());
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        // Calibrate: batch iterations so one sample takes ≥ ~50µs.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_micros(50).as_nanos() / once.as_nanos()).max(1) as usize;

        let mut samples: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(start.elapsed() / batch as u32);
        }
        samples.sort();
        self.last_median = samples[samples.len() / 2];
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    warm_up: Duration,
}

impl BenchmarkGroup {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Accepted for API compatibility; the stand-in sizes measurement by
    /// sample count, not by a time budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            warm_up: self.warm_up,
            last_median: Duration::ZERO,
        };
        f(&mut bencher, input);
        println!(
            "bench {}/{}: median {:?} per iteration",
            self.name, id.label, bencher.last_median
        );
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.bench_with_input(id, &(), |b, ()| f(b))
    }

    /// Ends the group (printing already happened per benchmark).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            warm_up: Duration::from_millis(100),
        }
    }
}

/// Bundles benchmark functions into a group runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(3).warm_up_time(Duration::from_millis(1));
        let mut calls = 0usize;
        group.bench_with_input(BenchmarkId::new("count", 1), &1, |b, _| {
            b.iter(|| calls += 1)
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn id_labels() {
        assert_eq!(BenchmarkId::new("dinic", 64).label, "dinic/64");
        assert_eq!(BenchmarkId::from_parameter(7).label, "7");
    }
}
