//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the (small) slice of the `rand` 0.8 API the workspace actually
//! uses: [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`), [`rngs::StdRng`], and
//! [`seq::SliceRandom`] (`shuffle`, `choose`, `choose_multiple`).
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256** seeded through
//! SplitMix64 — not the ChaCha12 generator of the real crate, so seeded
//! streams differ from upstream `rand`, but every use in this workspace only
//! relies on determinism and statistical quality, not on exact streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Core trait of a random generator: a source of uniform raw bits.
pub trait RngCore {
    /// Next 32 uniform random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// A type that can be sampled uniformly by [`Rng::gen`].
pub trait RandomValue: Sized {
    /// Draws one uniform value from `rng`.
    fn random_from(rng: &mut (impl RngCore + ?Sized)) -> Self;
}

impl RandomValue for u32 {
    fn random_from(rng: &mut (impl RngCore + ?Sized)) -> Self {
        rng.next_u32()
    }
}

impl RandomValue for u64 {
    fn random_from(rng: &mut (impl RngCore + ?Sized)) -> Self {
        rng.next_u64()
    }
}

impl RandomValue for bool {
    fn random_from(rng: &mut (impl RngCore + ?Sized)) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl RandomValue for f64 {
    fn random_from(rng: &mut (impl RngCore + ?Sized)) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A half-open range a value can be drawn from by [`Rng::gen_range`].
pub trait SampleRange {
    /// The value type produced.
    type Output;
    /// Draws one uniform value from the range.
    fn sample_from(self, rng: &mut (impl RngCore + ?Sized)) -> Self::Output;
}

/// Uniform integer in `[0, bound)`. Uses multiply-shift reduction; the bias
/// is at most `bound / 2^64`, far below anything the simulations can detect.
fn uniform_below(rng: &mut (impl RngCore + ?Sized), bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

int_range!(usize, u16, u32, u64);

macro_rules! signed_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

signed_int_range!(i32, i64);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from(self, rng: &mut (impl RngCore + ?Sized)) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + f64::random_from(rng) * (self.end - self.start)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one uniform value of type `T`.
    fn gen<T: RandomValue>(&mut self) -> T {
        T::random_from(self)
    }

    /// Draws one uniform value from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::random_from(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded through SplitMix64.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into the full state.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[1].wrapping_mul(5), 7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// One uniformly chosen element, or `None` for an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements in random order (all of them when the
        /// slice is shorter than `amount`).
        fn choose_multiple<R: Rng + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_multiple<R: Rng + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over an index table.
            let mut indices: Vec<usize> = (0..self.len()).collect();
            let mut picked = Vec::with_capacity(amount);
            for i in 0..amount {
                let j = rng.gen_range(i..indices.len());
                indices.swap(i, j);
                picked.push(&self[indices[i]]);
            }
            picked.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let x = rng.gen_range(0usize..7);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let f = rng.gen_range(2.0f64..3.0);
            assert!((2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn f64_samples_are_uniform_ish() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_permutes_and_choose_multiple_is_distinct() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());

        let picked: Vec<u32> = v.choose_multiple(&mut rng, 10).copied().collect();
        assert_eq!(picked.len(), 10);
        let mut uniq = picked.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), 10);

        assert!(v.choose(&mut rng).is_some());
        let empty: Vec<u32> = Vec::new();
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(4);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x = dyn_rng.gen_range(0usize..10);
        assert!(x < 10);
        let mut v = [1u8, 2, 3];
        v.shuffle(dyn_rng);
    }
}
